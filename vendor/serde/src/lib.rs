//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates, so this workspace ships a
//! self-contained replacement exposing the same *spelling* the code uses:
//! `serde::{Serialize, Deserialize}` traits plus `#[derive(Serialize,
//! Deserialize)]` (re-exported from the local `serde_derive` proc-macro).
//!
//! Unlike upstream serde's visitor architecture, serialization here goes
//! through an in-memory JSON [`Value`] tree: `Serialize` renders into a
//! `Value`, `Deserialize` reads back out of one. The only consumer is the
//! local `serde_json` stand-in, so the simpler data model is sufficient.
//! Enum representation matches serde's externally-tagged default (unit
//! variants as strings, data variants as single-key objects).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers included; f64 is exact up to 2^53, far
    /// beyond every count in this workspace).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Object lookup by key (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Deserialization failure: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn new(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a JSON [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn ser(&self) -> Value;
}

/// Rebuild `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn de(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn ser(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, found {v:?}")))
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn de(v: &Value) -> Result<Self, DeError> {
        f64::de(v).map(|n| n as f32)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| DeError::new(format!("expected integer, found {v:?}")))?;
                if n.fract() != 0.0 {
                    return Err(DeError::new(format!("expected integer, found {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for std::borrow::Cow<'static, str> {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::borrow::Cow<'static, str> {
    fn de(v: &Value) -> Result<Self, DeError> {
        String::de(v).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::de).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(x) => x.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        T::de(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn ser(&self) -> Value {
        Value::Seq(vec![self.0.ser(), self.1.ser()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((A::de(&items[0])?, B::de(&items[1])?)),
            other => Err(DeError::new(format!("expected 2-array, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn ser(&self) -> Value {
        Value::Seq(vec![self.0.ser(), self.1.ser(), self.2.ser()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => {
                Ok((A::de(&items[0])?, B::de(&items[1])?, C::de(&items[2])?))
            }
            other => Err(DeError::new(format!("expected 3-array, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn ser(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.ser())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::de(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.ser())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::de(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::de(&3.25f64.ser()).unwrap(), 3.25);
        assert_eq!(usize::de(&7usize.ser()).unwrap(), 7);
        assert!(bool::de(&true.ser()).unwrap());
        assert_eq!(String::de(&"hi".to_string().ser()).unwrap(), "hi");
        assert!(usize::de(&Value::Num(1.5)).is_err());
        assert!(usize::de(&Value::Num(-2.0)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::de(&v.ser()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::de(&o.ser()).unwrap(), None);
        let p = (2usize, "x".to_string());
        assert_eq!(<(usize, String)>::de(&p.ser()).unwrap(), p);
    }
}
