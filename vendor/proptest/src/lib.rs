//! Offline stand-in for `proptest`: the strategy combinators and macros this
//! workspace's property tests use.
//!
//! Differences from upstream: no shrinking (a failing case is reported with
//! its formatted message only), and generation is driven by a deterministic
//! per-test seed derived from the test function's name so runs are
//! reproducible.

extern crate self as proptest;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case's body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream there is no value tree: `gen` produces a finished value
/// directly from the RNG.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Build a recursive strategy: `depth` rounds of wrapping the current
    /// strategy with `f`, each round choosing 50/50 between a base value and
    /// a deeper one, so both shallow and deep structures are produced.
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth.max(1) {
            let deeper = f(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut StdRng) -> T {
        self.inner.gen(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// Uniform choice among boxed alternatives; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].gen(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn gen(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn gen(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn gen(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification: a fixed `usize` or a half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection::vec");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring upstream's `proptest::strategy` module.
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derive a stable 64-bit seed from a test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one property: generate cases with `make_case` until `cases` of them
/// are accepted, panicking on the first failure. `make_case` both generates
/// inputs and runs the body.
pub fn run_property(
    test_name: &str,
    config: &ProptestConfig,
    mut make_case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_name));
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let attempt_limit = config.cases.saturating_mul(20).saturating_add(100);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= attempt_limit,
            "{test_name}: gave up after {attempts} attempts \
             ({accepted}/{} cases accepted); prop_assume! rejects too much",
            config.cases
        );
        match make_case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::gen(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{} at {}:{}",
                ::std::format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?} == {:?}`: {} at {}:{}",
                left,
                right,
                ::std::format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(usize),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(mut xs in proptest::collection::vec(0u64..10, 2..6)) {
            xs.push(0);
            prop_assert!(xs.len() >= 3 && xs.len() <= 6);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn recursive_strategies_terminate(t in tree()) {
            prop_assert!(depth(&t) <= 5);
        }

        #[test]
        fn oneof_and_bool_cover_arms(b in proptest::bool::ANY, k in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(k == 1 || k == 2);
            // `b` is just exercised for coverage of both generator arms.
            prop_assert!((b as u8) <= 1);
        }
    }

    fn tree() -> impl Strategy<Value = Tree> {
        (0usize..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 3, |inner| {
                proptest::collection::vec(inner, 1..4).prop_map(Tree::Node)
            })
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
