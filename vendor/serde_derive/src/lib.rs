//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the workspace serde stand-in's `Serialize` /
//! `Deserialize` traits (value-tree model, not upstream serde's visitor
//! model). Implemented directly on `proc_macro::TokenStream` — the build
//! environment has no `syn`/`quote` — so it supports exactly the shapes
//! this workspace uses:
//!
//! * structs with named fields (any visibility),
//! * enums with unit, tuple, and struct variants,
//! * the `#[serde(default)]` field attribute.
//!
//! Generics, tuple structs, and other serde attributes are rejected with a
//! compile error naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]`: missing key deserializes via `Default`.
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skip one attribute (`#` `[...]`) if the iterator is positioned at one;
/// returns the bracket group when skipped.
fn take_attr(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Option<TokenStream> {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    Some(g.stream())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Does an attribute body (`serde(default)` etc.) mark a defaulted field?
fn attr_is_serde_default(body: &TokenStream) -> bool {
    let mut it = body.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parse `name: Type, name: Type, …` (named fields), honouring
/// `#[serde(default)]` and skipping doc comments.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut default = false;
        while let Some(attr) = take_attr(&mut tokens) {
            default |= attr_is_serde_default(&attr);
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: commas inside `<…>` belong to the type, commas at
        // angle-depth zero separate fields (parens/brackets are token
        // groups and need no tracking).
        let mut angle_depth = 0usize;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Count the comma-separated types of a tuple-variant payload.
fn tuple_arity(body: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    for t in body {
        any = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => commas += 1,
            _ => {}
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while take_attr(&mut tokens).is_some() {}
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            Some(other) => return Err(format!("expected `,` after variant, found `{other}`")),
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    while take_attr(&mut tokens).is_some() {}
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    // Walk to the body brace at angle-depth zero. Any `<` before it means
    // generics, which this stand-in does not support.
    let angle_depth = 0usize;
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("`{name}`: generic types are not supported"));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && angle_depth == 0 => {
                break g.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("`{name}`: tuple/unit structs are not supported"));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("`{name}`: tuple structs are not supported"));
            }
            Some(_) => {}
            None => return Err(format!("`{name}`: no body found")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Shape::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn fields_ser(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__m.push((\"{n}\".to_string(), ::serde::Serialize::ser(&{p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("::serde::Value::Map(__m) }");
    out
}

fn fields_de(fields: &[Field], source: &str, ty_name: &str) -> String {
    let mut out = String::from("{\n");
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::DeError::new(\"missing field `{}` in {}\"))",
                f.name, ty_name
            )
        };
        out.push_str(&format!(
            "{n}: match {src}.get(\"{n}\") {{ Some(__x) => ::serde::Deserialize::de(__x)?, None => {missing} }},\n",
            n = f.name,
            src = source,
        ));
    }
    out.push('}');
    out
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
                body = fields_ser(fields, "self."),
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::ser(__f0))]),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let binders: Vec<String> = (0..*k).map(|i| format!("__f{i}")).collect();
                        let sers: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::ser({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({bind}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{sers}]))]),\n",
                            bind = binders.join(", "),
                            sers = sers.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bind} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {body})]),\n",
                            bind = binders.join(", "),
                            body = fields_ser(fields, ""),
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            format!(
                "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
                 fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(__v, ::serde::Value::Map(_)) {{\n\
                   return Err(::serde::DeError::new(\"expected object for {name}\"));\n\
                 }}\n\
                 Ok({name} {body})\n}}\n}}\n",
                body = fields_de(fields, "__v", name),
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"))
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::de(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let gets: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Deserialize::de(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {k} => Ok({name}::{vn}({gets})),\n\
                             _ => Err(::serde::DeError::new(\"variant {name}::{vn} expects a {k}-array\")),\n\
                             }},\n",
                            gets = gets.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn} {body}),\n",
                        body = fields_de(fields, "__payload", name),
                    )),
                }
            }
            format!(
                "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
                 fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::new(\"expected {name} variant tag\")),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive stand-in generated invalid Rust"),
        Err(msg) => format!("compile_error!(\"serde derive stand-in: {msg}\");")
            .parse()
            .unwrap(),
    }
}

/// Derive the workspace `serde::Serialize` stand-in trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the workspace `serde::Deserialize` stand-in trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
