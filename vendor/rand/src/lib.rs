//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small API subset it actually uses: the [`Rng`]
//! and [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256** seeded through
//! SplitMix64), and [`seq::SliceRandom`] (Fisher–Yates shuffle, `choose`).
//!
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`, but every
//! consumer in this workspace treats the generator as an opaque seeded
//! source, so only statistical quality and cross-run determinism matter.
//! Determinism contract: a given seed produces the same stream on every
//! platform and every run.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// Next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Conversion of raw words into uniformly distributed values; the stand-in
/// for upstream's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw a uniform value of `Self` from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly; the stand-in for upstream's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        lo + (hi - lo) * f64::from_rng(rng)
    }
}

/// Unbiased integer sampling on `[0, bound)` by Lemire-style widening
/// multiplication with rejection.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.clone().into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (floats in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in the given range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; perturb.
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        // All values of a small range are reachable.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
