//! Offline stand-in for `serde_json`: render and parse the workspace serde
//! stand-in's [`serde::Value`] tree as JSON text.
//!
//! Numbers are emitted with Rust's `{:?}` float formatting (shortest
//! representation that round-trips exactly), integers without a decimal
//! point; parsing accepts standard JSON. `NaN`/infinite values serialize as
//! `null`, matching upstream serde_json's lossy float behaviour closely
//! enough for this workspace (no consumer serializes non-finite values).

use std::fmt;

pub use serde::Value;

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n:?}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), None, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parse JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::de(&value).map_err(|e| Error(e.to_string()))
}

/// Parse JSON text into the generic value tree.
pub fn value_from_str(s: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.parse_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Map(vec![
            ("a".into(), Value::Num(1.5)),
            ("b".into(), Value::Seq(vec![Value::Null, Value::Bool(true)])),
            ("c".into(), Value::Str("x\"y\\z\n".into())),
            ("n".into(), Value::Num(12345.0)),
        ]);
        let text = {
            let mut out = String::new();
            super::write_value(&mut out, &v, None, 0);
            out
        };
        let back = value_from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e-17, 123456.789, -0.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back);
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![1.0f64, 2.0, 3.5];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
