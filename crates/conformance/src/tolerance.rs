//! Tolerance vocabulary for float comparisons across the test suite.
//!
//! Exact `==` on floats and unwrapped `partial_cmp` are silent-failure
//! surfaces: they pass today because two code paths happen to round the
//! same way, then break (or worse, keep passing vacuously) under the next
//! refactor. Everything here compares with explicit tolerances and says
//! *how far off* a failure was.

/// True when `a` and `b` agree to `tol`, measured relative to the larger
/// magnitude once that magnitude exceeds 1 (so `tol` reads as an absolute
/// tolerance near zero and a relative one for large values).
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // Covers equal infinities and exact hits.
        return true;
    }
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}

/// Relative error `|a − b| / max(|a|, |b|)`, zero when both are zero.
pub fn rel_err(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        return 0.0;
    }
    (a - b).abs() / scale
}

/// Largest absolute elementwise difference of two equal-length slices.
///
/// Panics on length mismatch — a dimension mismatch is a structural bug,
/// not a numerical one.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "max_abs_diff: {} vs {} entries",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Kolmogorov–Smirnov statistic between two discrete distributions on the
/// same ordered support: the largest absolute difference of their CDFs.
pub fn ks_statistic(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(
        p.len(),
        q.len(),
        "ks_statistic: {} vs {} states",
        p.len(),
        q.len()
    );
    let mut cp = 0.0;
    let mut cq = 0.0;
    let mut worst = 0.0_f64;
    for (&a, &b) in p.iter().zip(q.iter()) {
        cp += a;
        cq += b;
        worst = worst.max((cp - cq).abs());
    }
    worst
}

/// Statistical-equivalence gate for sampled posteriors (Gibbs) against an
/// exact one. "Equivalent" means two things at once:
///
/// * the KS statistic of the two discrete distributions is at most
///   `ks_tol` — the shapes agree state by state;
/// * the posterior means agree within `mean_tol` *of the support spread*
///   (`max − min` of the state values), so the tolerance is scale-free.
///
/// The tolerances are calibrated to the sampling budget, not machine
/// epsilon: a correct sampler with `n` effective samples has KS noise of
/// roughly `1/√n`, so gates sit an order of magnitude above that and still
/// catch any systematic bias (wrong conditional, broken normalization).
#[derive(Debug, Clone, Copy)]
pub struct StatGate {
    /// Largest admissible KS statistic.
    pub ks_tol: f64,
    /// Largest admissible mean gap, as a fraction of the support spread.
    pub mean_tol: f64,
}

impl Default for StatGate {
    fn default() -> Self {
        StatGate {
            ks_tol: 0.08,
            mean_tol: 0.08,
        }
    }
}

impl StatGate {
    /// Check a sampled distribution against the exact one over `support`.
    pub fn check(&self, exact: &[f64], sampled: &[f64], support: &[f64]) -> Result<(), String> {
        if exact.len() != sampled.len() || exact.len() != support.len() {
            return Err(format!(
                "state-count mismatch: exact {}, sampled {}, support {}",
                exact.len(),
                sampled.len(),
                support.len()
            ));
        }
        let ks = ks_statistic(exact, sampled);
        if ks > self.ks_tol {
            return Err(format!(
                "KS statistic {ks:.4} exceeds tolerance {}",
                self.ks_tol
            ));
        }
        let mean = |p: &[f64]| -> f64 { support.iter().zip(p).map(|(&v, &w)| v * w).sum() };
        let spread = support.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - support.iter().copied().fold(f64::INFINITY, f64::min);
        let gap = (mean(exact) - mean(sampled)).abs();
        if gap > self.mean_tol * spread.max(f64::MIN_POSITIVE) {
            return Err(format!(
                "posterior-mean gap {gap:.4} exceeds {} of support spread {spread:.4}",
                self.mean_tol
            ));
        }
        Ok(())
    }
}

/// Assert two `f64` expressions agree; optional third argument overrides
/// the default tolerance of `1e-9` (see [`close`] for its semantics).
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr $(,)?) => {
        $crate::assert_close!($a, $b, 1e-9)
    };
    ($a:expr, $b:expr, $tol:expr $(,)?) => {{
        let (a, b): (f64, f64) = ($a, $b);
        assert!(
            $crate::tolerance::close(a, b, $tol),
            "assert_close!({} ≈ {}) failed: |Δ| = {:e}, tol = {:e}",
            a,
            b,
            (a - b).abs(),
            $tol
        );
    }};
}

/// Assert two probability vectors (or any equal-length slices) agree
/// elementwise; optional third argument overrides the default tolerance
/// of `1e-9` on the largest absolute difference.
#[macro_export]
macro_rules! assert_dist_close {
    ($a:expr, $b:expr $(,)?) => {
        $crate::assert_dist_close!($a, $b, 1e-9)
    };
    ($a:expr, $b:expr, $tol:expr $(,)?) => {{
        let a: &[f64] = &$a;
        let b: &[f64] = &$b;
        let d = $crate::tolerance::max_abs_diff(a, b);
        assert!(
            d <= $tol,
            "assert_dist_close! failed: max |Δ| = {:e}, tol = {:e}\n  left: {:?}\n right: {:?}",
            d,
            $tol,
            a,
            b
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_is_absolute_near_zero_and_relative_at_scale() {
        assert!(close(0.0, 5e-10, 1e-9));
        assert!(!close(0.0, 5e-9, 1e-9));
        assert!(close(1e12, 1e12 + 1.0, 1e-9));
        assert!(!close(1e12, 1e12 + 1e4, 1e-9));
        assert!(close(f64::INFINITY, f64::INFINITY, 1e-9));
    }

    #[test]
    fn rel_err_basics() {
        assert_close!(rel_err(2.0, 1.0), 0.5);
        assert_close!(rel_err(0.0, 0.0), 0.0);
        assert_close!(rel_err(-1.0, 1.0), 2.0);
    }

    #[test]
    fn ks_statistic_of_identical_distributions_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert_close!(ks_statistic(&p, &p), 0.0);
        // Moving 0.1 of mass from state 0 to state 2 shifts the CDF by 0.1
        // at the first two steps.
        let q = [0.1, 0.3, 0.6];
        assert_close!(ks_statistic(&p, &q), 0.1);
    }

    #[test]
    fn stat_gate_accepts_noise_and_rejects_bias() {
        let gate = StatGate::default();
        let support = [1.0, 2.0, 3.0];
        let exact = [0.2, 0.5, 0.3];
        let noisy = [0.21, 0.49, 0.30];
        assert!(gate.check(&exact, &noisy, &support).is_ok());
        let biased = [0.45, 0.35, 0.20];
        assert!(gate.check(&exact, &biased, &support).is_err());
        assert!(gate.check(&exact, &noisy, &support[..2]).is_err());
    }

    #[test]
    fn macros_accept_custom_tolerances() {
        assert_close!(1.0, 1.0 + 1e-10);
        assert_close!(1.0, 1.05, 0.1);
        assert_dist_close!([0.5, 0.5], [0.5, 0.5 + 1e-12]);
        let (sampled, exact) = (vec![0.4, 0.6], vec![0.42, 0.58]);
        assert_dist_close!(sampled, exact, 0.05);
    }

    #[test]
    #[should_panic(expected = "assert_close!")]
    fn assert_close_fires() {
        assert_close!(1.0, 1.1);
    }

    #[test]
    #[should_panic(expected = "assert_dist_close!")]
    fn assert_dist_close_fires() {
        assert_dist_close!([0.5, 0.5], [0.6, 0.4]);
    }
}
