//! Deterministic instance generators for the differential harness.
//!
//! Two families:
//!
//! * **Exactly solvable KERT environments** — sequential-only random
//!   workflows (`GenOptions::sequential_only`) simulated through the bench
//!   scenario machinery, then built into real KERT-BNs with the production
//!   constructors. The continuous build is linear-Gaussian (the
//!   [`crate::gaussian::GaussianOracle`] family); the discrete companion
//!   keeps a small enough state space for the enumeration oracle.
//! * **Random discrete networks** — arbitrary small DAGs with strictly
//!   positive random CPTs: irreducible for Gibbs, feasible for
//!   enumeration, and unconstrained by workflow structure so elimination
//!   orderings and pruning see varied shapes.

use kert_bayes::cpd::{Cpd, TabularCpd};
use kert_bayes::{BayesianNetwork, Dag, Variable};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::{ContinuousKertOptions, DiscreteKertOptions, KertBn};
use kert_workflow::GenOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A continuous linear-Gaussian KERT instance with its discrete companion
/// built on the same training window, plus one held-out probe row for
/// evidence values.
pub struct LinearInstance {
    /// Continuous KERT-BN (linear-Gaussian by construction).
    pub continuous: KertBn,
    /// Discrete KERT-BN on the same data, 3 bins per node — small enough
    /// for the enumeration oracle.
    pub discrete: KertBn,
    /// Number of services (`D` is node `n_services`).
    pub n_services: usize,
    /// One held-out row (`X1…Xn, D`) supplying realistic evidence values.
    pub probe: Vec<f64>,
}

/// Build one exactly-solvable instance, fully determined by `seed`:
/// 3–5 services, sequential workflow, 90 training rows.
pub fn random_linear_instance(seed: u64) -> LinearInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_services = rng.gen_range(3..=5);
    let options = ScenarioOptions {
        gen: GenOptions::sequential_only(),
        ..ScenarioOptions::default()
    };
    let mut env = Environment::random(n_services, options, seed);
    let (train, probe_set) = env.datasets(90, 1, seed ^ 0x5eed_0001);
    let continuous =
        KertBn::build_continuous(&env.knowledge, &train, ContinuousKertOptions::default())
            .expect("sequential environments build cleanly");
    let discrete = KertBn::build_discrete(
        &env.knowledge,
        &train,
        DiscreteKertOptions {
            bins: 3,
            ..DiscreteKertOptions::default()
        },
    )
    .expect("discrete build on the same window");
    LinearInstance {
        continuous,
        discrete,
        n_services,
        probe: probe_set.row(0).to_vec(),
    }
}

/// Random small discrete network, fully determined by `seed`: 4–7 nodes,
/// cardinalities 2–3, each earlier node a parent with probability 0.4
/// (capped at 3 parents), CPT entries drawn from `[0.2, 1)` and
/// normalized — strictly positive everywhere, so Gibbs chains are
/// irreducible and no evidence has zero mass.
pub fn random_discrete_network(seed: u64) -> BayesianNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..=7);
    let cards: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=3)).collect();
    let mut dag = Dag::new(n);
    let mut cpds = Vec::with_capacity(n);
    for child in 0..n {
        let mut parents: Vec<usize> = (0..child).filter(|_| rng.gen::<f64>() < 0.4).collect();
        parents.truncate(3);
        for &p in &parents {
            dag.add_edge(p, child).expect("edges follow node order");
        }
        let parent_cards: Vec<usize> = parents.iter().map(|&p| cards[p]).collect();
        let configs: usize = parent_cards.iter().product::<usize>().max(1);
        let mut table = Vec::with_capacity(configs * cards[child]);
        for _ in 0..configs {
            let mut row: Vec<f64> = (0..cards[child]).map(|_| rng.gen_range(0.2..1.0)).collect();
            let total: f64 = row.iter().sum();
            for v in &mut row {
                *v /= total;
            }
            table.extend(row);
        }
        cpds.push(Cpd::Tabular(
            TabularCpd::new(child, parents, cards[child], parent_cards, table)
                .expect("generated tables are valid"),
        ));
    }
    let vars: Vec<Variable> = cards
        .iter()
        .enumerate()
        .map(|(i, &c)| Variable::discrete(format!("V{i}"), c))
        .collect();
    BayesianNetwork::new(vars, dag, cpds).expect("generated networks are valid")
}

/// A random query against a discrete network: a target node plus evidence
/// on a random subset of the remaining nodes (each with probability 0.35).
pub fn random_discrete_query(
    network: &BayesianNetwork,
    seed: u64,
) -> (usize, std::collections::HashMap<usize, usize>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let n = network.len();
    let target = rng.gen_range(0..n);
    let mut evidence = std::collections::HashMap::new();
    for (node, v) in network.variables().iter().enumerate() {
        if node == target || rng.gen::<f64>() >= 0.35 {
            continue;
        }
        let card = match v.kind {
            kert_bayes::VariableKind::Discrete { cardinality } => cardinality,
            kert_bayes::VariableKind::Continuous => continue,
        };
        evidence.insert(node, rng.gen_range(0..card));
    }
    (target, evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::joint::is_linear_gaussian;

    #[test]
    fn linear_instances_are_linear_gaussian_and_deterministic() {
        let a = random_linear_instance(11);
        assert!(is_linear_gaussian(a.continuous.network()));
        assert_eq!(a.probe.len(), a.n_services + 1);
        assert!(a.discrete.discretizer().is_some());
        let b = random_linear_instance(11);
        assert_eq!(a.n_services, b.n_services);
        assert_eq!(a.probe, b.probe);
    }

    #[test]
    fn discrete_networks_are_valid_and_deterministic() {
        let a = random_discrete_network(5);
        let b = random_discrete_network(5);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.cpd(i).parents(), b.cpd(i).parents());
        }
        // Strictly positive CPTs.
        for cpd in a.cpds() {
            if let Cpd::Tabular(t) = cpd {
                assert!(t.table().iter().all(|&p| p > 0.0));
            }
        }
    }

    #[test]
    fn queries_stay_in_range() {
        for seed in 0..10 {
            let net = random_discrete_network(seed);
            let (target, evidence) = random_discrete_query(&net, seed);
            assert!(target < net.len());
            assert!(!evidence.contains_key(&target));
        }
    }
}
