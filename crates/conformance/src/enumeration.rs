//! Dense joint-enumeration oracle for discrete networks.
//!
//! Exact posterior marginals by brute-force summation over every full
//! assignment of the network — `O(∏ cardᵢ)` work, feasible up to roughly
//! twenty binary-equivalent states. The only inference-adjacent code it
//! touches is [`BayesianNetwork::log_joint`], a per-row sum of per-CPD
//! log-probabilities: no factors, no elimination orderings, no pruning —
//! nothing shared with the paths under test.

use std::collections::HashMap;

use kert_bayes::{BayesianNetwork, VariableKind};

/// Hard cap on the enumerated state space (≈ 2²⁰ binary-equivalent).
pub const MAX_STATES: usize = 1 << 20;

/// The oracle: cardinalities captured once, queries by full summation.
#[derive(Debug, Clone)]
pub struct EnumerationOracle {
    cards: Vec<usize>,
}

impl EnumerationOracle {
    /// Build for a fully discrete network; errors on continuous nodes or a
    /// state space beyond [`MAX_STATES`].
    pub fn new(network: &BayesianNetwork) -> Result<Self, String> {
        let mut cards = Vec::with_capacity(network.len());
        for (i, v) in network.variables().iter().enumerate() {
            match v.kind {
                VariableKind::Discrete { cardinality } => cards.push(cardinality),
                VariableKind::Continuous => {
                    return Err(format!(
                        "node {i} is continuous; enumeration needs discrete"
                    ))
                }
            }
        }
        let mut total: usize = 1;
        for &c in &cards {
            total = total.saturating_mul(c);
            if total > MAX_STATES {
                return Err(format!("state space exceeds {MAX_STATES} configurations"));
            }
        }
        Ok(EnumerationOracle { cards })
    }

    /// Per-node cardinalities.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Exact `P(target | evidence)` by summing `exp(log_joint)` over every
    /// assignment consistent with the evidence. Evidence on the target
    /// yields the point-mass vector (matching the VE convention). Errors on
    /// zero-probability evidence.
    pub fn posterior_marginal(
        &self,
        network: &BayesianNetwork,
        target: usize,
        evidence: &HashMap<usize, usize>,
    ) -> Result<Vec<f64>, String> {
        let n = self.cards.len();
        if target >= n {
            return Err(format!("no node {target}"));
        }
        for (&node, &state) in evidence {
            if node >= n {
                return Err(format!("no evidence node {node}"));
            }
            if state >= self.cards[node] {
                return Err(format!(
                    "evidence state {state} out of range for node {node} (card {})",
                    self.cards[node]
                ));
            }
        }

        let mut acc = vec![0.0_f64; self.cards[target]];
        // Odometer over all full assignments; evidence nodes are pinned by
        // skipping inconsistent configurations (the pinned dimensions never
        // advance past their evidence state).
        let mut states = vec![0usize; n];
        for (&node, &state) in evidence {
            states[node] = state;
        }
        let mut row = vec![0.0_f64; n];
        loop {
            for (r, &s) in row.iter_mut().zip(states.iter()) {
                *r = s as f64;
            }
            let lp = network
                .log_joint(&row)
                .map_err(|e| format!("log_joint: {e}"))?;
            acc[states[target]] += lp.exp();

            // Advance the odometer over the free (non-evidence) dimensions.
            let mut pos = 0;
            loop {
                if pos == n {
                    let total: f64 = acc.iter().sum();
                    if total <= 0.0 {
                        return Err("evidence has zero probability under the model".into());
                    }
                    for a in &mut acc {
                        *a /= total;
                    }
                    return Ok(acc);
                }
                if evidence.contains_key(&pos) {
                    pos += 1;
                    continue;
                }
                states[pos] += 1;
                if states[pos] < self.cards[pos] {
                    break;
                }
                states[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Posterior mean of `target` under a state-value map (e.g. bin
    /// midpoints), the enumeration analogue of `ve::posterior_mean`.
    pub fn posterior_mean(
        &self,
        network: &BayesianNetwork,
        target: usize,
        evidence: &HashMap<usize, usize>,
        state_values: &[f64],
    ) -> Result<f64, String> {
        let probs = self.posterior_marginal(network, target, evidence)?;
        if state_values.len() != probs.len() {
            return Err(format!(
                "{} state values for {} states",
                state_values.len(),
                probs.len()
            ));
        }
        Ok(probs
            .iter()
            .zip(state_values.iter())
            .map(|(&p, &v)| p * v)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::cpd::{Cpd, TabularCpd};
    use kert_bayes::{Dag, Variable};

    /// The classic sprinkler network with known hand-computed posteriors.
    fn sprinkler() -> BayesianNetwork {
        let vars = vec![
            Variable::discrete("cloudy", 2),
            Variable::discrete("sprinkler", 2),
            Variable::discrete("rain", 2),
            Variable::discrete("wet", 2),
        ];
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 3).unwrap();
        dag.add_edge(2, 3).unwrap();
        let cpds = vec![
            Cpd::Tabular(TabularCpd::new(0, vec![], 2, vec![], vec![0.5, 0.5]).unwrap()),
            Cpd::Tabular(
                TabularCpd::new(1, vec![0], 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(2, vec![0], 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap(),
            ),
            Cpd::Tabular(
                TabularCpd::new(
                    3,
                    vec![1, 2],
                    2,
                    vec![2, 2],
                    vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
                )
                .unwrap(),
            ),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn sprinkler_posteriors_match_hand_computation() {
        let bn = sprinkler();
        let oracle = EnumerationOracle::new(&bn).unwrap();
        let mut ev = HashMap::new();
        ev.insert(3, 1usize);
        let s = oracle.posterior_marginal(&bn, 1, &ev).unwrap();
        let r = oracle.posterior_marginal(&bn, 2, &ev).unwrap();
        // Murphy's BNT reference values for P(S=1|W=1), P(R=1|W=1).
        crate::assert_close!(s[1], 0.429_763_9, 1e-6);
        crate::assert_close!(r[1], 0.707_927_7, 1e-6);
        crate::assert_close!(s[0] + s[1], 1.0);
    }

    #[test]
    fn empty_evidence_gives_the_prior_marginal() {
        let bn = sprinkler();
        let oracle = EnumerationOracle::new(&bn).unwrap();
        let c = oracle.posterior_marginal(&bn, 0, &HashMap::new()).unwrap();
        crate::assert_dist_close!(c, [0.5, 0.5]);
    }

    #[test]
    fn evidence_on_target_is_point_mass() {
        let bn = sprinkler();
        let oracle = EnumerationOracle::new(&bn).unwrap();
        let mut ev = HashMap::new();
        ev.insert(0, 1usize);
        let c = oracle.posterior_marginal(&bn, 0, &ev).unwrap();
        crate::assert_dist_close!(c, [0.0, 1.0]);
    }

    #[test]
    fn posterior_mean_weights_state_values() {
        let bn = sprinkler();
        let oracle = EnumerationOracle::new(&bn).unwrap();
        let m = oracle
            .posterior_mean(&bn, 0, &HashMap::new(), &[10.0, 30.0])
            .unwrap();
        crate::assert_close!(m, 20.0);
    }

    #[test]
    fn continuous_nodes_are_rejected() {
        let vars = vec![Variable::continuous("x")];
        let dag = Dag::new(1);
        let cpds = vec![Cpd::LinearGaussian(
            kert_bayes::cpd::LinearGaussianCpd::root(0, 0.0, 1.0),
        )];
        let bn = BayesianNetwork::new(vars, dag, cpds).unwrap();
        assert!(EnumerationOracle::new(&bn).is_err());
    }
}
