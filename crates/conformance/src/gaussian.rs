//! Closed-form linear-Gaussian oracle for continuous KERT-BNs.
//!
//! A linear-Gaussian network is the structural-equation system
//! `X = b₀ + B·X + ε`, `ε ~ N(0, S)` with `S` diagonal and `B` strictly
//! lower-triangular in topological order. Its exact joint is
//!
//! ```text
//! μ = (I − B)⁻¹ b₀          Σ = (I − B)⁻¹ S (I − B)⁻ᵀ
//! ```
//!
//! This module computes that joint by LU solve/inverse — deliberately *not*
//! the topological mean/covariance recursion of `kert_bayes::joint`, and
//! conditions it through `kert_linalg::mvn::condition_dense`'s LU Schur
//! complement — deliberately *not* the Cholesky fast path. Two independent
//! routes to the same posterior make the ≤1e-9 agreement check meaningful.

use kert_bayes::cpd::{Cpd, DetNoise};
use kert_bayes::BayesianNetwork;
use kert_linalg::mvn::{condition_dense, std_normal_cdf};
use kert_linalg::{Lu, Matrix};

/// Linear-Gaussian view of one CPD from its public accessors:
/// `(intercept, coefficients over parents, noise variance)`.
fn linear_view(cpd: &Cpd) -> Result<(f64, Vec<f64>, f64), String> {
    match cpd {
        Cpd::LinearGaussian(lg) => Ok((lg.intercept(), lg.coeffs().to_vec(), lg.variance())),
        Cpd::Deterministic(det) => match det.noise() {
            DetNoise::Gaussian { sigma } => {
                let (b0, coeffs) = det
                    .local_expr()
                    .linear_coefficients(det.parents().len())
                    .map_err(|e| format!("nonlinear deterministic CPD: {e}"))?;
                // Same variance floor the fast path applies in its
                // Gaussian reduction — a modeling decision, not part of
                // the inference algorithms under test.
                Ok((b0, coeffs, (sigma * sigma).max(1e-12)))
            }
            DetNoise::Discrete { .. } => Err("discrete deterministic CPD".into()),
        },
        Cpd::Tabular(_) => Err("tabular CPD in a Gaussian oracle".into()),
    }
}

/// A `(mean, variance)` pair describing one Gaussian posterior.
pub type MeanVar = (f64, f64);

/// The oracle: the exact joint normal of a linear-Gaussian network.
#[derive(Debug, Clone)]
pub struct GaussianOracle {
    mean: Vec<f64>,
    cov: Matrix,
}

impl GaussianOracle {
    /// Assemble the joint from the structural-equation form; errors on any
    /// CPD without a linear-Gaussian view.
    pub fn from_network(network: &BayesianNetwork) -> Result<Self, String> {
        let n = network.len();
        if n == 0 {
            return Err("empty network".into());
        }
        let mut i_minus_b = Matrix::identity(n);
        let mut b0 = vec![0.0_f64; n];
        let mut noise = Matrix::zeros(n, n);
        for (i, slot) in b0.iter_mut().enumerate() {
            let cpd = network.cpd(i);
            let (intercept, coeffs, var) = linear_view(cpd)?;
            *slot = intercept;
            noise.set(i, i, var);
            for (&p, &c) in cpd.parents().iter().zip(coeffs.iter()) {
                i_minus_b.set(i, p, -c);
            }
        }
        let lu = Lu::factor(&i_minus_b).map_err(|e| format!("I − B factorization: {e}"))?;
        let mean = lu.solve(&b0).map_err(|e| format!("mean solve: {e}"))?;
        let a = lu.inverse().map_err(|e| format!("(I − B)⁻¹: {e}"))?;
        let cov = a
            .mul(&noise)
            .and_then(|sn| sn.mul(&a.transpose()))
            .map_err(|e| format!("Σ assembly: {e}"))?;
        Ok(GaussianOracle { mean, cov })
    }

    /// Exact joint mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Exact joint covariance.
    pub fn cov(&self) -> &Matrix {
        &self.cov
    }

    /// Exact posterior `(mean, variance)` of `target` given point
    /// evidence. Empty evidence yields the marginal.
    pub fn posterior(
        &self,
        evidence: &[(usize, f64)],
        target: usize,
    ) -> Result<(f64, f64), String> {
        let n = self.mean.len();
        if target >= n {
            return Err(format!("no node {target}"));
        }
        if evidence.iter().any(|&(node, _)| node == target) {
            return Err(format!("target {target} is observed"));
        }
        if evidence.is_empty() {
            return Ok((self.mean[target], self.cov.get(target, target)));
        }
        let idx: Vec<usize> = evidence.iter().map(|&(node, _)| node).collect();
        let vals: Vec<f64> = evidence.iter().map(|&(_, v)| v).collect();
        let (free, post_mean, post_cov) = condition_dense(&self.mean, &self.cov, &idx, &vals)
            .map_err(|e| format!("conditioning: {e}"))?;
        let pos = free
            .iter()
            .position(|&f| f == target)
            .expect("target is unobserved, so it is free");
        Ok((post_mean[pos], post_cov.get(pos, pos)))
    }

    /// Exact dComp: `(prior, posterior)` as `(mean, variance)` pairs for
    /// the hidden `target` given the observed measurement means.
    pub fn dcomp(
        &self,
        observed: &[(usize, f64)],
        target: usize,
    ) -> Result<(MeanVar, MeanVar), String> {
        Ok((
            self.posterior(&[], target)?,
            self.posterior(observed, target)?,
        ))
    }

    /// Exact pAccel: `(prior D, projected D)` as `(mean, variance)` pairs
    /// with `service` pinned to `predicted_elapsed`.
    pub fn paccel(
        &self,
        d_node: usize,
        service: usize,
        predicted_elapsed: f64,
    ) -> Result<(MeanVar, MeanVar), String> {
        Ok((
            self.posterior(&[], d_node)?,
            self.posterior(&[(service, predicted_elapsed)], d_node)?,
        ))
    }

    /// Exact Eq.-5 ingredient `P(target > threshold | evidence)` by the
    /// Gaussian tail: `Φ((μ − h)/σ)`.
    pub fn violation_probability(
        &self,
        evidence: &[(usize, f64)],
        target: usize,
        threshold: f64,
    ) -> Result<f64, String> {
        let (mean, variance) = self.posterior(evidence, target)?;
        let sd = variance.max(0.0).sqrt();
        if sd <= 0.0 {
            return Ok(if mean > threshold { 1.0 } else { 0.0 });
        }
        Ok(std_normal_cdf((mean - threshold) / sd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::cpd::{DeterministicCpd, LinearGaussianCpd};
    use kert_bayes::{Dag, Expr, Variable};

    /// X0 ~ N(1, 2); X1 ~ N(3·X0 + 0.5, 1); D = X0 + X1 + N(0, 1e-8).
    fn linear_net() -> BayesianNetwork {
        let vars = vec![
            Variable::continuous("X0"),
            Variable::continuous("X1"),
            Variable::continuous("D"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 2).unwrap();
        let det = DeterministicCpd::from_network_expr(
            2,
            &Expr::Add(vec![Expr::Var(0), Expr::Var(1)]),
            DetNoise::Gaussian { sigma: 1e-4 },
        )
        .unwrap();
        let cpds = vec![
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 1.0, 2.0)),
            Cpd::LinearGaussian(LinearGaussianCpd::new(1, vec![0], 0.5, vec![3.0], 1.0).unwrap()),
            Cpd::Deterministic(det),
        ];
        BayesianNetwork::new(vars, dag, cpds).unwrap()
    }

    #[test]
    fn joint_moments_match_hand_computation() {
        let oracle = GaussianOracle::from_network(&linear_net()).unwrap();
        // μ0 = 1, μ1 = 3.5, μD = 4.5; Var0 = 2, Cov01 = 6, Var1 = 19,
        // CovD0 = 8, CovD1 = 25, VarD = 33 (+1e-8 noise).
        crate::assert_close!(oracle.mean()[0], 1.0);
        crate::assert_close!(oracle.mean()[1], 3.5);
        crate::assert_close!(oracle.mean()[2], 4.5);
        crate::assert_close!(oracle.cov().get(0, 0), 2.0);
        crate::assert_close!(oracle.cov().get(0, 1), 6.0);
        crate::assert_close!(oracle.cov().get(1, 1), 19.0);
        crate::assert_close!(oracle.cov().get(2, 0), 8.0);
        crate::assert_close!(oracle.cov().get(2, 1), 25.0);
        crate::assert_close!(oracle.cov().get(2, 2), 33.0, 1e-6);
    }

    #[test]
    fn bivariate_conditioning_matches_textbook() {
        // X1 | X0 = 2: μ = 0.5 + 3·2 = 6.5, σ² = 1 (the CPD itself).
        let oracle = GaussianOracle::from_network(&linear_net()).unwrap();
        let (m, v) = oracle.posterior(&[(0, 2.0)], 1).unwrap();
        crate::assert_close!(m, 6.5);
        crate::assert_close!(v, 1.0);
    }

    #[test]
    fn violation_probability_is_a_gaussian_tail() {
        let oracle = GaussianOracle::from_network(&linear_net()).unwrap();
        // P(X0 > μ0) = 0.5 at the mean.
        crate::assert_close!(
            oracle.violation_probability(&[], 0, 1.0).unwrap(),
            0.5,
            1e-7
        );
        let lo = oracle.violation_probability(&[], 0, 3.0).unwrap();
        let hi = oracle.violation_probability(&[], 0, -1.0).unwrap();
        assert!(lo < 0.1 && hi > 0.9);
    }

    #[test]
    fn nonlinear_networks_are_rejected() {
        let vars = vec![
            Variable::continuous("a"),
            Variable::continuous("b"),
            Variable::continuous("d"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 2).unwrap();
        let det = DeterministicCpd::from_network_expr(
            2,
            &Expr::Max(vec![Expr::Var(0), Expr::Var(1)]),
            DetNoise::Gaussian { sigma: 0.1 },
        )
        .unwrap();
        let bn = BayesianNetwork::new(
            vars,
            dag,
            vec![
                Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
                Cpd::LinearGaussian(LinearGaussianCpd::root(1, 0.0, 1.0)),
                Cpd::Deterministic(det),
            ],
        )
        .unwrap();
        assert!(GaussianOracle::from_network(&bn).is_err());
    }
}
