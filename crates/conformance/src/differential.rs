//! The differential runner: every fast inference path against the
//! matching oracle, driven through the same public entry points the
//! autonomic loop uses.
//!
//! * Discrete: stride-kernel VE (plain and pruned, all three ordering
//!   heuristics), the naive greedy VE, and the compiled junction tree
//!   against the joint-enumeration oracle at `1e-9`; multi-chain Gibbs
//!   against the same oracle through the [`StatGate`]
//!   statistical-equivalence gate.
//! * Continuous: the Cholesky joint-conditioning path (both the automatic
//!   dispatch and the pinned engine) and the dComp/pAccel/Eq.-5 entry
//!   points against the closed-form [`GaussianOracle`] at ≤1e-9 relative
//!   error on posterior means.
//! * Degraded mode: a resilient rebuild with a crashed agent, its
//!   compensation posteriors checked against the Gaussian oracle built on
//!   the *degraded* network itself.
//! * Liveness: [`perturb_tabular_cpd`] plants a seeded fault so tests can
//!   prove the comparison actually fails when a distribution is wrong.

use std::collections::HashMap;

use kert_agents::{CpdCache, FaultyFleet};
use kert_bayes::cpd::{Cpd, TabularCpd};
use kert_bayes::infer::ve::{self, EliminationHeuristic};
use kert_bayes::infer::GibbsOptions;
use kert_bayes::BayesianNetwork;
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::posterior::McOptions;
use kert_core::{
    compensate_degraded, dcomp_via, paccel_via, query_posterior_via, violation_probability_via,
    ContinuousKertOptions, Engine, KertBn, Posterior, ResilientKertOptions,
};
use kert_sim::monitor::agents_from_edges;
use kert_sim::{FaultInjector, FaultPlan};
use kert_workflow::GenOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::enumeration::EnumerationOracle;
use crate::gaussian::GaussianOracle;
use crate::gen;
use crate::tolerance::{max_abs_diff, rel_err, StatGate};

/// Every deterministic discrete fast path, labeled for failure reports.
fn discrete_fast_paths(
    network: &BayesianNetwork,
    target: usize,
    evidence: &HashMap<usize, usize>,
) -> Result<Vec<(&'static str, Vec<f64>)>, String> {
    let heuristics = [
        ("min-fill", EliminationHeuristic::MinFill),
        ("min-degree", EliminationHeuristic::MinDegree),
        ("sequential", EliminationHeuristic::Sequential),
    ];
    let mut out = Vec::new();
    for (name, h) in heuristics {
        out.push((
            name,
            ve::posterior_marginal_with(network, target, evidence, h)
                .map_err(|e| format!("ve/{name}: {e}"))?,
        ));
    }
    for (name, h) in heuristics {
        let label: &'static str = match name {
            "min-fill" => "pruned/min-fill",
            "min-degree" => "pruned/min-degree",
            _ => "pruned/sequential",
        };
        out.push((
            label,
            ve::posterior_marginal_pruned_with(network, target, evidence, h)
                .map_err(|e| format!("{label}: {e}"))?,
        ));
    }
    out.push((
        "naive",
        ve::naive::posterior_marginal(network, target, evidence)
            .map_err(|e| format!("naive: {e}"))?,
    ));
    out.push(("junction-tree", {
        let tree = kert_bayes::compile::JunctionTree::compile(network)
            .map_err(|e| format!("junction-tree: {e}"))?;
        let mut state = tree.new_state();
        let mut pins: Vec<(usize, usize)> = evidence.iter().map(|(&n, &s)| (n, s)).collect();
        pins.sort_unstable();
        for (node, s) in pins {
            tree.set_evidence(&mut state, node, s)
                .map_err(|e| format!("junction-tree: {e}"))?;
        }
        tree.marginal(&mut state, target)
            .map_err(|e| format!("junction-tree: {e}"))?
    }));
    Ok(out)
}

/// Check one discrete query: every deterministic fast path must match the
/// enumeration oracle within `tol` (largest absolute probability gap).
/// Returns the worst gap observed across paths.
pub fn check_discrete_instance(
    network: &BayesianNetwork,
    target: usize,
    evidence: &HashMap<usize, usize>,
    tol: f64,
) -> Result<f64, String> {
    let oracle = EnumerationOracle::new(network)?;
    let exact = oracle.posterior_marginal(network, target, evidence)?;
    let mut worst = 0.0_f64;
    for (label, probs) in discrete_fast_paths(network, target, evidence)? {
        if probs.len() != exact.len() {
            return Err(format!(
                "{label}: {} states vs oracle's {}",
                probs.len(),
                exact.len()
            ));
        }
        let gap = max_abs_diff(&probs, &exact);
        if gap > tol {
            return Err(format!(
                "{label} disagrees with enumeration oracle: max |Δ| = {gap:e} > {tol:e}\n \
                 fast: {probs:?}\n exact: {exact:?}"
            ));
        }
        worst = worst.max(gap);
    }
    Ok(worst)
}

/// Check Gibbs on one discrete query against the enumeration oracle
/// through the statistical-equivalence gate.
pub fn check_gibbs_instance(
    network: &BayesianNetwork,
    target: usize,
    evidence: &HashMap<usize, usize>,
    options: GibbsOptions,
    chains: usize,
    base_seed: u64,
    gate: StatGate,
) -> Result<(), String> {
    let oracle = EnumerationOracle::new(network)?;
    let exact = oracle.posterior_marginal(network, target, evidence)?;
    let sampled = kert_bayes::infer::gibbs_posterior_chains(
        network, target, evidence, options, chains, base_seed,
    )
    .map_err(|e| format!("gibbs: {e}"))?;
    // Gate over state indices: the discrete supports are the states
    // themselves for raw networks.
    let support: Vec<f64> = (0..exact.len()).map(|s| s as f64).collect();
    gate.check(&exact, &sampled, &support)
        .map_err(|e| format!("gibbs gate: {e}"))
}

/// Summary of a discrete differential sweep.
#[derive(Debug, Clone, Copy)]
pub struct DiscreteReport {
    /// Random instances checked.
    pub instances: usize,
    /// Instances that additionally ran the Gibbs gate.
    pub gibbs_checked: usize,
    /// Worst deterministic-path probability gap observed.
    pub worst_gap: f64,
}

/// Sweep `instances` random discrete networks/queries from `seed`; the
/// first `gibbs_instances` also run the Gibbs gate (lean budget sized for
/// debug-mode CI).
pub fn run_discrete_differential(
    seed: u64,
    instances: usize,
    gibbs_instances: usize,
) -> Result<DiscreteReport, String> {
    let mut worst = 0.0_f64;
    let mut gibbs_checked = 0usize;
    for i in 0..instances {
        let inst_seed = seed.wrapping_mul(10_007).wrapping_add(i as u64);
        let network = gen::random_discrete_network(inst_seed);
        let (target, evidence) = gen::random_discrete_query(&network, inst_seed);
        let gap = check_discrete_instance(&network, target, &evidence, 1e-9)
            .map_err(|e| format!("instance {i} (seed {inst_seed}): {e}"))?;
        worst = worst.max(gap);
        if i < gibbs_instances {
            check_gibbs_instance(
                &network,
                target,
                &evidence,
                GibbsOptions {
                    samples: 2_000,
                    burn_in: 300,
                    thin: 1,
                },
                2,
                inst_seed ^ 0x6b5,
                StatGate::default(),
            )
            .map_err(|e| format!("instance {i} (seed {inst_seed}): {e}"))?;
            gibbs_checked += 1;
        }
    }
    Ok(DiscreteReport {
        instances,
        gibbs_checked,
        worst_gap: worst,
    })
}

/// Summary of a continuous differential sweep.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousReport {
    /// Random instances checked.
    pub instances: usize,
    /// Worst relative error of any fast-path posterior mean vs the oracle.
    pub worst_rel_err: f64,
}

fn gaussian_moments(p: &Posterior) -> Result<(f64, f64), String> {
    match p {
        Posterior::Gaussian { mean, variance } => Ok((*mean, *variance)),
        other => Err(format!("expected a Gaussian posterior, got {other:?}")),
    }
}

fn check_moments(
    label: &str,
    fast: (f64, f64),
    exact: (f64, f64),
    worst: &mut f64,
) -> Result<(), String> {
    let mean_err = rel_err(fast.0, exact.0);
    if mean_err > 1e-9 {
        return Err(format!(
            "{label}: posterior mean {:.12e} vs oracle {:.12e} (rel err {mean_err:e})",
            fast.0, exact.0
        ));
    }
    // Variances sit near the σ² floor, so gate them with the mixed
    // absolute/relative `close` semantics instead of pure relative error.
    if !crate::tolerance::close(fast.1, exact.1, 1e-9) {
        return Err(format!(
            "{label}: posterior variance {:.12e} vs oracle {:.12e}",
            fast.1, exact.1
        ));
    }
    *worst = worst.max(mean_err);
    Ok(())
}

/// Sweep `instances` exactly-solvable KERT instances from `seed`. For each:
///
/// * dComp posteriors (prior + conditioned) through the pinned
///   Gaussian-conditioning engine *and* the automatic dispatch, vs the
///   structural-equation oracle, at ≤1e-9 relative error on means;
/// * pAccel projections and the Eq.-5 violation probability likewise;
/// * the compiled junction tree on the discrete companion model against
///   the enumeration oracle at ≤1e-9 absolute probability gap;
/// * Gibbs on the discrete companion model against the enumeration
///   oracle through the statistical-equivalence gate.
pub fn run_continuous_differential(
    seed: u64,
    instances: usize,
) -> Result<ContinuousReport, String> {
    let mut worst = 0.0_f64;
    for i in 0..instances {
        let inst_seed = seed.wrapping_mul(7_919).wrapping_add(i as u64);
        let inst = gen::random_linear_instance(inst_seed);
        let network = inst.continuous.network();
        let d_node = inst.continuous.d_node();
        let oracle = GaussianOracle::from_network(network)
            .map_err(|e| format!("instance {i} (seed {inst_seed}): oracle: {e}"))?;
        let mut rng = StdRng::seed_from_u64(inst_seed ^ 0xdead);
        let mc = McOptions::default();

        // dComp: hide service 0, observe every other column of the probe.
        let target = 0usize;
        let observed: Vec<(usize, f64)> = (0..=inst.n_services)
            .filter(|&c| c != target)
            .map(|c| (c, inst.probe[c]))
            .collect();
        let (exact_prior, exact_post) = oracle
            .dcomp(&observed, target)
            .map_err(|e| format!("instance {i}: {e}"))?;
        for engine in [Engine::GaussianConditioning, Engine::Auto] {
            let label = format!("instance {i} dComp via {engine:?}");
            let outcome = dcomp_via(network, None, &observed, target, engine, mc, &mut rng)
                .map_err(|e| format!("{label}: {e}"))?;
            check_moments(
                &label,
                gaussian_moments(&outcome.prior)?,
                exact_prior,
                &mut worst,
            )?;
            check_moments(
                &label,
                gaussian_moments(&outcome.posterior)?,
                exact_post,
                &mut worst,
            )?;
        }

        // pAccel: accelerate the slowest service to 85% of its probe value.
        let service = 1usize.min(inst.n_services - 1);
        let predicted = 0.85 * inst.probe[service].max(1e-6);
        let (exact_prior_d, exact_proj_d) = oracle
            .paccel(d_node, service, predicted)
            .map_err(|e| format!("instance {i}: {e}"))?;
        let label = format!("instance {i} pAccel");
        let outcome = paccel_via(
            network,
            None,
            d_node,
            service,
            predicted,
            Engine::GaussianConditioning,
            mc,
            &mut rng,
        )
        .map_err(|e| format!("{label}: {e}"))?;
        check_moments(
            &label,
            gaussian_moments(&outcome.prior_d)?,
            exact_prior_d,
            &mut worst,
        )?;
        check_moments(
            &label,
            gaussian_moments(&outcome.projected_d)?,
            exact_proj_d,
            &mut worst,
        )?;

        // Eq. 5: violation probability at the prior mean of D.
        let threshold = exact_prior_d.0;
        let fast_p = violation_probability_via(
            network,
            None,
            &[(service, predicted)],
            d_node,
            threshold,
            Engine::GaussianConditioning,
            mc,
            &mut rng,
        )
        .map_err(|e| format!("instance {i} violation: {e}"))?;
        let exact_p = oracle
            .violation_probability(&[(service, predicted)], d_node, threshold)
            .map_err(|e| format!("instance {i}: {e}"))?;
        // erfc vs the oracle's cdf share the same approximation; the gate
        // here is the conditioning that feeds them.
        if rel_err(fast_p, exact_p) > 1e-9 {
            return Err(format!(
                "instance {i} violation probability {fast_p:e} vs oracle {exact_p:e}"
            ));
        }
        worst = worst.max(rel_err(fast_p, exact_p));

        // Gibbs statistical equivalence on the discrete companion.
        let disc_net = inst.discrete.network();
        let disc = inst
            .discrete
            .discretizer()
            .expect("discrete models carry a discretizer");
        let mut ev = ve::Evidence::new();
        for &(node, value) in &observed {
            ev.insert(node, disc.column(node).state(value));
        }
        let enum_oracle = EnumerationOracle::new(disc_net)?;
        let exact_probs = enum_oracle
            .posterior_marginal(disc_net, target, &ev)
            .map_err(|e| format!("instance {i} discrete oracle: {e}"))?;

        // The compiled junction tree is exact — gate it at 1e-9 against
        // the enumeration oracle through the same public pinned-engine
        // entry point the autonomic loop uses.
        let jt = query_posterior_via(
            disc_net,
            Some(disc),
            &observed,
            target,
            Engine::JunctionTree,
            mc,
            &mut rng,
        )
        .map_err(|e| format!("instance {i} junction-tree: {e}"))?;
        let Posterior::Discrete {
            probs: jt_probs, ..
        } = jt
        else {
            return Err(format!(
                "instance {i}: junction tree returned a non-discrete posterior"
            ));
        };
        let jt_gap = max_abs_diff(&jt_probs, &exact_probs);
        if jt_gap > 1e-9 {
            return Err(format!(
                "instance {i} (seed {inst_seed}) junction tree disagrees with \
                 enumeration oracle: max |Δ| = {jt_gap:e} > 1e-9"
            ));
        }
        worst = worst.max(jt_gap);

        let gibbs = query_posterior_via(
            disc_net,
            Some(disc),
            &observed,
            target,
            Engine::Gibbs {
                options: GibbsOptions {
                    samples: 1_000,
                    burn_in: 150,
                    thin: 1,
                },
                chains: 2,
                base_seed: inst_seed ^ 0x61bb5,
            },
            mc,
            &mut rng,
        )
        .map_err(|e| format!("instance {i} gibbs: {e}"))?;
        let Posterior::Discrete { support, probs, .. } = gibbs else {
            return Err(format!(
                "instance {i}: gibbs returned a non-discrete posterior"
            ));
        };
        StatGate::default()
            .check(&exact_probs, &probs, &support)
            .map_err(|e| format!("instance {i} (seed {inst_seed}) gibbs gate: {e}"))?;
    }
    Ok(ContinuousReport {
        instances,
        worst_rel_err: worst,
    })
}

/// Degraded-mode conformance: bootstrap a sequential environment, crash
/// one agent, rebuild resiliently, then check the compensation posterior
/// for the crashed service against the Gaussian oracle built on the
/// degraded network itself.
pub fn check_degraded_compensation(seed: u64) -> Result<(), String> {
    const N: usize = 4;
    const WINDOW: usize = 120;
    const CRASHED: usize = 1;

    let options = ScenarioOptions {
        gen: GenOptions::sequential_only(),
        ..ScenarioOptions::default()
    };
    let mut env = Environment::random(N, options, seed);
    let mut sim_rng = StdRng::seed_from_u64(seed ^ 0xfade);
    let boot_trace = env.system.run(WINDOW, &mut sim_rng);

    let boot = KertBn::build_continuous(
        &env.knowledge,
        &boot_trace.to_dataset(None),
        ContinuousKertOptions::default(),
    )
    .map_err(|e| format!("bootstrap build: {e}"))?;
    let resilient_options = ResilientKertOptions {
        noise_sigma: boot.noise_sigma().unwrap_or(1e-3),
        ..Default::default()
    };
    let agents = agents_from_edges(N, &env.knowledge.upstream_edges);
    let mut cache = CpdCache::new(N);
    let boot_windows = boot_trace.windows(WINDOW);
    let healthy = FaultInjector::healthy(N);
    let mut boot_fleet = FaultyFleet::new(&agents, &boot_windows, &healthy);
    let seeded = KertBn::build_continuous_resilient(
        &env.knowledge,
        &mut boot_fleet,
        0,
        &mut cache,
        &resilient_options,
    )
    .map_err(|e| format!("healthy resilient bootstrap: {e}"))?;
    if seeded.is_degraded() {
        return Err("bootstrap must be all-fresh".into());
    }

    // Crash one agent and rebuild on a fresh window.
    let crash_trace = env.system.run(WINDOW, &mut sim_rng);
    let plans: Vec<FaultPlan> = (0..N)
        .map(|a| {
            if a == CRASHED {
                FaultPlan::crash_at(0)
            } else {
                FaultPlan::healthy()
            }
        })
        .collect();
    let injector = FaultInjector::new(seed ^ 0xfa17, plans).map_err(|e| format!("plans: {e}"))?;
    let crash_windows = crash_trace.windows(WINDOW);
    let mut fleet = FaultyFleet::new(&agents, &crash_windows, &injector);
    let model = KertBn::build_continuous_resilient(
        &env.knowledge,
        &mut fleet,
        0,
        &mut cache,
        &resilient_options,
    )
    .map_err(|e| format!("degraded rebuild: {e}"))?;
    if !model.degraded_services().contains(&CRASHED) {
        return Err(format!(
            "service {CRASHED} should be degraded, health: {:?}",
            model.degraded_services()
        ));
    }

    // The compensation posterior must equal the oracle's conditioning of
    // the degraded network on the same healthy evidence.
    let eval = env.system.run(200, &mut sim_rng).to_dataset(None);
    let observed: Vec<(usize, f64)> = (0..=N)
        .filter(|&c| c != CRASHED)
        .map(|c| (c, kert_linalg::stats::mean(&eval.column(c))))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let comps = compensate_degraded(&model, &observed, McOptions::default(), &mut rng)
        .map_err(|e| format!("compensation: {e}"))?;
    let comp = comps
        .iter()
        .find(|c| c.service == CRASHED)
        .ok_or("no compensation entry for the crashed service")?;
    let oracle = GaussianOracle::from_network(model.network())?;
    let (exact_prior, exact_post) = oracle.dcomp(&observed, CRASHED)?;
    let mut worst = 0.0;
    check_moments(
        "degraded prior",
        gaussian_moments(&comp.outcome.prior)?,
        exact_prior,
        &mut worst,
    )?;
    check_moments(
        "degraded posterior",
        gaussian_moments(&comp.outcome.posterior)?,
        exact_post,
        &mut worst,
    )?;
    Ok(())
}

/// Return a copy of `network` with one entry of `node`'s CPT perturbed by
/// `delta` (renormalized over its parent-configuration row) — the seeded
/// fault used to prove the differential gate is live. `node` must carry a
/// tabular CPD.
pub fn perturb_tabular_cpd(
    network: &BayesianNetwork,
    node: usize,
    delta: f64,
) -> Result<BayesianNetwork, String> {
    let Cpd::Tabular(t) = network.cpd(node) else {
        return Err(format!("node {node} does not carry a tabular CPD"));
    };
    let card = t.cardinality();
    let mut table = t.table().to_vec();
    table[0] += delta;
    let row_sum: f64 = table[..card].iter().sum();
    for v in &mut table[..card] {
        *v /= row_sum;
    }
    let perturbed = TabularCpd::new(
        node,
        t.parents().to_vec(),
        card,
        t.parent_cards().to_vec(),
        table,
    )
    .map_err(|e| format!("perturbed table: {e}"))?;
    let cpds: Vec<Cpd> = network
        .cpds()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == node {
                Cpd::Tabular(perturbed.clone())
            } else {
                c.clone()
            }
        })
        .collect();
    BayesianNetwork::new(network.variables().to_vec(), network.dag().clone(), cpds)
        .map_err(|e| format!("rebuild: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_discrete_sweep_is_clean() {
        let report = run_discrete_differential(42, 4, 1).unwrap();
        assert_eq!(report.instances, 4);
        assert_eq!(report.gibbs_checked, 1);
        assert!(report.worst_gap <= 1e-9);
    }

    #[test]
    fn perturbation_changes_the_distribution() {
        let net = gen::random_discrete_network(3);
        let bad = perturb_tabular_cpd(&net, 0, 0.2).unwrap();
        let Cpd::Tabular(a) = net.cpd(0) else {
            unreachable!()
        };
        let Cpd::Tabular(b) = bad.cpd(0) else {
            unreachable!()
        };
        assert!(max_abs_diff(a.table(), b.table()) > 0.01);
        let sum: f64 = b.table()[..b.cardinality()].iter().sum();
        crate::assert_close!(sum, 1.0);
    }
}
