//! # kert-conformance — oracles and differential gates for every fast path
//!
//! The workspace now has three answer-producing inference paths — stride
//! -kernel variable elimination (plain/pruned, three ordering heuristics),
//! multi-chain Gibbs, and joint-Gaussian conditioning — plus the dComp /
//! pAccel / Eq.-5 pipeline built on them. This crate proves they agree
//! with ground truth:
//!
//! * [`enumeration`] — a dense joint-enumeration oracle for discrete
//!   networks: exact marginals/conditionals by brute-force summation over
//!   the full joint table, built only on [`kert_bayes::BayesianNetwork::log_joint`]
//!   (per-CPD log-probabilities), none of the factor machinery under test.
//! * [`gaussian`] — a closed-form linear-Gaussian oracle: the joint normal
//!   implied by a continuous KERT-BN assembled through the structural
//!   -equation form `X = b₀ + B·X + ε` (LU solve, not the topological
//!   recursion of `kert_bayes::joint`), conditioned through an LU Schur
//!   complement (not the Cholesky fast path).
//! * [`gen`] — deterministic instance generators: random exactly-solvable
//!   KERT environments (sequential workflows → linear-Gaussian networks)
//!   and random small discrete networks with strictly positive CPTs.
//! * [`differential`] — the runner: drive every fast path through the
//!   public [`kert_core::query_posterior_via`] entry points and compare
//!   against the matching oracle; statistical-equivalence gates for Gibbs;
//!   a CPD-perturbation hook proving the gate is live.
//! * [`tolerance`] — the comparison vocabulary shared by the whole test
//!   suite: [`assert_close!`], [`assert_dist_close!`], KS statistics, and
//!   the [`tolerance::StatGate`] for sampled posteriors.

pub mod differential;
pub mod enumeration;
pub mod gaussian;
pub mod gen;
pub mod tolerance;

pub use differential::{
    check_degraded_compensation, check_discrete_instance, check_gibbs_instance,
    perturb_tabular_cpd, run_continuous_differential, run_discrete_differential, ContinuousReport,
    DiscreteReport,
};
pub use enumeration::EnumerationOracle;
pub use gaussian::GaussianOracle;
pub use gen::{
    random_discrete_network, random_discrete_query, random_linear_instance, LinearInstance,
};
pub use tolerance::{close, ks_statistic, max_abs_diff, rel_err, StatGate};
