//! The differential conformance sweeps: every fast inference path against
//! the matching exact oracle over randomized instances.
//!
//! The master seed is taken from `KERT_CONF_SEED` (default 1) so CI can
//! fan the same suite out over several seeds without recompiling.

use kert_conformance::{
    check_degraded_compensation, run_continuous_differential, run_discrete_differential,
};

fn conf_seed() -> u64 {
    std::env::var("KERT_CONF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Stride-kernel VE (three heuristics, plain and pruned), the naive
/// greedy reference, and the compiled junction tree all match the
/// joint-enumeration oracle to 1e-9 on random discrete networks; the
/// first few instances also push multi-chain Gibbs through the
/// statistical-equivalence gate.
#[test]
fn discrete_fast_paths_match_enumeration_oracle() {
    let report = run_discrete_differential(conf_seed(), 25, 6).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(report.instances, 25);
    assert_eq!(report.gibbs_checked, 6);
    assert!(
        report.worst_gap <= 1e-9,
        "worst probability gap {:e}",
        report.worst_gap
    );
}

/// The Cholesky joint-conditioning engine (pinned and auto-dispatched),
/// dComp, pAccel, and the Eq.-5 violation probability agree with the
/// structural-equation Gaussian oracle to ≤1e-9 relative error on 100
/// random exactly-solvable instances; each instance's discrete companion
/// also gates the junction-tree engine (≤1e-9) and Gibbs against the
/// enumeration oracle.
#[test]
fn continuous_fast_paths_match_gaussian_oracle_on_100_instances() {
    let report = run_continuous_differential(conf_seed(), 100).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(report.instances, 100);
    assert!(
        report.worst_rel_err <= 1e-9,
        "worst posterior-mean relative error {:e}",
        report.worst_rel_err
    );
}

/// Degraded-mode compensation (crashed agent, resilient rebuild) matches
/// the Gaussian oracle conditioned on the degraded network itself.
#[test]
fn degraded_compensation_matches_oracle() {
    let seed = conf_seed();
    for offset in 0..3u64 {
        check_degraded_compensation(seed.wrapping_mul(31).wrapping_add(offset))
            .unwrap_or_else(|e| panic!("seed offset {offset}: {e}"));
    }
}
