//! Trace-determinism gates: the daemon's span pipeline replayed under a
//! seeded virtual clock must be **bitwise reproducible**.
//!
//! The drill ([`kertd::drill`]) pushes a seed-scripted request mix
//! through the same grouping and compute code the live daemon runs
//! ([`kertd`'s `compute_group`]), with every trace context on a virtual
//! clock seeded from `(master seed, trace id)`. Two gates:
//!
//! 1. **Run-to-run**: the same seed produces byte-identical serialized
//!    span trees — ids, parent links, labels, cross-trace links, *and*
//!    timestamps.
//! 2. **Worker invariance**: 1 worker and 4 workers produce the same
//!    bytes. Span capture happens on the thread that owns the group, so
//!    scheduling must be invisible in the output.
//!
//! Both are preconditions for using traces as regression artifacts: a
//! diff between two drill runs means the *code* changed, never the
//! scheduler. The master seed comes from `KERT_CONF_SEED` (default 1);
//! CI fans the suite over seeds 1–3.

use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::serve::SharedKert;
use kert_core::{DiscreteKertOptions, KertBn};
use kert_obs::TraceTree;
use kert_workflow::GenOptions;
use kertd::drill::{run_trace_drill, DrillConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn conf_seed() -> u64 {
    std::env::var("KERT_CONF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Same model family as the serving gates: sequential workflows keep
/// node indices easy to reason about (services `0..n`, D last).
fn build_model(seed: u64) -> KertBn {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_services = rng.gen_range(4..=6);
    let options = ScenarioOptions {
        gen: GenOptions::sequential_only(),
        ..ScenarioOptions::default()
    };
    let mut env = Environment::random(n_services, options, seed);
    let (train, _) = env.datasets(700, 1, seed ^ 0x005e_4411);
    KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap()
}

fn drill(engine: &SharedKert, seed: u64, workers: usize) -> Vec<TraceTree> {
    run_trace_drill(
        engine,
        &DrillConfig {
            seed,
            requests: 48,
            max_batch: 6,
            workers,
        },
    )
}

/// The comparison form: one JSON string covering every tree. String
/// equality here *is* bitwise equality of ids, parents, labels, links,
/// and virtual-clock stamps (the vendored JSON layer prints `f64` and
/// `u64` canonically). Serialized through the wire encoder, so this is
/// also exactly what a `Response::Traces` payload would carry.
fn serialized(trees: &[TraceTree]) -> String {
    String::from_utf8(kertd::protocol::encode(&trees.to_vec()).unwrap()).unwrap()
}

#[test]
fn drill_trees_are_bitwise_identical_across_runs() {
    // Metrics mode on, so engine spans (serve.evidence, jt.collect,
    // jt.marginal) are captured into the leaders' propagate spans —
    // determinism must hold for the *full* trees, not just the daemon
    // skeleton.
    kert_obs::set_mode(kert_obs::ObsMode::Metrics);
    let seed = conf_seed();
    let engine = SharedKert::new(build_model(seed)).unwrap();

    let first = serialized(&drill(&engine, seed, 2));
    let second = serialized(&drill(&engine, seed, 2));
    assert_eq!(
        first, second,
        "identical seeds must produce byte-identical span trees (seed {seed})"
    );

    // Different seeds must actually differ (the virtual clock and the
    // scripted mix are both live, not constant).
    let other = serialized(&drill(&engine, seed ^ 0xffff, 2));
    assert_ne!(first, other, "seed must drive the drill output");
}

#[test]
fn drill_trees_are_invariant_across_worker_counts() {
    kert_obs::set_mode(kert_obs::ObsMode::Metrics);
    let seed = conf_seed();
    let engine = SharedKert::new(build_model(seed)).unwrap();

    let one = serialized(&drill(&engine, seed, 1));
    for workers in [2, 4] {
        let many = serialized(&drill(&engine, seed, workers));
        assert_eq!(
            one, many,
            "span trees changed between 1 and {workers} drill workers (seed {seed})"
        );
    }
}

#[test]
fn drill_trees_are_structurally_complete() {
    kert_obs::set_mode(kert_obs::ObsMode::Metrics);
    let seed = conf_seed();
    let engine = SharedKert::new(build_model(seed)).unwrap();
    let trees = drill(&engine, seed, 2);
    assert_eq!(trees.len(), 48);

    let mut followers = 0usize;
    let mut captured_engine_spans = 0usize;
    for (i, tree) in trees.iter().enumerate() {
        assert_eq!(tree.trace_id, i as u64 + 1, "trace-id order");
        let root = tree.find("kertd.request").expect("root span");
        assert_eq!(root.id, 1, "span ids are trace-local, starting at 1");
        assert_eq!(root.parent, 0);
        assert!(root.labels.iter().any(|(k, _)| k == "verb"));
        let qw = tree.find("kertd.queue_wait").expect("queue-wait span");
        assert_eq!(qw.parent, root.id);
        assert!(qw.labels.iter().any(|(k, _)| k == "queue_depth"));
        let gid = tree.find("kertd.coalesce.group").expect("group span");
        assert_eq!(gid.parent, root.id);
        assert!(gid.labels.iter().any(|(k, _)| k == "group_size"));
        let pid = tree.find("kertd.propagate").expect("propagate span");
        assert_eq!(pid.parent, gid.id);
        let ser = tree.find("kertd.serialize").expect("serialize span");
        assert_eq!(ser.parent, root.id);
        for span in &tree.spans {
            assert!(span.end_ns != 0, "every drill span is closed");
            assert!(span.end_ns >= span.start_ns, "virtual clock is monotone");
        }
        if pid
            .labels
            .iter()
            .any(|(k, v)| k == "shared_compute" && v == "true")
        {
            followers += 1;
            let link = pid
                .links
                .iter()
                .find(|l| l.kind == "coalesced-into")
                .expect("followers carry a leader link");
            let target = trees
                .iter()
                .find(|t| t.trace_id == link.trace_id)
                .and_then(|t| t.spans.iter().find(|s| s.id == link.span_id))
                .expect("leader link resolves inside the drill batch");
            assert_eq!(target.name, "kertd.propagate");
        }
        if tree.find("jt.marginal").is_some() {
            captured_engine_spans += 1;
        }
    }
    assert!(followers > 0, "the scripted bursts must coalesce");
    assert!(
        captured_engine_spans > 0,
        "group leaders must capture engine propagation spans"
    );

    // The whole batch renders as valid Chrome trace JSON, with a flow
    // pair per coalesce link.
    let json = kert_obs::chrome_trace_json(&trees);
    let stats = kert_obs::check_chrome_trace(&json).expect("drill export must validate");
    assert!(stats.complete >= 5 * trees.len());
    assert_eq!(stats.flows, 2 * followers);
}
