//! Streaming-vs-batch differential gates: the incremental sliding-window
//! learner against a full batch relearn, after every step of randomized
//! insert/evict streams.
//!
//! Equivalence contract (the PR's headline): discrete CPTs are **bitwise**
//! equal to `fit_all_parameters` over the window's rows; linear-Gaussian
//! CPDs agree within 1e-9. The master seed comes from `KERT_CONF_SEED`
//! (default 1) so CI fans the suite over seeds 1–3; `KERT_STREAM_SOAK`
//! raises the soak-test update count (CI uses 10⁴).

use kert_bayes::cpd::Cpd;
use kert_bayes::learn::incremental::cpd_movement;
use kert_bayes::learn::mle::{fit_all_parameters, ParamOptions};
use kert_bayes::{Dag, Dataset};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::{ContinuousKertOptions, DiscreteKertOptions, KertBn, StreamingWindow};
use kert_workflow::GenOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn conf_seed() -> u64 {
    std::env::var("KERT_CONF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A random sequential KERT environment and a row pool in training layout.
fn pool(seed: u64, rows: usize) -> (kert_workflow::WorkflowKnowledge, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_services = rng.gen_range(3..=5);
    let options = ScenarioOptions {
        gen: GenOptions::sequential_only(),
        ..ScenarioOptions::default()
    };
    let mut env = Environment::random(n_services, options, seed);
    let (data, _) = env.datasets(rows, 1, seed ^ 0x5eed_0001);
    (env.knowledge.clone(), data)
}

/// The learned-node sub-DAG (services and resources; `D` is
/// knowledge-generated, never learned).
fn learned_dag(model: &KertBn) -> Dag {
    let m = model.d_node();
    let mut dag = Dag::new(m);
    for (from, to) in model.network().dag().edges() {
        if from < m && to < m {
            dag.add_edge(from, to).unwrap();
        }
    }
    dag
}

/// Batch oracle: relearn the learned nodes over `window` with the model's
/// variables, structure, and (for discrete models) original discretizer.
fn batch_cpds(model: &KertBn, window: &Dataset) -> Vec<Cpd> {
    let m = model.d_node();
    let vars = &model.network().variables()[..m];
    let dag = learned_dag(model);
    let cols: Vec<usize> = (0..m).collect();
    let learned = match model.discretizer() {
        Some(disc) => disc.transform(window).unwrap().project(&cols).unwrap(),
        None => window.project(&cols).unwrap(),
    };
    fit_all_parameters(vars, &dag, &learned, ParamOptions::default()).unwrap()
}

/// Assert streaming == batch for one model/window state: bitwise for
/// CPTs, ≤1e-9 for linear-Gaussian CPDs.
fn assert_stream_matches_batch(model: &KertBn, window: &mut StreamingWindow, context: &str) {
    let names = model
        .network()
        .variables()
        .iter()
        .map(|v| v.name.clone())
        .collect();
    let current = window.to_dataset(names).unwrap();
    let batch = batch_cpds(model, &current);
    let outcome = window.refresh_outcome(model).unwrap();
    assert_eq!(outcome.updates.len(), batch.len(), "{context}: node count");
    for (update, want) in outcome.updates.iter().zip(batch.iter()) {
        match (&update.cpd, want) {
            (Cpd::Tabular(got), Cpd::Tabular(exp)) => {
                assert_eq!(
                    got.table(),
                    exp.table(),
                    "{context}: node {} CPT not bitwise equal to batch",
                    update.node
                );
            }
            _ => {
                let m = cpd_movement(&update.cpd, want);
                assert!(
                    m <= 1e-9,
                    "{context}: node {} drifted {m:e} from batch",
                    update.node
                );
            }
        }
    }
}

/// Drive one model through a randomized insert/evict stream, gating
/// streaming against batch after **every** step.
fn drive_random_stream(model: &KertBn, data: &Dataset, seed: u64, steps: usize, context: &str) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
    let capacity = 96;
    let mut window = StreamingWindow::new(model, capacity, ParamOptions::default()).unwrap();
    let mut cursor = 0usize;
    // Seed the window part-full so early evictions bite.
    for _ in 0..capacity / 2 {
        window.push_row(data.row(cursor % data.rows())).unwrap();
        cursor += 1;
    }
    for step in 0..steps {
        let inserts = rng.gen_range(0..=4);
        let evicts = rng.gen_range(0..=2);
        for _ in 0..inserts {
            window.push_row(data.row(cursor % data.rows())).unwrap();
            cursor += 1;
        }
        window.evict_oldest(evicts).unwrap();
        assert_stream_matches_batch(model, &mut window, &format!("{context} step {step}"));
    }
}

#[test]
fn continuous_random_streams_match_batch_after_every_step() {
    let seed = conf_seed();
    for i in 0..4u64 {
        let instance_seed = seed.wrapping_mul(1000).wrapping_add(i);
        let (knowledge, data) = pool(instance_seed, 320);
        let (train, _) = data.split_at(200);
        let model =
            KertBn::build_continuous(&knowledge, &train, ContinuousKertOptions::default()).unwrap();
        drive_random_stream(
            &model,
            &data,
            instance_seed,
            20,
            &format!("continuous instance {i}"),
        );
    }
}

#[test]
fn discrete_random_streams_are_bitwise_equal_after_every_step() {
    let seed = conf_seed();
    for i in 0..4u64 {
        let instance_seed = seed.wrapping_mul(2000).wrapping_add(i);
        let (knowledge, data) = pool(instance_seed, 320);
        let (train, _) = data.split_at(200);
        let model = KertBn::build_discrete(
            &knowledge,
            &train,
            DiscreteKertOptions {
                bins: 3,
                ..DiscreteKertOptions::default()
            },
        )
        .unwrap();
        drive_random_stream(
            &model,
            &data,
            instance_seed,
            20,
            &format!("discrete instance {i}"),
        );
    }
}

#[test]
fn duplicate_rows_stream_exactly_like_batch() {
    let seed = conf_seed();
    let (knowledge, data) = pool(seed.wrapping_add(77), 120);
    for discrete in [false, true] {
        let model = if discrete {
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
        } else {
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap()
        };
        let mut window = StreamingWindow::new(&model, 64, ParamOptions::default()).unwrap();
        // The same 8 rows inserted 4 times each: the window holds exact
        // duplicates, as a replayed report would produce upstream.
        for round in 0..4 {
            for r in 0..8 {
                window.push_row(data.row(r)).unwrap();
            }
            assert_stream_matches_batch(
                &model,
                &mut window,
                &format!("duplicates discrete={discrete} round {round}"),
            );
        }
        // Evicting duplicates one copy at a time must keep matching too.
        for k in 0..3 {
            window.evict_oldest(8).unwrap();
            assert_stream_matches_batch(
                &model,
                &mut window,
                &format!("duplicate eviction discrete={discrete} round {k}"),
            );
        }
    }
}

#[test]
fn empty_delta_refresh_is_bitwise_stable() {
    let seed = conf_seed();
    let (knowledge, data) = pool(seed.wrapping_add(99), 150);
    for discrete in [false, true] {
        let mut model = if discrete {
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
        } else {
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap()
        };
        let mut window = StreamingWindow::new(&model, 128, ParamOptions::default()).unwrap();
        window.extend(&data).unwrap();
        model.refresh_from_window(&mut window).unwrap();
        // No rows entered or left: a second refresh must report exactly
        // zero movement on every node and still match the batch oracle.
        let outcome = window.refresh_outcome(&model).unwrap();
        assert_eq!(
            outcome.max_movement(),
            0.0,
            "empty delta moved parameters (discrete={discrete})"
        );
        assert_stream_matches_batch(
            &model,
            &mut window,
            &format!("empty delta discrete={discrete}"),
        );
    }
}

/// Long-haul soak: thousands of single-row slides through a 10³-row
/// window, gated against a final batch relearn (and periodically along
/// the way). `KERT_STREAM_SOAK` sets the update count; the default keeps
/// local runs fast while CI drives 10⁴.
#[test]
fn soak_many_updates_match_final_batch_relearn() {
    let updates: usize = std::env::var("KERT_STREAM_SOAK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let seed = conf_seed();
    let (knowledge, data) = pool(seed.wrapping_add(4242), 600);
    for discrete in [false, true] {
        let model = if discrete {
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
        } else {
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap()
        };
        let mut window = StreamingWindow::new(&model, 1000, ParamOptions::default()).unwrap();
        let mut cursor = 0usize;
        for _ in 0..1000 {
            window.push_row(data.row(cursor % data.rows())).unwrap();
            cursor += 1;
        }
        for step in 0..updates {
            window.push_row(data.row(cursor % data.rows())).unwrap();
            cursor += 1;
            if (step + 1) % 2000 == 0 {
                assert_stream_matches_batch(
                    &model,
                    &mut window,
                    &format!("soak discrete={discrete} step {step}"),
                );
            }
        }
        assert_eq!(window.len(), 1000);
        assert_stream_matches_batch(
            &model,
            &mut window,
            &format!("soak discrete={discrete} final ({updates} updates)"),
        );
    }
}
