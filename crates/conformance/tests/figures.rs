//! Golden-figure regression: every figure verdict quoted in
//! `EXPERIMENTS.md` is asserted here as a named `#[test]` over the
//! committed `results/*.json` artifacts (the gates live in
//! `kert_bench::shape`), plus one scaled live re-run tying the committed
//! shape to the current code. Regenerating a results file that flips a
//! paper conclusion — or a code change that would — fails this suite, not
//! just a plot.

use kert_bench::{fig3, shape};

fn gate(name: &str, result: Result<(), String>) {
    if let Err(e) = result {
        panic!("{name}: {e}");
    }
}

/// Figure 3: KERT-BN beats NRT-BN on accuracy at every training size and
/// constructs at least 10× faster throughout.
#[test]
fn fig3_accuracy_and_construction_time_gate() {
    gate("fig3", shape::fig3_gate());
}

/// Figure 4: NRT-BN construction time grows superlinearly with the node
/// count while KERT-BN's stays near-flat; KERT wins accuracy at every
/// size in the tiny-training regime.
#[test]
fn fig4_scalability_gate() {
    gate("fig4", shape::fig4_gate());
}

/// Figure 5: decentralized learning beats centralized at every size.
#[test]
fn fig5_decentralized_learning_gate() {
    gate("fig5", shape::fig5_gate());
}

/// Figure 6: the dComp posterior of the hidden service shifts toward the
/// actual mean, narrows sharply, and concentrates its mass.
#[test]
fn fig6_dcomp_gate() {
    gate("fig6", shape::fig6_gate());
}

/// Figure 7: the pAccel projection predicts an improvement and tracks the
/// observed post-acceleration mean better than the prior.
#[test]
fn fig7_paccel_gate() {
    gate("fig7", shape::fig7_gate());
}

/// Figure 8: KERT-BN matches the exhaustively-searched NRT-BN on mean
/// relative violation error.
#[test]
fn fig8_violation_error_gate() {
    gate("fig8", shape::fig8_gate());
}

/// Fault sweep: no node ever falls to a prior-only CPD, and dComp
/// compensation beats the stale-cache fallback at every fault rate.
#[test]
fn fault_sweep_self_healing_gate() {
    gate("fault_sweep", shape::fault_sweep_gate());
}

/// Fleet chaos: the committed 10³-agent drill killed the coordinator,
/// restored warm, never fell to the prior rung, and kept a real simulated
/// sharding speedup with coherent deterministic fingerprints.
#[test]
fn fleet_chaos_resilience_gate() {
    gate("fleet_chaos", shape::fleet_chaos_gate());
}

/// Naive ablation (§4.2): the learning-free structure loses every
/// service-to-service edge; K2 recovers them without losing accuracy.
#[test]
fn ablation_naive_baseline_gate() {
    gate("ablation_naive", shape::ablation_naive_gate());
}

/// Update ablation (§2): windowed reconstruction tracks a regime change
/// better than the never-forgetting cumulative updater.
#[test]
fn ablation_update_vs_reconstruct_gate() {
    gate("ablation_update", shape::ablation_update_gate());
}

/// Pruning ablation (§7): barren-node pruning is exact and not slower.
#[test]
fn ablation_pruning_gate() {
    gate("ablation_pruning", shape::ablation_pruning_gate());
}

/// Live re-run: a scaled-down Figure 3 (8 services, two training sizes,
/// two reps) must reproduce the committed shape — KERT more accurate and
/// faster to construct — with today's code, proving the committed gates
/// describe the living system and not a fossil.
#[test]
fn fig3_scaled_rerun_preserves_the_verdict() {
    let points = fig3::run_sized(8, &[40, 160], 2, 0x7e57_f163);
    assert_eq!(points.len(), 2);
    for p in &points {
        assert!(
            p.kert_accuracy > p.nrt_accuracy,
            "@{} rows: KERT accuracy {} vs NRT {}",
            p.train_size,
            p.kert_accuracy,
            p.nrt_accuracy
        );
        assert!(
            p.kert_time < p.nrt_time,
            "@{} rows: KERT time {} vs NRT {}",
            p.train_size,
            p.kert_time,
            p.nrt_time
        );
    }
}
