//! Conformance gate: a coordinator that crashes mid-epoch and warm-
//! restores from its snapshot must be *indistinguishable in output* from
//! a coordinator that never crashed.
//!
//! This is the fleet-resilience analogue of the differential oracles: the
//! uninterrupted run is the ground truth, the crash-and-restore run is
//! the system under test, and the comparison is bitwise on the per-epoch
//! CPD fingerprints — not approximate, not statistical.

use kert_agents::{run_fleet_chaos, ChaosOptions, FleetChaosReport};
use kert_sim::CoordinatorFaultPlan;

fn base_options(seed: u64) -> ChaosOptions {
    ChaosOptions {
        n_agents: 96,
        rows_per_window: 24,
        epochs: 5,
        seed,
        fault_rate: 0.05,
        ..ChaosOptions::default()
    }
}

fn epoch_fingerprints(report: &FleetChaosReport) -> Vec<&str> {
    report
        .epochs
        .iter()
        .map(|e| e.cpd_fingerprint.as_str())
        .collect()
}

/// The equivalence gate, per seed: kill the coordinator mid-drill, warm-
/// restore it, and demand the learned models match the uninterrupted run
/// epoch by epoch — with zero prior-rung fallbacks caused by the crash.
fn restored_run_matches_uninterrupted(seed: u64) {
    let uninterrupted = run_fleet_chaos(&base_options(seed)).unwrap();
    assert_eq!(uninterrupted.coordinator_crashes, 0);

    let dir = std::env::temp_dir().join(format!("kert_conf_fleet_{}_{}", std::process::id(), seed));
    std::fs::create_dir_all(&dir).unwrap();
    let crashed = run_fleet_chaos(&ChaosOptions {
        coordinator: Some(CoordinatorFaultPlan::kill_at(2)),
        snapshot_path: Some(dir.join("coordinator.snap")),
        ..base_options(seed)
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(crashed.coordinator_crashes, 1, "the kill must fire");
    assert_eq!(crashed.warm_restores, 1, "the restart must come back warm");
    assert_eq!(
        epoch_fingerprints(&uninterrupted),
        epoch_fingerprints(&crashed),
        "seed {seed}: crash + warm restore must reproduce the \
         uninterrupted model bitwise, every epoch"
    );
    // The crash must not push any node down the ladder relative to the
    // uninterrupted run: identical rung totals, and the restore itself
    // introduces zero prior-rung fallbacks.
    assert_eq!(uninterrupted.total_fresh, crashed.total_fresh);
    assert_eq!(uninterrupted.total_stale, crashed.total_stale);
    assert_eq!(uninterrupted.total_prior, crashed.total_prior);
}

#[test]
fn restored_coordinator_matches_uninterrupted_seed_1() {
    restored_run_matches_uninterrupted(1);
}

#[test]
fn restored_coordinator_matches_uninterrupted_seed_2() {
    restored_run_matches_uninterrupted(2);
}

#[test]
fn restored_coordinator_matches_uninterrupted_seed_3() {
    restored_run_matches_uninterrupted(3);
}

/// Restoring is *warm*, not amnesiac: the restored cache serves stale
/// CPDs (with their pre-crash ages) for agents that go missing right
/// after the restart, rather than falling to the prior rung.
#[test]
fn warm_restore_serves_stale_not_prior_after_crash() {
    let dir = std::env::temp_dir().join(format!("kert_conf_stale_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // High fault rate so post-restart epochs contain missing reports.
    let report = run_fleet_chaos(&ChaosOptions {
        fault_rate: 0.3,
        epochs: 6,
        coordinator: Some(CoordinatorFaultPlan::kill_at(3)),
        snapshot_path: Some(dir.join("coordinator.snap")),
        ..base_options(7)
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(report.warm_restores, 1);
    let post_restart: Vec<_> = report.epochs.iter().filter(|e| e.epoch >= 3).collect();
    assert!(
        post_restart.iter().any(|e| e.stale > 0),
        "30% faults must produce stale serves after the restart: {post_restart:?}"
    );
    assert_eq!(
        post_restart.iter().map(|e| e.prior).sum::<usize>(),
        0,
        "a warm cache means missing reports fall to stale, never prior"
    );
}
