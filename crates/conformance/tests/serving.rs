//! Serving-vs-direct differential gates: the kertd daemon against the
//! in-process compiled engine it wraps.
//!
//! Equivalence contract (the serving PR's headline): every response the
//! daemon produces — posterior, dComp, pAccel, violation — is **bitwise
//! identical** to the same query answered by a direct [`CompiledKert`]
//! call, *whatever* the worker count or coalescing window. Coalescing
//! only regroups pure marginal reads against identical evidence, and
//! the vendored JSON layer prints `f64`s with shortest-round-trip
//! formatting, so even the serialized wire bytes must match exactly.
//!
//! The master seed comes from `KERT_CONF_SEED` (default 1); CI fans the
//! suite over seeds 1–3.

use std::time::Duration;

use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::serve::SharedKert;
use kert_core::{DiscreteKertOptions, KertBn};
use kert_workflow::GenOptions;
use kertd::protocol::{encode, Request, Response, WireDcomp, WirePaccel, WirePosterior};
use kertd::server::{serve, ServeConfig};
use kertd::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn conf_seed() -> u64 {
    std::env::var("KERT_CONF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A random discrete KERT model (sequential workflows keep node indices
/// easy to reason about: services `0..n`, D last).
fn build_model(seed: u64) -> KertBn {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_services = rng.gen_range(4..=6);
    let options = ScenarioOptions {
        gen: GenOptions::sequential_only(),
        ..ScenarioOptions::default()
    };
    let mut env = Environment::random(n_services, options, seed);
    let (train, _) = env.datasets(700, 1, seed ^ 0x005e_4411);
    KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap()
}

/// A seed-derived batch of mixed-verb requests. Every posterior/dcomp
/// pair shares one of two evidence sets so coalescing has something to
/// fold; targets stay off the evidence nodes.
fn request_batch(model: &KertBn, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c_u64);
    let d = model.d_node();
    let evidence_sets: Vec<Vec<(usize, f64)>> = (0..2)
        .map(|_| {
            // Pin the first two services with plausible raw elapsed
            // times; binning clamps, so any positive value is valid.
            (0..2).map(|svc| (svc, rng.gen_range(0.01..0.50))).collect()
        })
        .collect();
    let free_targets: Vec<usize> = (2..=d).collect();

    let mut requests = Vec::new();
    for i in 0..12 {
        let evidence = evidence_sets[i % 2].clone();
        let target = free_targets[i % free_targets.len()];
        match i % 4 {
            0 => requests.push(Request::Posterior { evidence, target }),
            1 => requests.push(Request::Dcomp {
                observed: evidence,
                targets: free_targets[..free_targets.len() - 1].to_vec(),
            }),
            2 => requests.push(Request::Paccel {
                candidates: vec![
                    (0, rng.gen_range(0.01..0.30)),
                    (1, rng.gen_range(0.01..0.30)),
                ],
            }),
            _ => requests.push(Request::Violation {
                evidence,
                thresholds: vec![rng.gen_range(0.2..0.6), rng.gen_range(0.6..1.2)],
            }),
        }
    }
    requests
}

/// The direct-engine oracle: answer `request` with a single-worker
/// [`CompiledKert`] and serialize exactly as the daemon would.
fn direct_answer(model: &KertBn, request: &Request) -> String {
    let mut engine = model.compile().unwrap();
    engine.set_workers(1);
    let response = match request {
        Request::Posterior { evidence, target } => {
            engine.set_evidence(evidence).unwrap();
            let p = engine.posterior(*target).unwrap();
            Response::Posterior(WirePosterior::from_posterior(&p).unwrap())
        }
        Request::Dcomp { observed, targets } => Response::Dcomp {
            outcomes: engine
                .dcomp_all(observed, targets)
                .unwrap()
                .iter()
                .map(|o| WireDcomp::from_outcome(o).unwrap())
                .collect(),
        },
        Request::Paccel { candidates } => Response::Paccel {
            outcomes: engine
                .paccel_batch(candidates)
                .unwrap()
                .iter()
                .map(|o| WirePaccel::from_outcome(o).unwrap())
                .collect(),
        },
        Request::Violation {
            evidence,
            thresholds,
        } => Response::Violation {
            probabilities: engine.violation_sweep(evidence, thresholds).unwrap(),
        },
        other => panic!("not a query: {other:?}"),
    };
    String::from_utf8(encode(&response).unwrap()).unwrap()
}

/// The headline gate: the same concurrent request batch against four
/// daemon configurations — {1, 4} workers × {off, 2 ms} coalescing
/// windows — must produce wire bytes identical to the direct engine,
/// request for request.
#[test]
fn daemon_wire_bytes_match_direct_engine_across_workers_and_windows() {
    let seed = conf_seed();
    let model = build_model(seed);
    let requests = request_batch(&model, seed);
    let expected: Vec<String> = requests.iter().map(|r| direct_answer(&model, r)).collect();

    for workers in [1usize, 4] {
        for window_us in [0u64, 2000] {
            // Model construction is fully seeded, so rebuilding from the
            // same seed yields the identical model for each daemon.
            let handle = serve(
                SharedKert::new(build_model(seed)).unwrap(),
                ServeConfig {
                    workers,
                    coalesce_window: Duration::from_micros(window_us),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let addr = handle.addr();

            let got: Vec<String> = std::thread::scope(|s| {
                let handles: Vec<_> = requests
                    .iter()
                    .map(|request| {
                        s.spawn(move || {
                            let mut client =
                                Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                            let response = client.request(request).unwrap();
                            String::from_utf8(encode(&response).unwrap()).unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(
                    g, e,
                    "request {i} diverged from the direct engine under \
                     {workers} workers / {window_us}µs window (seed {seed})"
                );
            }

            let mut client = Client::connect(addr).unwrap();
            assert_eq!(client.stop().unwrap(), Response::Stopping);
            handle.wait();
        }
    }
}

/// Repeating the same query through one long-lived connection must be
/// deterministic: state pooling and recycling can never bleed one
/// request's evidence into the next.
#[test]
fn repeated_queries_over_one_connection_are_deterministic() {
    let seed = conf_seed();
    let model = build_model(seed);
    let requests = request_batch(&model, seed ^ 1);
    let handle = serve(SharedKert::new(model).unwrap(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    for request in &requests {
        let first = encode(&client.request(request).unwrap()).unwrap();
        for _ in 0..3 {
            let again = encode(&client.request(request).unwrap()).unwrap();
            assert_eq!(again, first, "non-deterministic reply for {request:?}");
        }
    }
    client.stop().unwrap();
    handle.wait();
}
