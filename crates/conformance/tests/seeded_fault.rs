//! Liveness of the differential gates: a seeded fault in a CPD must make
//! the oracle comparison fail. A harness that cannot catch a planted bug
//! proves nothing when it passes.

use std::collections::HashMap;

use kert_bayes::infer::ve;
use kert_conformance::{check_discrete_instance, perturb_tabular_cpd, EnumerationOracle, StatGate};

/// Perturbing one CPT entry by 0.15 drives the fast path visibly away from
/// the clean network's oracle — far beyond the 1e-9 gate — while the same
/// gate stays clean on the unperturbed network.
#[test]
fn seeded_cpd_fault_fails_the_oracle_comparison() {
    let clean = kert_conformance::random_discrete_network(7);
    let evidence = HashMap::new();

    // Sanity: the clean network passes the full differential gate.
    let gap = check_discrete_instance(&clean, 0, &evidence, 1e-9)
        .unwrap_or_else(|e| panic!("clean network must pass: {e}"));
    assert!(gap <= 1e-9);

    // Seed the fault: node 0's prior CPT gets one entry bumped by 0.15.
    let bad = perturb_tabular_cpd(&clean, 0, 0.15).expect("node 0 is tabular");
    let oracle = EnumerationOracle::new(&clean).expect("discrete network");
    let exact = oracle
        .posterior_marginal(&clean, 0, &evidence)
        .expect("oracle runs");
    let fast = ve::posterior_marginal(&bad, 0, &evidence).expect("VE runs");
    let fault_gap = fast
        .iter()
        .zip(exact.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        fault_gap > 1e-2,
        "a 0.15 CPT perturbation must be visible; gap was {fault_gap:e}"
    );

    // And the fault propagates: a downstream node's posterior moves too,
    // so the differential sweep would catch the bug from any query angle
    // with a child of node 0.
    let child = (1..clean.len()).find(|&c| clean.cpd(c).parents().contains(&0));
    if let Some(child) = child {
        let exact_child = oracle
            .posterior_marginal(&clean, child, &evidence)
            .expect("oracle runs");
        let fast_child = ve::posterior_marginal(&bad, child, &evidence).expect("VE runs");
        let child_gap = fast_child
            .iter()
            .zip(exact_child.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(child_gap > 1e-9, "fault must propagate to children");
    }
}

/// The statistical-equivalence gate is live: a clearly shifted sample
/// distribution is rejected, while the exact distribution passes.
#[test]
fn stat_gate_rejects_a_shifted_distribution() {
    let gate = StatGate::default();
    let exact = [0.7, 0.2, 0.1];
    let support = [0.0, 1.0, 2.0];
    gate.check(&exact, &exact, &support)
        .expect("identical distributions pass");
    let shifted = [0.1, 0.2, 0.7];
    assert!(
        gate.check(&exact, &shifted, &support).is_err(),
        "a mass reversal must fail the gate"
    );
}
