//! Multivariate normal distributions: density, marginalization, exact
//! conditioning, and a sampling transform.
//!
//! A linear-Gaussian Bayesian network is jointly Gaussian; every inference
//! the paper performs on continuous KERT-BNs (data-fitting likelihood,
//! dComp posteriors, pAccel projections) is an operation on one
//! `MultivariateNormal`. Conditioning uses the Schur-complement formulas
//!
//! ```text
//! μ_{a|b} = μ_a + Σ_ab Σ_bb⁻¹ (x_b − μ_b)
//! Σ_{a|b} = Σ_aa − Σ_ab Σ_bb⁻¹ Σ_ba
//! ```
//!
//! solved through a Cholesky factor of `Σ_bb` (never forming an explicit
//! inverse).
//!
//! The crate carries no RNG dependency: sampling is exposed as a transform
//! from caller-provided i.i.d. standard normals, keeping seeding policy in
//! the layers above.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::stats;
use crate::{LinalgError, Result};

const LN_2PI: f64 = 1.8378770664093453; // ln(2π)

/// An `n`-dimensional Gaussian `N(μ, Σ)`.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    cov: Matrix,
    /// Cached Cholesky factor of Σ (lazy would complicate sharing; the
    /// constructor cost is negligible at these sizes).
    chol: Cholesky,
}

impl MultivariateNormal {
    /// Construct from a mean vector and covariance matrix.
    ///
    /// The covariance is symmetrized and, when numerically semidefinite (a
    /// routine occurrence for covariances estimated from tiny training
    /// windows), rescued with diagonal jitter.
    pub fn new(mean: Vec<f64>, mut cov: Matrix) -> Result<Self> {
        if cov.rows() != mean.len() || cov.cols() != mean.len() {
            return Err(LinalgError::ShapeMismatch(format!(
                "mvn: mean dim {} vs covariance {}x{}",
                mean.len(),
                cov.rows(),
                cov.cols()
            )));
        }
        cov.symmetrize();
        let chol = Cholesky::factor_with_jitter(&cov)?;
        Ok(MultivariateNormal { mean, cov, chol })
    }

    /// Fit a joint Gaussian to a data matrix (rows = observations) by
    /// maximum likelihood (sample mean, unbiased sample covariance).
    pub fn fit(data: &Matrix) -> Result<Self> {
        let mean = stats::column_means(data);
        let cov = stats::covariance_matrix(data);
        Self::new(mean, cov)
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Covariance matrix.
    pub fn cov(&self) -> &Matrix {
        &self.cov
    }

    /// Marginal standard deviation of component `i`.
    pub fn std_dev(&self, i: usize) -> f64 {
        self.cov.get(i, i).max(0.0).sqrt()
    }

    /// Log-density `ln N(x; μ, Σ)`.
    pub fn log_pdf(&self, x: &[f64]) -> Result<f64> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "mvn log_pdf: dim {n} vs point {}",
                x.len()
            )));
        }
        let centered: Vec<f64> = x.iter().zip(self.mean.iter()).map(|(a, m)| a - m).collect();
        // Mahalanobis distance via the forward solve: ‖L⁻¹(x−μ)‖².
        let w = self.chol.forward_solve(centered)?;
        let maha: f64 = w.iter().map(|v| v * v).sum();
        Ok(-0.5 * (n as f64 * LN_2PI + self.chol.log_det() + maha))
    }

    /// Marginal distribution over the given (distinct) component indices.
    pub fn marginal(&self, idx: &[usize]) -> Result<MultivariateNormal> {
        let mean = idx.iter().map(|&i| self.mean[i]).collect();
        let cov = self.cov.submatrix(idx, idx);
        MultivariateNormal::new(mean, cov)
    }

    /// Condition on exact observations: `p(rest | components[obs_idx] = obs_val)`.
    ///
    /// Returns the posterior over the *unobserved* components in their
    /// original relative order, along with that index order.
    pub fn condition(&self, obs_idx: &[usize], obs_val: &[f64]) -> Result<ConditionedGaussian> {
        if obs_idx.len() != obs_val.len() {
            return Err(LinalgError::ShapeMismatch(format!(
                "mvn condition: {} indices vs {} values",
                obs_idx.len(),
                obs_val.len()
            )));
        }
        let n = self.dim();
        let observed: std::collections::HashSet<usize> = obs_idx.iter().copied().collect();
        if observed.len() != obs_idx.len() {
            return Err(LinalgError::ShapeMismatch(
                "mvn condition: duplicate observation indices".into(),
            ));
        }
        let free: Vec<usize> = (0..n).filter(|i| !observed.contains(i)).collect();
        if free.is_empty() {
            return Err(LinalgError::ShapeMismatch(
                "mvn condition: all components observed".into(),
            ));
        }

        let sigma_bb = self.cov.submatrix(obs_idx, obs_idx);
        let sigma_ab = self.cov.submatrix(&free, obs_idx);
        let sigma_aa = self.cov.submatrix(&free, &free);
        let ch_bb = Cholesky::factor_with_jitter(&sigma_bb)?;

        // delta = x_b − μ_b ; w = Σ_bb⁻¹ δ
        let delta: Vec<f64> = obs_idx
            .iter()
            .zip(obs_val.iter())
            .map(|(&i, &v)| v - self.mean[i])
            .collect();
        let w = ch_bb.solve(delta)?;

        // μ_{a|b} = μ_a + Σ_ab w
        let shift = sigma_ab.mul_vec(&w)?;
        let mean: Vec<f64> = free
            .iter()
            .zip(shift.iter())
            .map(|(&i, s)| self.mean[i] + s)
            .collect();

        // Σ_{a|b} = Σ_aa − Σ_ab Σ_bb⁻¹ Σ_ba, via K = Σ_bb⁻¹ Σ_ba.
        let sigma_ba = sigma_ab.transpose();
        let k = ch_bb.solve_matrix(&sigma_ba)?;
        let reduction = sigma_ab.mul(&k)?;
        let cov = sigma_aa.sub(&reduction)?;

        Ok(ConditionedGaussian {
            free_indices: free,
            dist: MultivariateNormal::new(mean, cov)?,
        })
    }

    /// Map i.i.d. standard normals `z` (length `n`) to a sample `μ + L·z`.
    pub fn transform_standard_normals(&self, z: &[f64]) -> Vec<f64> {
        let mut x = self.chol.l_mul(z);
        for (xi, m) in x.iter_mut().zip(self.mean.iter()) {
            *xi += m;
        }
        x
    }

    /// Univariate normal CDF helper `P(component_i > threshold)`, computed
    /// from the marginal mean/variance via the error function.
    pub fn exceedance_probability(&self, i: usize, threshold: f64) -> f64 {
        let mu = self.mean[i];
        let sd = self.std_dev(i);
        if sd <= 0.0 {
            return if mu > threshold { 1.0 } else { 0.0 };
        }
        let z = (threshold - mu) / (sd * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }
}

/// Posterior produced by [`MultivariateNormal::condition`].
#[derive(Debug, Clone)]
pub struct ConditionedGaussian {
    /// Original indices of the unobserved components, ascending.
    pub free_indices: Vec<usize>,
    /// Posterior distribution over those components, in the same order.
    pub dist: MultivariateNormal,
}

impl ConditionedGaussian {
    /// Posterior mean of the original component `orig_idx`, if unobserved.
    pub fn mean_of(&self, orig_idx: usize) -> Option<f64> {
        self.pos(orig_idx).map(|p| self.dist.mean()[p])
    }

    /// Posterior variance of the original component `orig_idx`, if unobserved.
    pub fn variance_of(&self, orig_idx: usize) -> Option<f64> {
        self.pos(orig_idx).map(|p| self.dist.cov().get(p, p))
    }

    fn pos(&self, orig_idx: usize) -> Option<usize> {
        self.free_indices.iter().position(|&i| i == orig_idx)
    }
}

/// Gaussian conditioning on raw `(mean, covariance)` data through an LU
/// factorization of `Σ_bb` — the same Schur-complement formulas as
/// [`MultivariateNormal::condition`], reached by a *different*
/// factorization with no code shared beyond the matrix type.
///
/// Exists for the conformance layer: an oracle that conditions through the
/// very Cholesky it is meant to check would be circular. Returns
/// `(free_indices, posterior_mean, posterior_cov)` over the unobserved
/// components, in ascending original index order.
pub fn condition_dense(
    mean: &[f64],
    cov: &Matrix,
    obs_idx: &[usize],
    obs_val: &[f64],
) -> Result<(Vec<usize>, Vec<f64>, Matrix)> {
    let n = mean.len();
    if cov.rows() != n || cov.cols() != n {
        return Err(LinalgError::ShapeMismatch(format!(
            "condition_dense: mean dim {n} vs covariance {}x{}",
            cov.rows(),
            cov.cols()
        )));
    }
    if obs_idx.len() != obs_val.len() {
        return Err(LinalgError::ShapeMismatch(format!(
            "condition_dense: {} indices vs {} values",
            obs_idx.len(),
            obs_val.len()
        )));
    }
    let observed: std::collections::HashSet<usize> = obs_idx.iter().copied().collect();
    if observed.len() != obs_idx.len() || obs_idx.iter().any(|&i| i >= n) {
        return Err(LinalgError::ShapeMismatch(
            "condition_dense: duplicate or out-of-range observation indices".into(),
        ));
    }
    let free: Vec<usize> = (0..n).filter(|i| !observed.contains(i)).collect();
    if free.is_empty() {
        return Err(LinalgError::ShapeMismatch(
            "condition_dense: all components observed".into(),
        ));
    }

    let sigma_bb = cov.submatrix(obs_idx, obs_idx);
    let sigma_ab = cov.submatrix(&free, obs_idx);
    let sigma_aa = cov.submatrix(&free, &free);
    let lu = crate::lu::Lu::factor(&sigma_bb)?;

    let delta: Vec<f64> = obs_idx
        .iter()
        .zip(obs_val.iter())
        .map(|(&i, &v)| v - mean[i])
        .collect();
    let w = lu.solve(&delta)?;
    let shift = sigma_ab.mul_vec(&w)?;
    let post_mean: Vec<f64> = free
        .iter()
        .zip(shift.iter())
        .map(|(&i, s)| mean[i] + s)
        .collect();

    // Σ_{a|b} = Σ_aa − Σ_ab Σ_bb⁻¹ Σ_ba, with Σ_bb⁻¹ from the LU.
    let k = lu.inverse()?.mul(&cov.submatrix(obs_idx, &free))?;
    let mut post_cov = sigma_aa.sub(&sigma_ab.mul(&k)?)?;
    post_cov.symmetrize();
    Ok((free, post_mean, post_cov))
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7 — ample for threshold-violation
/// probabilities quoted to two digits).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_mvn() -> MultivariateNormal {
        // 2-D with correlation 0.6.
        let mean = vec![1.0, -2.0];
        let cov = Matrix::from_rows(&[&[4.0, 2.4], &[2.4, 4.0]]).unwrap();
        MultivariateNormal::new(mean, cov).unwrap()
    }

    #[test]
    fn log_pdf_matches_univariate_formula() {
        let mvn = MultivariateNormal::new(vec![2.0], Matrix::from_diag(&[9.0])).unwrap();
        let x = 3.5;
        let expect = -0.5 * ((2.0 * std::f64::consts::PI * 9.0).ln() + (x - 2.0_f64).powi(2) / 9.0);
        let got = mvn.log_pdf(&[x]).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn log_pdf_peaks_at_mean() {
        let mvn = demo_mvn();
        let at_mean = mvn.log_pdf(&[1.0, -2.0]).unwrap();
        let off = mvn.log_pdf(&[2.0, -1.0]).unwrap();
        assert!(at_mean > off);
    }

    #[test]
    fn conditioning_matches_textbook_bivariate_result() {
        // For bivariate N with ρ: E[a|b] = μ_a + ρ σ_a/σ_b (b−μ_b),
        // Var[a|b] = σ_a²(1−ρ²).
        let mvn = demo_mvn();
        let rho: f64 = 0.6;
        let post = mvn.condition(&[1], &[0.0]).unwrap();
        let expect_mean = 1.0 + rho * (2.0 / 2.0) * (0.0 - (-2.0));
        let expect_var = 4.0 * (1.0 - rho * rho);
        assert!((post.mean_of(0).unwrap() - expect_mean).abs() < 1e-9);
        assert!((post.variance_of(0).unwrap() - expect_var).abs() < 1e-6);
    }

    #[test]
    fn conditioning_reduces_variance() {
        let mvn = demo_mvn();
        let post = mvn.condition(&[1], &[5.0]).unwrap();
        assert!(post.variance_of(0).unwrap() < mvn.cov().get(0, 0));
    }

    #[test]
    fn conditioning_on_independent_component_changes_nothing() {
        let cov = Matrix::from_diag(&[1.0, 2.0]);
        let mvn = MultivariateNormal::new(vec![3.0, 4.0], cov).unwrap();
        let post = mvn.condition(&[1], &[100.0]).unwrap();
        assert!((post.mean_of(0).unwrap() - 3.0).abs() < 1e-9);
        assert!((post.variance_of(0).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn marginal_extracts_components() {
        let mvn = demo_mvn();
        let m = mvn.marginal(&[1]).unwrap();
        assert_eq!(m.dim(), 1);
        assert_eq!(m.mean()[0], -2.0);
        assert_eq!(m.cov().get(0, 0), 4.0);
    }

    #[test]
    fn transform_standard_normals_has_right_moments() {
        // z = 0 maps to the mean.
        let mvn = demo_mvn();
        assert_eq!(mvn.transform_standard_normals(&[0.0, 0.0]), vec![1.0, -2.0]);
    }

    #[test]
    fn fit_recovers_sample_moments() {
        let data =
            Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 12.0], &[3.0, 14.0], &[4.0, 15.0]]).unwrap();
        let mvn = MultivariateNormal::fit(&data).unwrap();
        assert!((mvn.mean()[0] - 2.5).abs() < 1e-12);
        assert!((mvn.mean()[1] - 12.75).abs() < 1e-12);
        assert!((mvn.cov().get(0, 0) - stats::variance(&data.col(0))).abs() < 1e-9);
    }

    #[test]
    fn exceedance_probability_is_calibrated() {
        let mvn = MultivariateNormal::new(vec![0.0], Matrix::from_diag(&[1.0])).unwrap();
        assert!((mvn.exceedance_probability(0, 0.0) - 0.5).abs() < 1e-7);
        // P(Z > 1.6449) ≈ 0.05
        assert!((mvn.exceedance_probability(0, 1.6449) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn erfc_symmetry_and_limits() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(-1.0) + erfc(1.0) - 2.0).abs() < 1e-12);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn condition_rejects_duplicates_and_full_observation() {
        let mvn = demo_mvn();
        assert!(mvn.condition(&[0, 0], &[1.0, 1.0]).is_err());
        assert!(mvn.condition(&[0, 1], &[1.0, 1.0]).is_err());
    }
}
