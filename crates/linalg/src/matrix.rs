//! Row-major dense matrix.
//!
//! A deliberately small surface: construction, element access, the algebra
//! needed by Gaussian-network learning and inference (multiply, transpose,
//! add, scale, submatrix extraction), and symmetric helpers. Everything is
//! `f64`; the matrices in this workspace never exceed a few hundred rows, so
//! no blocking or SIMD heroics are warranted — contiguous row-major storage
//! plus tight loops lets LLVM vectorize the hot `mul` kernel on its own.

use crate::{LinalgError, Result};

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns a shape error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "from_vec: {rows}x{cols} needs {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a matrix from nested row slices (handy in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LinalgError::ShapeMismatch(format!(
                    "from_rows: row {i} has {} columns, expected {c}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Build a column vector (`n × 1`) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Add `v` to element `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow a row mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy a column out into a fresh `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the classic i-k-j loop order so the innermost loop streams both
    /// the output row and the `rhs` row contiguously.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "mul: {}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch(format!(
                "mul_vec: {}x{} * {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            *o = dot(row, v);
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(&self, rhs: &Matrix, op: &str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "{op}: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Extract the submatrix with the given row and column index sets
    /// (in the order given; duplicates are allowed).
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (i, &r) in row_idx.iter().enumerate() {
            for (j, &c) in col_idx.iter().enumerate() {
                out.data[i * col_idx.len() + j] = self.get(r, c);
            }
        }
        out
    }

    /// Symmetrize in place: `A ← (A + Aᵀ) / 2`. Useful to scrub the tiny
    /// asymmetries accumulated while assembling covariance matrices.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let n = self.rows;
        for r in 0..n {
            for c in (r + 1)..n {
                let m = 0.5 * (self.data[r * n + c] + self.data[c * n + r]);
                self.data[r * n + c] = m;
                self.data[c * n + r] = m;
            }
        }
    }

    /// Maximum absolute difference against another matrix of the same shape.
    /// Panics on shape mismatch (test helper).
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }
}

/// Dot product of two equal-length slices. The single hottest kernel in the
/// crate; kept free-standing so both `Matrix` and the factorizations share
/// one autovectorized implementation.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// `y ← y + alpha * x` (the BLAS `axpy`), used by solvers.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        let i3 = Matrix::identity(3);
        assert_eq!(i3.mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn mul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]).unwrap();
        let v = [3.0, 4.0];
        let got = a.mul_vec(&v).unwrap();
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn submatrix_picks_requested_entries() {
        let a = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[10.0, 11.0, 12.0], &[20.0, 21.0, 22.0]])
            .unwrap();
        let s = a.submatrix(&[2, 0], &[1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 1);
        assert_eq!(s.get(0, 0), 21.0);
        assert_eq!(s.get(1, 0), 1.0);
    }

    #[test]
    fn symmetrize_averages_off_diagonal() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]).unwrap();
        a.symmetrize();
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let r: &[&[f64]] = &[&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(r).is_err());
    }

    #[test]
    fn diag_and_trace() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5, -0.5], &[1.5, 2.0]]).unwrap();
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-15);
    }
}
