//! Descriptive statistics over data matrices (rows = observations,
//! columns = variables).
//!
//! These feed the Gaussian-network learners: joint-Gaussian fitting needs
//! column means and (co)variances, discretization needs per-column ranges
//! and quantiles.

use crate::matrix::Matrix;

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n − 1`); `0.0` when `n < 2`.
pub fn variance(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Per-column means of a data matrix.
pub fn column_means(data: &Matrix) -> Vec<f64> {
    let n = data.rows();
    let p = data.cols();
    let mut means = vec![0.0; p];
    if n == 0 {
        return means;
    }
    for r in 0..n {
        for (m, &v) in means.iter_mut().zip(data.row(r)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    means
}

/// Unbiased sample covariance matrix (`p × p`) of a data matrix.
///
/// With fewer than two rows the zero matrix is returned; callers that need a
/// usable density then fall back to jittered factorization.
pub fn covariance_matrix(data: &Matrix) -> Matrix {
    let n = data.rows();
    let p = data.cols();
    let mut cov = Matrix::zeros(p, p);
    if n < 2 {
        return cov;
    }
    let means = column_means(data);
    let mut centered = vec![0.0; p];
    for r in 0..n {
        for ((c, &v), &m) in centered.iter_mut().zip(data.row(r)).zip(means.iter()) {
            *c = v - m;
        }
        for i in 0..p {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            for j in 0..=i {
                cov.add_at(i, j, ci * centered[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..p {
        for j in 0..=i {
            let v = cov.get(i, j) / denom;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    cov
}

/// Minimum and maximum of a slice; `(0, 0)` for an empty slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// Linear-interpolation quantile (`q ∈ [0, 1]`) of a slice.
///
/// Sorts a copy; fine for the small training windows this crate serves.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pearson correlation of two equal-length slices; `0` when degenerate.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Σ(x−5)² = 32, n−1 = 7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn covariance_matrix_matches_pairwise() {
        let data =
            Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.5], &[3.0, 5.5], &[4.0, 8.5]]).unwrap();
        let cov = covariance_matrix(&data);
        let x = data.col(0);
        let y = data.col(1);
        assert!((cov.get(0, 0) - variance(&x)).abs() < 1e-12);
        assert!((cov.get(1, 1) - variance(&y)).abs() < 1e-12);
        // Cross term by hand.
        let mx = mean(&x);
        let my = mean(&y);
        let sxy: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| (a - mx) * (b - my))
            .sum::<f64>()
            / 3.0;
        assert!((cov.get(0, 1) - sxy).abs() < 1e-12);
        assert_eq!(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_perfect_line_is_one() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|&x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
        assert_eq!(min_max(&[]), (0.0, 0.0));
    }
}
