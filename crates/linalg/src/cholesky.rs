//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Gaussian Bayesian-network inference reduces to conditioning multivariate
//! normals, whose covariance matrices are SPD; Cholesky (`Σ = L·Lᵀ`) gives us
//! solves, inverses, log-determinants, and the sampling transform, each in
//! `O(n³/3)` for factorization and `O(n²)` per solve.

use crate::matrix::{dot, Matrix};
use crate::{LinalgError, Result, EPS};

/// Dimensions up to this run the rank-1 recurrences on stack buffers.
/// Gram matrices in the streaming learners are `1 + |parents|`, which the
/// KERT structure caps well below this; larger factors fall back to heap
/// scratch transparently.
const RANK_ONE_STACK: usize = 8;

/// The lower-triangular Cholesky factor `L` of an SPD matrix `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read (the caller may leave garbage
    /// above the diagonal). Fails with [`LinalgError::NotPositiveDefinite`]
    /// if a pivot falls below [`EPS`].
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky: matrix is {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // s = A[i][j] - Σ_{k<j} L[i][k]·L[j][k]
                let li = &l.row(i)[..j];
                let lj = &l.row(j)[..j];
                let s = a.get(i, j) - dot(li, lj);
                if i == j {
                    if s <= EPS {
                        return Err(LinalgError::NotPositiveDefinite { index: i, pivot: s });
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factor after adding `jitter` to the diagonal; used as a fallback when
    /// a covariance matrix estimated from few samples is numerically
    /// semidefinite. Tries exponentially growing jitter up to `1e-2·trace/n`.
    pub fn factor_with_jitter(a: &Matrix) -> Result<Self> {
        match Self::factor(a) {
            Ok(c) => Ok(c),
            Err(_) => {
                let n = a.rows().max(1);
                let scale = (a.trace().abs() / n as f64).max(1.0);
                let mut jitter = scale * 1e-10;
                for _ in 0..9 {
                    let mut aj = a.clone();
                    for i in 0..a.rows() {
                        aj.add_at(i, i, jitter);
                    }
                    if let Ok(c) = Self::factor(&aj) {
                        return Ok(c);
                    }
                    jitter *= 10.0;
                }
                Self::factor(a) // return the original error
            }
        }
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` via forward/back substitution. `b` is consumed as the
    /// working buffer and returned as the solution.
    pub fn solve(&self, mut b: Vec<f64>) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky solve: dim {n} vs rhs {}",
                b.len()
            )));
        }
        // Forward: L y = b
        for i in 0..n {
            let li = &self.l.row(i)[..i];
            let s = dot(li, &b[..i]);
            b[i] = (b[i] - s) / self.l.get(i, i);
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * b[k];
            }
            b[i] = s / self.l.get(i, i);
        }
        Ok(b)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky solve_matrix: dim {n} vs rhs {}x{}",
                b.rows(),
                b.cols()
            )));
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let x = self.solve(b.col(c))?;
            for (r, v) in x.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        Ok(out)
    }

    /// Inverse of the factored matrix (used sparingly; prefer `solve`).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// `log |A| = 2 Σ log L[i][i]`; needed by multivariate-normal log-pdfs.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Forward solve only: `L y = b`. Exposed for the Mahalanobis-distance
    /// shortcut `‖L⁻¹(x-μ)‖²` in the MVN log-pdf.
    pub fn forward_solve(&self, mut b: Vec<f64>) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky forward_solve: dim {n} vs rhs {}",
                b.len()
            )));
        }
        for i in 0..n {
            let li = &self.l.row(i)[..i];
            let s = dot(li, &b[..i]);
            b[i] = (b[i] - s) / self.l.get(i, i);
        }
        Ok(b)
    }

    /// Rank-1 **update**: replace the factored matrix `A` by `A + x·xᵀ`
    /// in place, in `O(n²)`.
    ///
    /// Uses the classical hyperbolic-rotation-free recurrence (Golub & Van
    /// Loan §12.5.1 via scaled Givens rotations): at column `k` the new
    /// pivot is `r = √(L[k][k]² + x[k]²)`, and the sub-column and carry
    /// vector rotate through `(c, s) = (r / L[k][k], x[k] / L[k][k])`.
    /// Adding a positive-semidefinite rank-1 term keeps the matrix
    /// positive definite, so the update cannot fail; `x` is copied into a
    /// scratch carry buffer (stack-allocated for small dimensions).
    #[inline]
    pub fn rank_one_update(&mut self, x: &[f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky rank_one_update: dim {n} vs vector {}",
                x.len()
            )));
        }
        // Streaming learners call this once per window row; small factors
        // (the common Gram sizes) stay entirely on the stack.
        let mut w_stack = [0.0f64; RANK_ONE_STACK];
        let mut w_heap = Vec::new();
        let w: &mut [f64] = if n <= RANK_ONE_STACK {
            w_stack[..n].copy_from_slice(x);
            &mut w_stack[..n]
        } else {
            w_heap.extend_from_slice(x);
            &mut w_heap
        };
        for k in 0..n {
            let lkk = self.l.get(k, k);
            let wk = w[k];
            // √(lkk² + wk²) without `hypot`: both operands are pivots or
            // window measurements, nowhere near the over/underflow range
            // hypot guards against — and hypot is an order of magnitude
            // slower, which matters at one call per column per row.
            let r = (lkk * lkk + wk * wk).sqrt();
            // Two reciprocals replace the three per-column divisions of the
            // textbook form — division latency dominates these tiny columns.
            let inv_lkk = 1.0 / lkk;
            let inv_r = 1.0 / r;
            let c = r * inv_lkk;
            let s = wk * inv_lkk;
            let cinv = lkk * inv_r;
            self.l.set(k, k, r);
            for i in (k + 1)..n {
                let lik = (self.l.get(i, k) + s * w[i]) * cinv;
                w[i] = c * w[i] - s * lik;
                self.l.set(i, k, lik);
            }
        }
        Ok(())
    }

    /// Rank-1 **downdate**: replace the factored matrix `A` by `A − x·xᵀ`
    /// in place, in `O(n²)`.
    ///
    /// Unlike the update, a downdate can leave the matrix indefinite —
    /// e.g. removing a row that carried all the variance of a direction.
    /// Every pivot is guarded (`L[k][k]² − w[k]² > 0` with an
    /// [`EPS`]-scaled margin) and the new columns are staged in scratch,
    /// committed only after the whole recurrence succeeds — so a failed
    /// downdate returns [`LinalgError::NotPositiveDefinite`] and leaves
    /// the factor **unmodified** — never NaN, never silently indefinite.
    /// Callers (the streaming learners) treat the error as the signal to
    /// refactorize from accumulated sufficient statistics.
    #[inline]
    pub fn rank_one_downdate(&mut self, x: &[f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky rank_one_downdate: dim {n} vs vector {}",
                x.len()
            )));
        }
        // The recurrence only ever reads column `k` of the *original*
        // factor while producing column `k` of the new one, so the new
        // columns go into scratch (column-major, `cols[k·n + i]`) and are
        // committed only after every pivot has been verified — a failure
        // partway through leaves `self` untouched, without cloning `L`.
        // An infeasible downdate (A − xxᵀ indefinite) necessarily drives
        // some pivot nonpositive, so the per-pivot guard below doubles as
        // the feasibility test (Gill, Golub, Murray & Saunders 1974).
        let mut w_stack = [0.0f64; RANK_ONE_STACK];
        let mut w_heap = Vec::new();
        let w: &mut [f64] = if n <= RANK_ONE_STACK {
            w_stack[..n].copy_from_slice(x);
            &mut w_stack[..n]
        } else {
            w_heap.extend_from_slice(x);
            &mut w_heap
        };
        let mut cols_stack = [0.0f64; RANK_ONE_STACK * RANK_ONE_STACK];
        let mut cols_heap = Vec::new();
        let cols: &mut [f64] = if n <= RANK_ONE_STACK {
            &mut cols_stack[..n * n]
        } else {
            cols_heap.resize(n * n, 0.0);
            &mut cols_heap
        };
        for k in 0..n {
            let lkk = self.l.get(k, k);
            let wk = w[k];
            let d = lkk * lkk - wk * wk;
            // The global probe above guarantees feasibility in exact
            // arithmetic; this per-pivot guard catches float rounding at
            // the boundary so no sqrt of a negative ever happens.
            if d <= EPS * lkk * lkk {
                return Err(LinalgError::NotPositiveDefinite { index: k, pivot: d });
            }
            let r = d.sqrt();
            let inv_lkk = 1.0 / lkk;
            let inv_r = 1.0 / r;
            let c = r * inv_lkk;
            let s = wk * inv_lkk;
            let cinv = lkk * inv_r;
            cols[k * n + k] = r;
            for i in (k + 1)..n {
                let lik = (self.l.get(i, k) - s * w[i]) * cinv;
                w[i] = c * w[i] - s * lik;
                cols[k * n + i] = lik;
            }
        }
        for k in 0..n {
            for i in k..n {
                self.l.set(i, k, cols[k * n + i]);
            }
        }
        Ok(())
    }

    /// `L · z` — maps i.i.d. standard normals `z` to correlated samples.
    pub fn l_mul(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        debug_assert_eq!(z.len(), n);
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(&self.l.row(i)[..=i], &z[..=i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I for B with distinct entries — guaranteed SPD.
        Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 6.0, 2.5], &[1.0, 2.5, 4.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().mul(&ch.l().transpose()).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let eye = a.mul(&inv).unwrap();
        assert!(eye.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd3();
        let ld = Cholesky::factor(&a).unwrap().log_det();
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: vvᵀ with v = (1, 2) is PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        assert!(Cholesky::factor_with_jitter(&a).is_ok());
    }

    #[test]
    fn l_mul_matches_explicit_product() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let z = vec![0.3, -1.2, 2.0];
        let via_kernel = ch.l_mul(&z);
        let via_matrix = ch.l().mul_vec(&z).unwrap();
        for (a, b) in via_kernel.iter().zip(via_matrix.iter()) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rank_one_update_matches_refactorization() {
        let a = spd3();
        let x = [0.7, -1.3, 0.4];
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.rank_one_update(&x).unwrap();
        let mut ax = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                ax.add_at(i, j, x[i] * x[j]);
            }
        }
        let fresh = Cholesky::factor(&ax).unwrap();
        assert!(ch.l().max_abs_diff(fresh.l()) < 1e-12);
    }

    #[test]
    fn rank_one_downdate_matches_refactorization() {
        let a = spd3();
        let x = [0.3, 0.2, -0.1];
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.rank_one_downdate(&x).unwrap();
        let mut ax = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                ax.add_at(i, j, -x[i] * x[j]);
            }
        }
        let fresh = Cholesky::factor(&ax).unwrap();
        assert!(ch.l().max_abs_diff(fresh.l()) < 1e-12);
    }

    #[test]
    fn update_then_downdate_round_trips() {
        let a = spd3();
        let x = [2.0, -0.5, 1.5];
        let before = Cholesky::factor(&a).unwrap();
        let mut ch = before.clone();
        ch.rank_one_update(&x).unwrap();
        ch.rank_one_downdate(&x).unwrap();
        assert!(ch.l().max_abs_diff(before.l()) < 1e-9);
    }

    #[test]
    fn infeasible_downdate_errors_and_preserves_factor() {
        let a = spd3();
        let mut ch = Cholesky::factor(&a).unwrap();
        let before = ch.l().clone();
        // ‖x‖ far exceeds what A − xxᵀ can absorb: guaranteed indefinite.
        let err = ch.rank_one_downdate(&[10.0, 10.0, 10.0]);
        assert!(matches!(err, Err(LinalgError::NotPositiveDefinite { .. })));
        assert!(
            ch.l().max_abs_diff(&before) == 0.0,
            "factor must be untouched"
        );
        for i in 0..3 {
            for j in 0..=i {
                assert!(ch.l().get(i, j).is_finite());
            }
        }
    }

    #[test]
    fn rank_one_ops_reject_wrong_length() {
        let mut ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.rank_one_update(&[1.0]).is_err());
        assert!(ch.rank_one_downdate(&[1.0, 2.0]).is_err());
    }
}
