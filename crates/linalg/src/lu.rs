//! LU factorization with partial pivoting for general square systems.
//!
//! Cholesky covers the SPD covariance work; LU handles the occasional
//! general system (e.g. solving for regression coefficients expressed
//! against a non-symmetric design, or computing determinants in tests).

use crate::matrix::Matrix;
use crate::{LinalgError, Result, EPS};

/// Packed LU factorization `P·A = L·U` with partial pivoting.
///
/// `L` (unit lower) and `U` (upper) are stored in one matrix; `perm` records
/// the row permutation and `sign` its parity (for determinants).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factor a square matrix. Fails with [`LinalgError::Singular`] when the
    /// best available pivot is below [`EPS`] in absolute value.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "lu: matrix is {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut max = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < EPS {
                return Err(LinalgError::Singular { index: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(p, c));
                    lu.set(p, c, tmp);
                }
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                for c in (k + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "lu solve: dim {n} vs rhs {}",
                b.len()
            )));
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = &self.lu.row(i)[..i];
            let s = crate::matrix::dot(row, &x[..i]);
            x[i] -= s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.lu.get(i, k) * x[k];
            }
            x[i] = s / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Inverse of the original matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let x = self.solve(&e)?;
            e[c] = 0.0;
            for (r, v) in x.into_iter().enumerate() {
                inv.set(r, c, v);
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn general3() -> Matrix {
        Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, -1.0, 2.0], &[1.0, 4.0, -2.0]]).unwrap()
    }

    #[test]
    fn solve_recovers_known_solution_with_pivoting() {
        // Leading zero forces a pivot swap.
        let a = general3();
        let x_true = vec![2.0, -1.0, 3.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn det_matches_cofactor_expansion() {
        let a = general3();
        // det = 0·(2-8) − 2·(−6−2) + 1·(12+1) = 0 + 16 + 13 = 29
        let det = Lu::factor(&a).unwrap().det();
        assert!((det - 29.0).abs() < 1e-12, "det={det}");
    }

    #[test]
    fn inverse_roundtrip() {
        let a = general3();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let eye = a.mul(&inv).unwrap();
        assert!(eye.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn identity_det_is_one() {
        let lu = Lu::factor(&Matrix::identity(4)).unwrap();
        assert_eq!(lu.det(), 1.0);
    }
}
