//! # kert-linalg — compact dense linear algebra for KERT-BN
//!
//! The KERT-BN reproduction needs a small, dependency-free linear-algebra
//! kernel: conditional linear-Gaussian parameter learning is a least-squares
//! problem, Gaussian Bayesian-network inference is multivariate-normal
//! conditioning, and log-likelihood scoring needs log-determinants. Matrices
//! involved are tiny ((n+1)×(n+1) for n services, n ≤ a few hundred), so a
//! straightforward row-major dense implementation is both sufficient and
//! cache-friendly.
//!
//! Provided:
//! * [`Matrix`] — row-major dense matrix with the usual algebra.
//! * [`cholesky`] — Cholesky factorization, triangular solves, log-det.
//! * [`lu`] — LU with partial pivoting for general square systems.
//! * [`lstsq`] — linear least squares via normal equations with a ridge
//!   fallback for rank-deficient designs.
//! * [`mvn`] — multivariate normal density, sampling support, and exact
//!   conditioning (the workhorse of Gaussian BN inference).
//! * [`stats`] — column means, covariance matrices and friends.
//!
//! All routines are deterministic and allocation-conscious: factorizations
//! reuse caller-provided buffers where it matters, and nothing here spawns
//! threads (parallelism lives higher up the stack, per the workspace's
//! HPC guidelines).

// Triangular factorizations and sweeps are written as index loops on
// purpose: ranges like `(i+1)..n` over two coupled arrays express the
// textbook algorithms more clearly than iterator/enumerate chains.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod mvn;
pub mod stats;

pub use cholesky::Cholesky;
pub use lstsq::{lstsq, ridge_lstsq};
pub use lu::Lu;
pub use matrix::Matrix;
pub use mvn::MultivariateNormal;

/// Numerical tolerance used across the crate for positive-definiteness and
/// pivot checks. Chosen relative to `f64` precision and the magnitudes of
/// covariance entries encountered in response-time data (milliseconds to
/// minutes squared).
pub const EPS: f64 = 1e-12;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A matrix expected to be symmetric positive definite was not (failed
    /// pivot reported with its index and value).
    NotPositiveDefinite { index: usize, pivot: f64 },
    /// A square system was singular to working precision.
    Singular { index: usize },
    /// Operand shapes were incompatible; the message spells out both shapes.
    ShapeMismatch(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:.3e} at index {index}"
            ),
            LinalgError::Singular { index } => {
                write!(f, "matrix is singular at pivot index {index}")
            }
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
