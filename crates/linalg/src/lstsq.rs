//! Linear least squares.
//!
//! Conditional linear-Gaussian CPD learning fits
//! `X_i ≈ b₀ + Σ_k b_k · parent_k` by ordinary least squares. Designs here
//! are tall and very narrow (rows = training points, cols = |parents| + 1 ≤
//! a handful), so the normal-equations route (`XᵀX β = Xᵀy`) with a Cholesky
//! solve is both the fastest and a perfectly stable choice; a ridge fallback
//! covers the collinear/degenerate cases that small training windows produce.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Result of a least-squares fit.
#[derive(Debug, Clone)]
pub struct LstsqFit {
    /// Coefficient vector `β` (length = number of design columns).
    pub coeffs: Vec<f64>,
    /// Residual sum of squares `‖y − Xβ‖²`.
    pub rss: f64,
    /// Unbiased residual variance `rss / (rows − cols)`, or `rss / rows`
    /// when the system is (near-)saturated.
    pub residual_variance: f64,
}

/// Ordinary least squares: minimize `‖y − Xβ‖²`.
///
/// Falls back to [`ridge_lstsq`] with a tiny penalty when `XᵀX` is singular
/// (e.g. constant parent columns in a short training window), so callers
/// always get *a* usable fit from degenerate data rather than an error.
pub fn lstsq(x: &Matrix, y: &[f64]) -> Result<LstsqFit> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch(format!(
            "lstsq: design {}x{} vs {} responses",
            x.rows(),
            x.cols(),
            y.len()
        )));
    }
    match solve_normal_equations(x, y, 0.0) {
        Ok(fit) => Ok(fit),
        Err(_) => {
            // Scale-aware tiny ridge: enough to regularize exact collinearity
            // while perturbing well-posed coefficients negligibly.
            let scale = column_norm_scale(x);
            ridge_lstsq(x, y, 1e-8 * scale.max(1.0))
        }
    }
}

/// Ridge regression: minimize `‖y − Xβ‖² + λ‖β‖²`.
pub fn ridge_lstsq(x: &Matrix, y: &[f64], lambda: f64) -> Result<LstsqFit> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch(format!(
            "ridge_lstsq: design {}x{} vs {} responses",
            x.rows(),
            x.cols(),
            y.len()
        )));
    }
    solve_normal_equations(x, y, lambda)
}

/// Average squared column norm, used to scale the fallback ridge penalty.
fn column_norm_scale(x: &Matrix) -> f64 {
    let p = x.cols();
    if p == 0 || x.rows() == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    for r in 0..x.rows() {
        for &v in x.row(r) {
            total += v * v;
        }
    }
    total / p as f64
}

fn solve_normal_equations(x: &Matrix, y: &[f64], lambda: f64) -> Result<LstsqFit> {
    let n = x.rows();
    let p = x.cols();
    // Gram matrix XᵀX (p×p) and moment vector Xᵀy, assembled in one pass
    // over the rows so the design is streamed once.
    let mut gram = Matrix::zeros(p, p);
    let mut xty = vec![0.0; p];
    for r in 0..n {
        let row = x.row(r);
        let yr = y[r];
        for i in 0..p {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            xty[i] += xi * yr;
            for j in 0..=i {
                gram.add_at(i, j, xi * row[j]);
            }
        }
    }
    // Mirror the lower triangle and apply the ridge.
    for i in 0..p {
        for j in (i + 1)..p {
            let v = gram.get(j, i);
            gram.set(i, j, v);
        }
        gram.add_at(i, i, lambda);
    }
    let ch = Cholesky::factor(&gram)?;
    let coeffs = ch.solve(xty)?;

    // Residual sum of squares in a second streaming pass.
    let mut rss = 0.0;
    for r in 0..n {
        let pred = crate::matrix::dot(x.row(r), &coeffs);
        let e = y[r] - pred;
        rss += e * e;
    }
    let dof = n.saturating_sub(p);
    let residual_variance = if dof > 0 {
        rss / dof as f64
    } else if n > 0 {
        rss / n as f64
    } else {
        0.0
    };
    Ok(LstsqFit {
        coeffs,
        rss,
        residual_variance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Design with intercept column and one regressor.
    fn simple_design(xs: &[f64]) -> Matrix {
        let mut data = Vec::with_capacity(xs.len() * 2);
        for &x in xs {
            data.push(1.0);
            data.push(x);
        }
        Matrix::from_vec(xs.len(), 2, data).unwrap()
    }

    #[test]
    fn exact_line_is_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let design = simple_design(&xs);
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let fit = lstsq(&design, &y).unwrap();
        assert!((fit.coeffs[0] - 3.0).abs() < 1e-12);
        assert!((fit.coeffs[1] - 2.0).abs() < 1e-12);
        assert!(fit.rss < 1e-20);
    }

    #[test]
    fn noisy_line_coefficients_are_close() {
        // Deterministic "noise" pattern keeps the test reproducible.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let noise = |i: usize| if i.is_multiple_of(2) { 0.05 } else { -0.05 };
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 1.0 + 0.5 * x + noise(i))
            .collect();
        let fit = lstsq(&simple_design(&xs), &y).unwrap();
        assert!((fit.coeffs[0] - 1.0).abs() < 0.05, "{:?}", fit.coeffs);
        assert!((fit.coeffs[1] - 0.5).abs() < 0.05, "{:?}", fit.coeffs);
        assert!(fit.residual_variance > 0.0);
    }

    #[test]
    fn collinear_design_falls_back_to_ridge() {
        // Two identical columns: XᵀX singular, plain Cholesky would fail.
        let n = 10;
        let mut data = Vec::new();
        for i in 0..n {
            let v = i as f64;
            data.extend_from_slice(&[v, v]);
        }
        let x = Matrix::from_vec(n, 2, data).unwrap();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let fit = lstsq(&x, &y).unwrap();
        // The ridge splits the coefficient mass between the twin columns;
        // their sum must still reproduce the slope.
        let slope = fit.coeffs[0] + fit.coeffs[1];
        assert!((slope - 2.0).abs() < 1e-3, "slope={slope}");
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let design = simple_design(&xs);
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let plain = lstsq(&design, &y).unwrap();
        let ridge = ridge_lstsq(&design, &y, 100.0).unwrap();
        assert!(ridge.coeffs[1].abs() < plain.coeffs[1].abs());
    }

    #[test]
    fn shape_mismatch_reported() {
        let x = Matrix::zeros(3, 2);
        assert!(lstsq(&x, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn saturated_fit_uses_rows_for_variance() {
        // rows == cols: dof = 0 path.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let y = [1.0, 3.0];
        let fit = lstsq(&x, &y).unwrap();
        assert!(fit.residual_variance >= 0.0);
        assert!((fit.coeffs[0] - 1.0).abs() < 1e-9);
        assert!((fit.coeffs[1] - 2.0).abs() < 1e-9);
    }
}
