//! Property-based tests for the linear-algebra kernel.

#![allow(clippy::needless_range_loop)] // index loops over coupled structures

use kert_linalg::{Cholesky, Lu, Matrix, MultivariateNormal};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with entries in [-5, 5].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: an SPD matrix `BᵀB + I` of dimension `n`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| {
        let mut a = b.transpose().mul(&b).unwrap();
        for i in 0..n {
            a.add_at(i, i, 1.0);
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_multiplication_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let left = a.mul(&b.add(&c).unwrap()).unwrap();
        let right = a.mul(&b).unwrap().add(&a.mul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.mul(&b).unwrap().transpose();
        let rhs = b.transpose().mul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn cholesky_factors_reconstruct(a in spd(4)) {
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().mul(&ch.l().transpose()).unwrap();
        prop_assert!(back.max_abs_diff(&a) < 1e-8 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn cholesky_solves_are_true_solutions(a in spd(4), x in proptest::collection::vec(-3.0f64..3.0, 4)) {
        let b = a.mul_vec(&x).unwrap();
        let solved = Cholesky::factor(&a).unwrap().solve(b).unwrap();
        for (got, want) in solved.iter().zip(x.iter()) {
            prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_det_is_multiplicative(a in spd(3), b in spd(3)) {
        let det_a = Lu::factor(&a).unwrap().det();
        let det_b = Lu::factor(&b).unwrap().det();
        let det_ab = Lu::factor(&a.mul(&b).unwrap()).unwrap().det();
        prop_assert!(
            (det_ab - det_a * det_b).abs() < 1e-6 * (1.0 + det_ab.abs()),
            "{det_ab} vs {}",
            det_a * det_b
        );
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_design(
        data in proptest::collection::vec(-4.0f64..4.0, 12 * 2),
        y in proptest::collection::vec(-4.0f64..4.0, 12),
    ) {
        let x = Matrix::from_vec(12, 2, data).unwrap();
        let fit = kert_linalg::lstsq(&x, &y).unwrap();
        // Normal equations: Xᵀ(y − Xβ) ≈ 0.
        for c in 0..2 {
            let mut dot = 0.0;
            for r in 0..12 {
                let pred: f64 = (0..2).map(|k| x.get(r, k) * fit.coeffs[k]).sum();
                dot += x.get(r, c) * (y[r] - pred);
            }
            prop_assert!(dot.abs() < 1e-6, "column {c}: {dot}");
        }
    }

    #[test]
    fn mvn_log_pdf_is_maximal_at_the_mean(
        cov in spd(3),
        mean in proptest::collection::vec(-2.0f64..2.0, 3),
        offset in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        prop_assume!(offset.iter().any(|&o| o.abs() > 1e-3));
        let mvn = MultivariateNormal::new(mean.clone(), cov).unwrap();
        let at_mean = mvn.log_pdf(&mean).unwrap();
        let shifted: Vec<f64> = mean.iter().zip(offset.iter()).map(|(m, o)| m + o).collect();
        prop_assert!(at_mean >= mvn.log_pdf(&shifted).unwrap());
    }

    #[test]
    fn mvn_conditioning_never_increases_variance(
        cov in spd(3),
        mean in proptest::collection::vec(-2.0f64..2.0, 3),
        obs in -3.0f64..3.0,
    ) {
        let mvn = MultivariateNormal::new(mean, cov).unwrap();
        let prior_var_0 = mvn.cov().get(0, 0);
        let post = mvn.condition(&[2], &[obs]).unwrap();
        let post_var_0 = post.variance_of(0).unwrap();
        prop_assert!(post_var_0 <= prior_var_0 + 1e-9);
    }

    #[test]
    fn rank_one_update_agrees_with_refactorization(
        a in spd(4),
        x in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.rank_one_update(&x).unwrap();
        let mut ax = a.clone();
        for i in 0..4 {
            for j in 0..4 {
                ax.add_at(i, j, x[i] * x[j]);
            }
        }
        let fresh = Cholesky::factor(&ax).unwrap();
        prop_assert!(ch.l().max_abs_diff(fresh.l()) < 1e-9 * (1.0 + ax.trace().abs()));
    }

    #[test]
    fn feasible_downdate_agrees_with_refactorization(
        a in spd(4),
        x in proptest::collection::vec(-0.5f64..0.5, 4),
    ) {
        // BᵀB + I minus a small xxᵀ (‖x‖² ≤ 1) stays positive definite, so
        // this downdate must always take the fast path.
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.rank_one_downdate(&x).unwrap();
        let mut ax = a.clone();
        for i in 0..4 {
            for j in 0..4 {
                ax.add_at(i, j, -x[i] * x[j]);
            }
        }
        let fresh = Cholesky::factor(&ax).unwrap();
        prop_assert!(ch.l().max_abs_diff(fresh.l()) < 1e-9 * (1.0 + ax.trace().abs()));
    }

    #[test]
    fn update_downdate_round_trip_is_identity(
        a in spd(4),
        x in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let before = Cholesky::factor(&a).unwrap();
        let mut ch = before.clone();
        ch.rank_one_update(&x).unwrap();
        ch.rank_one_downdate(&x).unwrap();
        prop_assert!(ch.l().max_abs_diff(before.l()) < 1e-9 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn infeasible_downdates_error_cleanly_never_nan(
        a in spd(3),
        x in proptest::collection::vec(-3.0f64..3.0, 3),
        scale in 2.0f64..50.0,
    ) {
        // Scale x until xxᵀ dominates A: λ_max(A) ≤ trace(A), so
        // ‖x‖² > trace(A) forces A − xxᵀ indefinite.
        let norm2: f64 = x.iter().map(|v| v * v).sum();
        prop_assume!(norm2 > 1e-6);
        let factor = (a.trace() / norm2).sqrt() * scale;
        let big: Vec<f64> = x.iter().map(|v| v * factor).collect();
        let mut ch = Cholesky::factor(&a).unwrap();
        let before = ch.l().clone();
        let res = ch.rank_one_downdate(&big);
        prop_assert!(res.is_err(), "downdate of dominated matrix must fail");
        prop_assert!(ch.l().max_abs_diff(&before) == 0.0);
        for i in 0..3 {
            for j in 0..=i {
                prop_assert!(ch.l().get(i, j).is_finite());
            }
        }
    }

    #[test]
    fn quantiles_are_monotone(
        mut xs in proptest::collection::vec(-100.0f64..100.0, 1..40),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.retain(|x| x.is_finite());
        prop_assume!(!xs.is_empty());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            kert_linalg::stats::quantile(&xs, lo) <= kert_linalg::stats::quantile(&xs, hi)
        );
    }
}
