//! Property-based tests for the discrete-event simulator.

use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
use kert_workflow::{random_workflow, response_time_expr, GenOptions, Workflow};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn system_for(wf: &Workflow, n: usize, mean: f64, arrival: f64) -> SimSystem {
    let stations: Vec<ServiceConfig> = (0..n)
        .map(|_| ServiceConfig::single(Dist::Exponential { mean }))
        .collect();
    SimSystem::new(
        wf,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential { mean: arrival },
            warmup: 5,
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The invariant everything else rests on: measured `D` equals the
    /// workflow reduction of measured elapsed times for every request, on
    /// arbitrary generated workflows (including choices and loops). The
    /// single documented exception — a parallel construct inside a loop
    /// body, where accumulation does not commute with `max` — downgrades
    /// the identity to a lower bound.
    #[test]
    fn every_request_satisfies_d_equals_f_of_x(
        n in 2usize..10,
        seed in 0u64..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = random_workflow(n, GenOptions::default(), &mut rng);
        let f = response_time_expr(&wf);
        let exact = !wf.has_parallel_under_loop();
        let mut sys = system_for(&wf, n, 0.02, 0.3);
        let trace = sys.run(30, &mut rng);
        for row in trace.rows() {
            let fx = f.eval(&row.elapsed);
            if exact {
                prop_assert!((fx - row.response_time).abs() < 1e-9,
                    "exact case: f = {fx}, D = {}", row.response_time);
            } else {
                prop_assert!(fx <= row.response_time + 1e-9,
                    "bound case: f = {fx}, D = {}", row.response_time);
            }
        }
    }

    /// Response times are positive and at least the largest single
    /// elapsed-time entry on the taken path.
    #[test]
    fn response_time_dominates_component_times(
        n in 2usize..8,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = random_workflow(
            n,
            GenOptions { loop_prob: 0.0, ..GenOptions::default() },
            &mut rng,
        );
        let mut sys = system_for(&wf, n, 0.03, 0.4);
        let trace = sys.run(40, &mut rng);
        for row in trace.rows() {
            let max_component = row.elapsed.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(row.response_time >= max_component - 1e-9);
            prop_assert!(row.response_time > 0.0);
        }
    }

    /// Traces are completion-time ordered, and interval sampling never
    /// yields more rows than intervals or than the original trace.
    #[test]
    fn trace_ordering_and_sampling_bounds(
        seed in 0u64..200,
        t_data in 0.05f64..2.0,
    ) {
        let wf = kert_workflow::ediamond_workflow();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = system_for(&wf, 6, 0.03, 0.3);
        let trace = sys.run(60, &mut rng);
        for w in trace.rows().windows(2) {
            prop_assert!(w[0].completed_at <= w[1].completed_at);
        }
        let sampled = trace.sample_every(t_data);
        prop_assert!(sampled.len() <= trace.len());
        let span = trace.rows().last().unwrap().completed_at;
        let intervals = (span / t_data).ceil() as usize + 1;
        prop_assert!(sampled.len() <= intervals);
        // Sampled rows are a subsequence of the original rows.
        for row in sampled.rows() {
            prop_assert!(trace.rows().iter().any(|r| r == row));
        }
    }

    /// Little's-law sanity: mean response time under heavier load is no
    /// better than under lighter load (same seed, same service times).
    #[test]
    fn more_load_never_helps(seed in 0u64..100) {
        let wf = kert_workflow::ediamond_workflow();
        let mut light = system_for(&wf, 6, 0.05, 1.2);
        let mut heavy = system_for(&wf, 6, 0.05, 0.12);
        let t_light = light.run(300, &mut StdRng::seed_from_u64(seed));
        let t_heavy = heavy.run(300, &mut StdRng::seed_from_u64(seed));
        let m_light = t_light.response_times().iter().sum::<f64>() / 300.0;
        let m_heavy = t_heavy.response_times().iter().sum::<f64>() / 300.0;
        prop_assert!(m_heavy >= m_light * 0.95, "{m_heavy} vs {m_light}");
    }

    /// Service-time distributions deliver the configured mean through the
    /// station layer (low load ⇒ elapsed ≈ service time).
    #[test]
    fn station_elapsed_tracks_service_mean_at_low_load(
        mean in 0.01f64..0.2,
        seed in 0u64..100,
    ) {
        let wf = Workflow::Task(0);
        let stations = vec![ServiceConfig::single(Dist::Erlang { k: 4, mean })];
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: mean * 20.0 },
                warmup: 20,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(400, &mut rng);
        let m = trace.response_times().iter().sum::<f64>() / 400.0;
        prop_assert!((m - mean).abs() < 0.25 * mean, "measured {m} vs configured {mean}");
    }

    /// Single-service round-trip through the Cardoso reduction: for
    /// `Task(0)` the reduced `f` is the identity, so every simulated
    /// request satisfies `D = X₀` exactly.
    #[test]
    fn single_service_simulation_is_the_identity(
        mean in 0.01f64..0.2,
        seed in 0u64..200,
    ) {
        let wf = Workflow::Task(0);
        let f = response_time_expr(&wf);
        let mut sys = system_for(&wf, 1, mean, mean * 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(50, &mut rng);
        for row in trace.rows() {
            prop_assert!((row.response_time - row.elapsed[0]).abs() < 1e-12);
            prop_assert!((f.eval(&row.elapsed) - row.response_time).abs() < 1e-12);
        }
    }

    /// Nested choices through the simulator: exactly one innermost branch
    /// runs per request, untaken branches measure zero, and the reduction
    /// identity `D = f(𝕏)` holds exactly.
    #[test]
    fn nested_choice_simulation_matches_reduction(
        seed in 0u64..200,
        p in 0.1f64..0.9,
        q in 0.1f64..0.9,
    ) {
        let inner = Workflow::Choice(vec![
            (q, Workflow::Task(0)),
            (1.0 - q, Workflow::Task(1)),
        ]);
        let wf = Workflow::Seq(vec![
            Workflow::Choice(vec![(p, inner), (1.0 - p, Workflow::Task(2))]),
            Workflow::Task(3),
        ]);
        let f = response_time_expr(&wf);
        let mut sys = system_for(&wf, 4, 0.03, 0.4);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(40, &mut rng);
        for row in trace.rows() {
            // Exactly one of the three choice leaves ran.
            let ran = row.elapsed[..3].iter().filter(|&&e| e > 0.0).count();
            prop_assert_eq!(ran, 1, "elapsed: {:?}", row.elapsed);
            prop_assert!((f.eval(&row.elapsed) - row.response_time).abs() < 1e-9);
        }
    }
}
