//! The discrete-event core: a time-ordered event queue.
//!
//! Deliberately minimal — a binary heap keyed by `(time, sequence)` so that
//! simultaneous events fire in insertion order, which keeps whole runs
//! bit-reproducible for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in seconds.
pub type SimTime = f64;

/// An event scheduled in the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled<E> {
    /// Firing time.
    pub time: SimTime,
    /// Monotone tie-breaker assigned by the queue.
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> Eq for Scheduled<E> where E: PartialEq {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        // total_cmp keeps the ordering well defined (and panic-free) even
        // if a pathological distribution ever produced a NaN time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// Panics if `time` is in the past or NaN — scheduling backwards is
    /// always a simulator bug, never a data condition.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time.is_finite() && time >= self.now,
            "cannot schedule at {time} (now = {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.now(), 3.0);
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(2.0, 2);
        q.schedule(2.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(4.0, "first");
        q.pop();
        q.schedule_in(1.5, "second");
        assert_eq!(q.pop(), Some((5.5, "second")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
