//! Service stations: multi-server FIFO queues.
//!
//! A station models the middleware component hosting one service: `servers`
//! parallel executors drawing processing times from a distribution, with an
//! unbounded FIFO queue in front. Elapsed time measured at the monitoring
//! point is *wait + service* — so when an upstream service floods a
//! station, its measured elapsed time rises even though its service-time
//! distribution is unchanged. That load coupling is what the KERT-BN
//! immediate-upstream edges model.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::engine::SimTime;
use crate::{Result, SimError};

/// Static configuration of one service station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of parallel servers (≥ 1).
    pub servers: usize,
    /// Processing-time distribution.
    pub service_time: Dist,
}

impl ServiceConfig {
    /// A single-server station with the given service-time distribution.
    pub fn single(service_time: Dist) -> Self {
        ServiceConfig {
            servers: 1,
            service_time,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.servers == 0 {
            return Err(SimError::BadConfig("station with zero servers".into()));
        }
        self.service_time.validate()
    }
}

/// A job waiting at or executing on a station, identified by an opaque
/// token the system layer uses to resume the request's workflow.
pub type JobToken = u64;

/// Runtime state of one station.
#[derive(Debug)]
pub struct Station {
    config: ServiceConfig,
    busy: usize,
    queue: VecDeque<(JobToken, SimTime)>,
    /// Cumulative statistics for utilization reporting.
    completed: u64,
    total_elapsed: f64,
    total_wait: f64,
}

impl Station {
    /// Create an idle station.
    pub fn new(config: ServiceConfig) -> Self {
        Station {
            config,
            busy: 0,
            queue: VecDeque::new(),
            completed: 0,
            total_elapsed: 0.0,
            total_wait: 0.0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Replace the service-time distribution (resource reallocation /
    /// pAccel-style interventions between reconstruction windows).
    pub fn set_service_time(&mut self, dist: Dist) {
        self.config.service_time = dist;
    }

    /// A job arrives at time `now`. Returns `Some(job)` if a server is free
    /// and the job starts immediately (the caller schedules its completion);
    /// `None` if it queued.
    pub fn arrive(&mut self, job: JobToken, now: SimTime) -> Option<JobToken> {
        if self.busy < self.config.servers {
            self.busy += 1;
            Some(job)
        } else {
            self.queue.push_back((job, now));
            None
        }
    }

    /// A job finishes at time `now` after having arrived at `arrived` and
    /// waited `wait`. Returns the next queued job to start, if any, with its
    /// accumulated wait time.
    pub fn complete(
        &mut self,
        now: SimTime,
        arrived: SimTime,
        wait: SimTime,
    ) -> Option<(JobToken, SimTime)> {
        self.completed += 1;
        self.total_elapsed += now - arrived;
        self.total_wait += wait;
        if let Some((job, queued_at)) = self.queue.pop_front() {
            // The freed server is immediately taken; `busy` is unchanged.
            Some((job, now - queued_at))
        } else {
            self.busy = self.busy.saturating_sub(1);
            None
        }
    }

    /// Drop all in-flight runtime state (busy servers, queued jobs),
    /// keeping cumulative statistics. Called at the start of every
    /// simulation run: each run begins from an idle system, and jobs from
    /// a previous run's event queue no longer exist.
    pub fn reset_runtime(&mut self) {
        self.busy = 0;
        self.queue.clear();
    }

    /// Jobs currently executing.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Jobs currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Completed-job count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean elapsed (wait + service) time over completed jobs.
    pub fn mean_elapsed(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_elapsed / self.completed as f64
        }
    }

    /// Mean wait time over completed jobs.
    pub fn mean_wait(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_wait / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            servers: 2,
            service_time: Dist::Deterministic { value: 1.0 },
        }
    }

    #[test]
    fn jobs_start_until_servers_are_full() {
        let mut st = Station::new(cfg());
        assert_eq!(st.arrive(1, 0.0), Some(1));
        assert_eq!(st.arrive(2, 0.0), Some(2));
        assert_eq!(st.arrive(3, 0.0), None); // queued
        assert_eq!(st.busy(), 2);
        assert_eq!(st.queue_len(), 1);
    }

    #[test]
    fn completion_promotes_queued_jobs_fifo() {
        let mut st = Station::new(cfg());
        st.arrive(1, 0.0);
        st.arrive(2, 0.0);
        st.arrive(3, 0.5);
        st.arrive(4, 0.7);
        // Job 1 finishes at t=1: job 3 (queued first) starts, wait 0.5.
        let next = st.complete(1.0, 0.0, 0.0);
        assert_eq!(next, Some((3, 0.5)));
        assert_eq!(st.busy(), 2);
        let (job, wait) = st.complete(1.0, 0.0, 0.0).unwrap();
        assert_eq!(job, 4);
        assert!((wait - 0.3).abs() < 1e-12);
    }

    #[test]
    fn busy_count_drops_when_queue_is_empty() {
        let mut st = Station::new(cfg());
        st.arrive(1, 0.0);
        assert_eq!(st.complete(1.0, 0.0, 0.0), None);
        assert_eq!(st.busy(), 0);
    }

    #[test]
    fn statistics_accumulate() {
        let mut st = Station::new(cfg());
        st.arrive(1, 0.0);
        st.complete(2.0, 0.0, 0.5);
        st.arrive(2, 3.0);
        st.complete(4.0, 3.0, 0.0);
        assert_eq!(st.completed(), 2);
        assert!((st.mean_elapsed() - 1.5).abs() < 1e-12);
        assert!((st.mean_wait() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        assert!(ServiceConfig {
            servers: 0,
            service_time: Dist::Deterministic { value: 1.0 }
        }
        .validate()
        .is_err());
        assert!(ServiceConfig::single(Dist::Exponential { mean: 0.2 })
            .validate()
            .is_ok());
    }
}
