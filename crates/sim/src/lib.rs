//! # kert-sim — a discrete-event simulator for service-oriented systems
//!
//! The paper evaluates KERT-BN against (a) a Matlab simulation of
//! service-oriented environments and (b) the eDiaMoND Grid test-bed.
//! Neither is available, so this crate supplies the substitute: a
//! discrete-event simulation in which
//!
//! * each service is a **multi-server FIFO queueing station** with a
//!   configurable service-time distribution ([`service`], [`dist`]);
//! * user requests arrive in an **open Poisson workload** and traverse the
//!   workflow — sequences, fork/join parallels, probabilistic choices and
//!   loops — exactly as `kert-workflow` describes ([`request`], [`engine`],
//!   [`system`]);
//! * **monitoring points** measure per-service elapsed time (queue wait +
//!   service) per request; agents batch and report them every `T_DATA`
//!   ([`monitor`]), producing the datasets the models train on ([`trace`]).
//!
//! Queueing (rather than i.i.d. delays) matters: it makes a service's
//! elapsed time genuinely depend on its upstream neighbour's throughput,
//! which is the "bottleneck shift" phenomenon the KERT-BN structure encodes
//! via immediate-upstream edges.

pub mod dist;
pub mod engine;
pub mod faults;
pub mod monitor;
pub mod reporting;
pub mod request;
pub mod resources;
pub mod service;
pub mod system;
pub mod trace;

pub use dist::Dist;
pub use faults::{
    CoordinatorFaultPlan, Delivery, FaultEvent, FaultInjector, FaultPlan, ShardFaultPlan,
};
pub use monitor::{AgentReport, MonitoringAgent};
pub use reporting::{simulate_reporting, ReportingConfig, ServerView};
pub use resources::{Host, HostLayout};
pub use service::ServiceConfig;
pub use system::{SimOptions, SimSystem};
pub use trace::Trace;

/// Errors from simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Configuration inconsistent with the workflow (service counts, ids).
    BadConfig(String),
    /// A distribution parameter was invalid.
    BadDistribution(String),
    /// A fault-injection plan was out of range.
    BadFaultPlan(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadConfig(msg) => write!(f, "bad simulator config: {msg}"),
            SimError::BadDistribution(msg) => write!(f, "bad distribution: {msg}"),
            SimError::BadFaultPlan(msg) => write!(f, "bad fault plan: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
