//! Shared-resource modeling: hosts and their utilization.
//!
//! §3.2's second knowledge source: "the two services are sharing a common
//! resource (e.g. CPU, memory, network); status of the common resource can
//! be tied to the performance of both services". Here a *host* is a named
//! resource shared by a set of services; the simulator observes, for every
//! request, the mean utilization each host exhibited while serving that
//! request's tasks. Those observations become the resource columns of the
//! monitoring dataset, and in the KERT-BN the resource node's parents are
//! the sharing services — exactly as the paper prescribes.

use kert_workflow::ServiceId;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// A named shared resource and the services hosted on it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Host {
    /// Resource name (becomes the dataset column name).
    pub name: String,
    /// Services sharing this resource, ascending and unique.
    pub services: Vec<ServiceId>,
}

/// The machine layout of an environment: which services share which host.
///
/// Services not listed on any host are un-instrumented for resources (no
/// column is produced for them); a service may appear on at most one host.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLayout {
    hosts: Vec<Host>,
}

impl HostLayout {
    /// An empty layout (no resource monitoring).
    pub fn none() -> Self {
        HostLayout::default()
    }

    /// Build a layout, validating ids, uniqueness, and single-homing.
    pub fn new(hosts: Vec<(String, Vec<ServiceId>)>, n_services: usize) -> Result<Self> {
        let mut seen = vec![false; n_services];
        let mut out = Vec::with_capacity(hosts.len());
        for (name, mut services) in hosts {
            if name.is_empty() {
                return Err(SimError::BadConfig("empty host name".into()));
            }
            services.sort_unstable();
            services.dedup();
            if services.is_empty() {
                return Err(SimError::BadConfig(format!("host {name} hosts nothing")));
            }
            for &s in &services {
                if s >= n_services {
                    return Err(SimError::BadConfig(format!(
                        "host {name}: unknown service {s}"
                    )));
                }
                if seen[s] {
                    return Err(SimError::BadConfig(format!(
                        "service {s} is on more than one host"
                    )));
                }
                seen[s] = true;
            }
            out.push(Host { name, services });
        }
        Ok(HostLayout { hosts: out })
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True if no hosts are declared.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Host names in order (dataset column names for the resource nodes).
    pub fn names(&self) -> Vec<String> {
        self.hosts.iter().map(|h| h.name.clone()).collect()
    }

    /// Map each service to its host index (`None` for unhosted services).
    pub fn host_of(&self, n_services: usize) -> Vec<Option<usize>> {
        let mut map = vec![None; n_services];
        for (h, host) in self.hosts.iter().enumerate() {
            for &s in &host.services {
                map[s] = Some(h);
            }
        }
        map
    }

    /// Services per host (for utilization normalization).
    pub fn sizes(&self) -> Vec<usize> {
        self.hosts.iter().map(|h| h.services.len()).collect()
    }

    /// The resource map consumed by `kert_workflow::derive_structure`.
    pub fn to_resource_map(&self) -> kert_workflow::ResourceMap {
        self.hosts
            .iter()
            .map(|h| (h.name.clone(), h.services.clone()))
            .collect()
    }
}

/// Per-request utilization accumulator: mean of the utilization snapshots
/// taken each time one of the request's tasks starts on the host.
#[derive(Debug, Clone, Default)]
pub struct UtilizationAccumulator {
    sums: Vec<f64>,
    counts: Vec<u32>,
}

impl UtilizationAccumulator {
    /// Accumulator over `n_hosts` hosts.
    pub fn new(n_hosts: usize) -> Self {
        UtilizationAccumulator {
            sums: vec![0.0; n_hosts],
            counts: vec![0; n_hosts],
        }
    }

    /// Record a utilization snapshot for `host`.
    pub fn observe(&mut self, host: usize, utilization: f64) {
        self.sums[host] += utilization;
        self.counts[host] += 1;
    }

    /// Mean utilization per host (0 for hosts this request never touched).
    pub fn means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(self.counts.iter())
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_validates_and_normalizes() {
        let layout = HostLayout::new(
            vec![
                ("db_host".into(), vec![5, 4, 5]),
                ("web_host".into(), vec![0, 1]),
            ],
            6,
        )
        .unwrap();
        assert_eq!(layout.len(), 2);
        assert_eq!(layout.hosts()[0].services, vec![4, 5]);
        assert_eq!(layout.names(), vec!["db_host", "web_host"]);
        assert_eq!(layout.sizes(), vec![2, 2]);
        let map = layout.host_of(6);
        assert_eq!(map[4], Some(0));
        assert_eq!(map[0], Some(1));
        assert_eq!(map[2], None);
    }

    #[test]
    fn layout_rejects_bad_configs() {
        assert!(HostLayout::new(vec![("h".into(), vec![9])], 6).is_err());
        assert!(HostLayout::new(vec![("h".into(), vec![])], 6).is_err());
        assert!(HostLayout::new(vec![("".into(), vec![0])], 6).is_err());
        assert!(HostLayout::new(vec![("a".into(), vec![0]), ("b".into(), vec![0])], 6).is_err());
    }

    #[test]
    fn accumulator_averages_per_host() {
        let mut acc = UtilizationAccumulator::new(2);
        acc.observe(0, 0.5);
        acc.observe(0, 1.0);
        acc.observe(1, 0.25);
        let means = acc.means();
        assert!((means[0] - 0.75).abs() < 1e-12);
        assert!((means[1] - 0.25).abs() < 1e-12);
        // Untouched hosts default to zero.
        let empty = UtilizationAccumulator::new(1);
        assert_eq!(empty.means(), vec![0.0]);
    }

    #[test]
    fn resource_map_conversion() {
        let layout = HostLayout::new(vec![("db".into(), vec![4, 5])], 6).unwrap();
        let map = layout.to_resource_map();
        assert_eq!(map.get("db"), Some(&vec![4, 5]));
    }
}
