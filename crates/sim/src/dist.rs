//! Service-time and inter-arrival distributions.
//!
//! Hand-rolled on top of `rand`'s uniform source (the offline dependency
//! set has no `rand_distr`): exponential via inverse CDF, normal via
//! Box–Muller, log-normal by exponentiation, Erlang as a sum of
//! exponentials, plus deterministic and uniform. All sampling is
//! reproducible through the caller's seeded RNG.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// A non-negative continuous distribution for delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always exactly `value`.
    Deterministic {
        /// The constant delay.
        value: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (≥ 0).
        lo: f64,
        /// Upper bound (> lo).
        hi: f64,
    },
    /// Exponential with the given mean (`rate = 1/mean`).
    Exponential {
        /// Mean delay.
        mean: f64,
    },
    /// Erlang-`k`: sum of `k` i.i.d. exponentials; mean is the *total* mean.
    Erlang {
        /// Shape (number of stages, ≥ 1).
        k: u32,
        /// Mean of the sum.
        mean: f64,
    },
    /// Normal truncated at zero (resampled-free: negative draws clamp to 0;
    /// fine for μ ≫ σ service times).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Log-normal given the *underlying* normal's μ and σ.
    LogNormal {
        /// Mean of ln X.
        mu: f64,
        /// Std-dev of ln X.
        sigma: f64,
    },
    /// Weibull with shape `k` and scale `lambda` (k < 1: heavy tail,
    /// k = 1: exponential, k > 1: wear-out). Common for Grid job services.
    Weibull {
        /// Shape parameter (> 0).
        k: f64,
        /// Scale parameter (> 0).
        lambda: f64,
    },
    /// Pareto (Lomax-style, shifted to start at `scale`): heavy-tailed
    /// service times with tail index `alpha` (> 1 for a finite mean).
    Pareto {
        /// Minimum value / scale (> 0).
        scale: f64,
        /// Tail index (> 1).
        alpha: f64,
    },
}

impl Dist {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            Dist::Deterministic { value } => value >= 0.0 && value.is_finite(),
            Dist::Uniform { lo, hi } => lo >= 0.0 && hi > lo && hi.is_finite(),
            Dist::Exponential { mean } => mean > 0.0 && mean.is_finite(),
            Dist::Erlang { k, mean } => k >= 1 && mean > 0.0 && mean.is_finite(),
            Dist::Normal { mean, std_dev } => {
                mean >= 0.0 && std_dev >= 0.0 && mean.is_finite() && std_dev.is_finite()
            }
            Dist::LogNormal { mu, sigma } => mu.is_finite() && sigma >= 0.0 && sigma.is_finite(),
            Dist::Weibull { k, lambda } => {
                k > 0.0 && lambda > 0.0 && k.is_finite() && lambda.is_finite()
            }
            Dist::Pareto { scale, alpha } => {
                scale > 0.0 && alpha > 1.0 && scale.is_finite() && alpha.is_finite()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::BadDistribution(format!("{self:?}")))
        }
    }

    /// Draw one sample (always ≥ 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Dist::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            Dist::Erlang { k, mean } => {
                let stage_mean = mean / k as f64;
                (0..k)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        -stage_mean * u.ln()
                    })
                    .sum()
            }
            Dist::Normal { mean, std_dev } => (mean + std_dev * box_muller(rng)).max(0.0),
            Dist::LogNormal { mu, sigma } => (mu + sigma * box_muller(rng)).exp(),
            Dist::Weibull { k, lambda } => {
                // Inverse CDF: λ·(−ln U)^{1/k}.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                lambda * (-u.ln()).powf(1.0 / k)
            }
            Dist::Pareto { scale, alpha } => {
                // Inverse CDF: scale · U^{−1/α}.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale * u.powf(-1.0 / alpha)
            }
        }
    }

    /// Theoretical mean (the truncated normal's clamp bias is ignored —
    /// negligible for μ ≫ σ, the regime service times live in).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } | Dist::Erlang { mean, .. } => mean,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Dist::Weibull { k, lambda } => lambda * gamma_1_plus(1.0 / k),
            Dist::Pareto { scale, alpha } => scale * alpha / (alpha - 1.0),
        }
    }
}

/// Γ(1 + x) via the Lanczos `ln Γ` in kert-bayes would add a dependency
/// cycle; a Stirling-series approximation is ample for the Weibull mean
/// (x ∈ (0, ~5] here, relative error < 1e-6).
fn gamma_1_plus(x: f64) -> f64 {
    // Use Γ(1+x) = x·Γ(x) with a Lanczos-lite rational fit on [1, 2].
    // Shift x+1 into [1, 2) by the recurrence Γ(z+1) = z·Γ(z).
    let mut z = 1.0 + x;
    let mut factor = 1.0;
    while z > 2.0 {
        z -= 1.0;
        factor *= z;
    }
    // Minimax-style polynomial for Γ(z) on [1, 2] (Abramowitz & Stegun
    // 6.1.36, |ε| ≤ 3e-7).
    let t = z - 1.0;
    let g = 1.0
        + t * (-0.577191652
            + t * (0.988205891
                + t * (-0.897056937
                    + t * (0.918206857
                        + t * (-0.756704078
                            + t * (0.482199394 + t * (-0.193527818 + t * 0.035868343)))))));
    factor * g
}

fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn sample_means_match_theory() {
        let cases = [
            Dist::Deterministic { value: 3.0 },
            Dist::Uniform { lo: 1.0, hi: 5.0 },
            Dist::Exponential { mean: 2.0 },
            Dist::Erlang { k: 4, mean: 2.0 },
            Dist::Normal {
                mean: 10.0,
                std_dev: 1.0,
            },
            Dist::LogNormal {
                mu: 0.0,
                sigma: 0.5,
            },
            Dist::Weibull {
                k: 2.0,
                lambda: 3.0,
            },
            Dist::Pareto {
                scale: 1.0,
                alpha: 3.0,
            },
        ];
        for (i, d) in cases.into_iter().enumerate() {
            let m = sample_mean(d, 100_000, 100 + i as u64);
            let want = d.mean();
            assert!(
                (m - want).abs() < 0.03 * want.max(1.0),
                "{d:?}: {m} vs {want}"
            );
        }
    }

    #[test]
    fn samples_are_nonnegative() {
        let d = Dist::Normal {
            mean: 0.5,
            std_dev: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn erlang_has_lower_variance_than_exponential() {
        let ex = Dist::Exponential { mean: 2.0 };
        let er = Dist::Erlang { k: 8, mean: 2.0 };
        let var = |d: Dist, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
            kert_linalg::stats::variance(&xs)
        };
        assert!(var(er, 1) < var(ex, 1) * 0.5);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // k = 1 ⇒ Exp(λ): compare empirical CDF at the mean.
        let w = Dist::Weibull {
            k: 1.0,
            lambda: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(77);
        let below = (0..50_000).filter(|_| w.sample(&mut rng) < 2.0).count();
        let frac = below as f64 / 50_000.0;
        let expect = 1.0 - (-1.0f64).exp(); // P(X < mean) for Exp
        assert!((frac - expect).abs() < 0.01, "{frac} vs {expect}");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let p = Dist::Pareto {
            scale: 1.0,
            alpha: 1.5,
        };
        let e = Dist::Exponential { mean: 3.0 }; // same mean
        let far = |d: Dist, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100_000).filter(|_| d.sample(&mut rng) > 30.0).count()
        };
        assert!(far(p, 5) > 10 * far(e, 5).max(1));
    }

    #[test]
    fn gamma_helper_matches_known_values() {
        // Γ(1.5) = √π/2 ≈ 0.886227; Γ(2) = 1; Γ(3) = 2.
        assert!((gamma_1_plus(0.5) - 0.886_226_925).abs() < 1e-5);
        assert!((gamma_1_plus(1.0) - 1.0).abs() < 1e-5);
        assert!((gamma_1_plus(2.0) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Dist::Exponential { mean: 0.0 }.validate().is_err());
        assert!(Dist::Weibull {
            k: 0.0,
            lambda: 1.0
        }
        .validate()
        .is_err());
        assert!(Dist::Pareto {
            scale: 1.0,
            alpha: 1.0
        }
        .validate()
        .is_err());
        assert!(Dist::Uniform { lo: 5.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::Erlang { k: 0, mean: 1.0 }.validate().is_err());
        assert!(Dist::Deterministic { value: -1.0 }.validate().is_err());
        assert!(Dist::Normal {
            mean: 1.0,
            std_dev: 0.1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn deterministic_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Dist::Deterministic { value: 7.5 }.sample(&mut rng), 7.5);
    }
}
