//! Per-request workflow execution: the fork/join state machine.
//!
//! A [`Workflow`] tree is compiled once into a flat [`WorkflowPlan`]
//! (indices instead of boxes — cheap to share across millions of requests);
//! each in-flight request owns a small [`RequestExec`] tracking sequence
//! positions, parallel join counters and loop iterations. The system layer
//! drives it with two calls: [`RequestExec::start`] when the request
//! arrives and [`RequestExec::complete_task`] whenever a service finishes,
//! both returning the next service invocations to dispatch.

use kert_workflow::{LoopSpec, ServiceId, Workflow};
use rand::Rng;

/// Flattened workflow node kinds (children are plan indices).
#[derive(Debug, Clone)]
enum PlanKind {
    Task(ServiceId),
    Seq(Vec<usize>),
    Par(Vec<usize>),
    Choice {
        children: Vec<usize>,
        probs: Vec<f64>,
    },
    Loop {
        child: usize,
        spec: LoopSpec,
    },
}

#[derive(Debug, Clone)]
struct PlanNode {
    kind: PlanKind,
    parent: Option<usize>,
}

/// A compiled workflow, shareable across requests.
#[derive(Debug, Clone)]
pub struct WorkflowPlan {
    nodes: Vec<PlanNode>,
    root: usize,
}

impl WorkflowPlan {
    /// Compile a workflow tree (assumed validated).
    pub fn compile(workflow: &Workflow) -> Self {
        let mut nodes = Vec::new();
        let root = flatten(workflow, None, &mut nodes);
        WorkflowPlan { nodes, root }
    }

    /// Number of plan nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the plan is empty (never true for compiled workflows).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Service id of a task node (panics on composite nodes — caller bug).
    pub fn service_of(&self, node: usize) -> ServiceId {
        match self.nodes[node].kind {
            PlanKind::Task(s) => s,
            _ => panic!("plan node {node} is not a task"),
        }
    }
}

fn flatten(wf: &Workflow, parent: Option<usize>, nodes: &mut Vec<PlanNode>) -> usize {
    let idx = nodes.len();
    // Reserve the slot so children can point back at it.
    nodes.push(PlanNode {
        kind: PlanKind::Task(usize::MAX),
        parent,
    });
    let kind = match wf {
        Workflow::Task(s) => PlanKind::Task(*s),
        Workflow::Seq(parts) => {
            PlanKind::Seq(parts.iter().map(|p| flatten(p, Some(idx), nodes)).collect())
        }
        Workflow::Par(branches) => PlanKind::Par(
            branches
                .iter()
                .map(|b| flatten(b, Some(idx), nodes))
                .collect(),
        ),
        Workflow::Choice(branches) => {
            let probs = branches.iter().map(|(p, _)| *p).collect();
            let children = branches
                .iter()
                .map(|(_, b)| flatten(b, Some(idx), nodes))
                .collect();
            PlanKind::Choice { children, probs }
        }
        Workflow::Loop { body, spec } => PlanKind::Loop {
            child: flatten(body, Some(idx), nodes),
            spec: *spec,
        },
    };
    nodes[idx].kind = kind;
    idx
}

/// What the executor asks the system layer to do next.
#[derive(Debug, PartialEq, Eq)]
pub struct StepOutput {
    /// Service invocations to dispatch: `(plan_node, service)`.
    pub activations: Vec<(usize, ServiceId)>,
    /// True when the whole request has completed.
    pub finished: bool,
}

/// Runtime execution state of one request against a [`WorkflowPlan`].
///
/// Owns no reference to the plan — the plan is passed to each call — so the
/// system layer can keep one plan and thousands of in-flight states in the
/// same struct without self-referential borrows.
#[derive(Debug, Clone)]
pub struct RequestExec {
    /// Next child position for Seq nodes / remaining joins for Par nodes /
    /// completed iterations for Loop nodes.
    counters: Vec<usize>,
}

impl RequestExec {
    /// Fresh execution state for one request.
    pub fn new(plan: &WorkflowPlan) -> Self {
        RequestExec {
            counters: vec![0; plan.len()],
        }
    }

    /// Begin execution; returns the initial service activations.
    pub fn start<R: Rng + ?Sized>(&mut self, plan: &WorkflowPlan, rng: &mut R) -> StepOutput {
        let mut out = StepOutput {
            activations: Vec::new(),
            finished: false,
        };
        self.enter(plan, plan.root, rng, &mut out.activations);
        out
    }

    /// A previously activated task node has completed; returns follow-up
    /// activations and/or overall completion.
    pub fn complete_task<R: Rng + ?Sized>(
        &mut self,
        plan: &WorkflowPlan,
        node: usize,
        rng: &mut R,
    ) -> StepOutput {
        let mut out = StepOutput {
            activations: Vec::new(),
            finished: false,
        };
        self.ascend(plan, node, rng, &mut out);
        out
    }

    /// Enter (start) a plan node, pushing task activations.
    fn enter<R: Rng + ?Sized>(
        &mut self,
        plan: &WorkflowPlan,
        node: usize,
        rng: &mut R,
        activations: &mut Vec<(usize, ServiceId)>,
    ) {
        match &plan.nodes[node].kind {
            PlanKind::Task(s) => activations.push((node, *s)),
            PlanKind::Seq(children) => {
                self.counters[node] = 0;
                self.enter(plan, children[0], rng, activations);
            }
            PlanKind::Par(children) => {
                self.counters[node] = children.len();
                for &c in children {
                    self.enter(plan, c, rng, activations);
                }
            }
            PlanKind::Choice { children, probs } => {
                // Validation guarantees non-empty branch lists; degrade to
                // a no-op activation rather than panicking if that
                // invariant is ever violated upstream.
                let Some(&last) = children.last() else {
                    return;
                };
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen = last;
                for (&c, &p) in children.iter().zip(probs.iter()) {
                    acc += p;
                    if u < acc {
                        chosen = c;
                        break;
                    }
                }
                self.enter(plan, chosen, rng, activations);
            }
            PlanKind::Loop { child, .. } => {
                self.counters[node] = 1; // iteration in progress
                self.enter(plan, *child, rng, activations);
            }
        }
    }

    /// A subtree rooted at `node` has completed; propagate upward.
    fn ascend<R: Rng + ?Sized>(
        &mut self,
        plan: &WorkflowPlan,
        node: usize,
        rng: &mut R,
        out: &mut StepOutput,
    ) {
        let Some(parent) = plan.nodes[node].parent else {
            out.finished = true;
            return;
        };
        match &plan.nodes[parent].kind {
            PlanKind::Task(_) => unreachable!("task nodes have no children"),
            PlanKind::Seq(children) => {
                self.counters[parent] += 1;
                let pos = self.counters[parent];
                if pos < children.len() {
                    self.enter(plan, children[pos], rng, &mut out.activations);
                } else {
                    self.ascend(plan, parent, rng, out);
                }
            }
            PlanKind::Par(_) => {
                self.counters[parent] -= 1;
                if self.counters[parent] == 0 {
                    self.ascend(plan, parent, rng, out);
                }
            }
            PlanKind::Choice { .. } => self.ascend(plan, parent, rng, out),
            PlanKind::Loop { child, spec } => {
                let again = match *spec {
                    LoopSpec::Count(k) => self.counters[parent] < k,
                    LoopSpec::Geometric { continue_prob } => rng.gen::<f64>() < continue_prob,
                };
                if again {
                    self.counters[parent] += 1;
                    self.enter(plan, *child, rng, &mut out.activations);
                } else {
                    self.ascend(plan, parent, rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_to_completion(wf: &Workflow, seed: u64) -> Vec<ServiceId> {
        // Complete tasks in FIFO activation order; record the invocation
        // sequence.
        let plan = WorkflowPlan::compile(wf);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut exec = RequestExec::new(&plan);
        let mut pending: std::collections::VecDeque<(usize, ServiceId)> =
            exec.start(&plan, &mut rng).activations.into();
        let mut invoked = Vec::new();
        let mut finished = false;
        while let Some((node, svc)) = pending.pop_front() {
            invoked.push(svc);
            let step = exec.complete_task(&plan, node, &mut rng);
            pending.extend(step.activations);
            finished |= step.finished;
        }
        assert!(finished, "request must finish");
        invoked
    }

    #[test]
    fn sequence_runs_in_order() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Task(1),
            Workflow::Task(2),
        ]);
        assert_eq!(run_to_completion(&wf, 1), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_activates_all_branches_at_once() {
        let wf = Workflow::Par(vec![
            Workflow::Task(0),
            Workflow::Task(1),
            Workflow::Task(2),
        ]);
        let plan = WorkflowPlan::compile(&wf);
        let mut rng = StdRng::seed_from_u64(1);
        let mut exec = RequestExec::new(&plan);
        let start = exec.start(&plan, &mut rng);
        assert_eq!(start.activations.len(), 3);
        assert!(!start.finished);
        // Finishing two branches doesn't finish the request.
        let s1 = exec.complete_task(&plan, start.activations[0].0, &mut rng);
        assert!(!s1.finished && s1.activations.is_empty());
        let s2 = exec.complete_task(&plan, start.activations[1].0, &mut rng);
        assert!(!s2.finished);
        let s3 = exec.complete_task(&plan, start.activations[2].0, &mut rng);
        assert!(s3.finished);
    }

    #[test]
    fn choice_picks_exactly_one_branch() {
        let wf = Workflow::Choice(vec![(0.5, Workflow::Task(0)), (0.5, Workflow::Task(1))]);
        let mut saw = [false, false];
        for seed in 0..40 {
            let invoked = run_to_completion(&wf, seed);
            assert_eq!(invoked.len(), 1);
            saw[invoked[0]] = true;
        }
        assert!(saw[0] && saw[1], "both branches should occur across seeds");
    }

    #[test]
    fn counted_loop_repeats_body() {
        let wf = Workflow::Loop {
            body: Box::new(Workflow::Task(7)),
            spec: LoopSpec::Count(3),
        };
        assert_eq!(run_to_completion(&wf, 2), vec![7, 7, 7]);
    }

    #[test]
    fn geometric_loop_expected_iterations() {
        let wf = Workflow::Loop {
            body: Box::new(Workflow::Task(0)),
            spec: LoopSpec::Geometric { continue_prob: 0.5 },
        };
        let total: usize = (0..2_000)
            .map(|seed| run_to_completion(&wf, seed).len())
            .sum();
        let mean = total as f64 / 2_000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean iterations {mean}");
    }

    #[test]
    fn ediamond_plan_invokes_all_six_services() {
        let wf = kert_workflow::ediamond_workflow();
        let mut invoked = run_to_completion(&wf, 5);
        invoked.sort_unstable();
        assert_eq!(invoked, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn nested_fork_join_completes() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Par(vec![
                Workflow::Seq(vec![Workflow::Task(1), Workflow::Task(2)]),
                Workflow::Loop {
                    body: Box::new(Workflow::Task(3)),
                    spec: LoopSpec::Count(2),
                },
            ]),
            Workflow::Task(4),
        ]);
        let invoked = run_to_completion(&wf, 9);
        assert_eq!(invoked.first(), Some(&0));
        assert_eq!(invoked.last(), Some(&4));
        assert_eq!(invoked.iter().filter(|&&s| s == 3).count(), 2);
        assert_eq!(invoked.len(), 6);
    }

    #[test]
    fn plan_exposes_task_services() {
        let wf = Workflow::Task(4);
        let plan = WorkflowPlan::compile(&wf);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.service_of(0), 4);
    }
}
