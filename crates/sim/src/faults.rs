//! Deterministic, seeded fault injection on the agent → server report path.
//!
//! §5.1 lists "failure in the act of data reporting" as one of the normal
//! operating conditions an autonomic modeler must survive; related
//! diagnosis systems (ALPINE, belief-net bottleneck detection) treat noisy
//! and partial telemetry as the common case. This module perturbs
//! [`AgentReport`]s *before* they reach the management server according to
//! per-agent [`FaultPlan`]s:
//!
//! * **crash** — the agent dies at a window and never reports again;
//! * **drop** — each delivery attempt loses the whole report with
//!   probability `p` (retransmission may succeed);
//! * **delay** — the report straggles in `d` windows late;
//! * **corrupt** — individual rows are poisoned with `NaN` or gross
//!   outliers (broken instrumentation);
//! * **truncate** — only a prefix of the window's rows is shipped
//!   (partial batch).
//!
//! Every decision is drawn from an RNG keyed by
//! `(seed, agent, window, attempt)`, so a fault schedule is a pure
//! function of the plan — bitwise reproducible regardless of thread
//! scheduling or call order, and a retry (`attempt + 1`) sees fresh,
//! independent randomness like a real retransmission would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::monitor::AgentReport;
use crate::{Result, SimError};

// Injection telemetry: one counter per fault kind (counting *injections*,
// not attempts) plus a `sim.fault` JSONL event per injected fault so a
// fault sweep leaves an auditable event stream next to the ladder events
// the learner emits when it heals around them.
static OBS_DELIVERIES: kert_obs::Counter = kert_obs::Counter::new("sim.faults.deliveries");
static OBS_CRASHED: kert_obs::Counter = kert_obs::Counter::new("sim.faults.crashed");
static OBS_DROPPED: kert_obs::Counter = kert_obs::Counter::new("sim.faults.dropped");
static OBS_DELAYED: kert_obs::Counter = kert_obs::Counter::new("sim.faults.delayed");
static OBS_CORRUPTED: kert_obs::Counter = kert_obs::Counter::new("sim.faults.corrupted_rows");
static OBS_TRUNCATED: kert_obs::Counter = kert_obs::Counter::new("sim.faults.truncated");
static OBS_PARTITIONED: kert_obs::Counter = kert_obs::Counter::new("sim.faults.shard_partitions");
static OBS_COORD_CRASHES: kert_obs::Counter =
    kert_obs::Counter::new("sim.faults.coordinator_crashes");

impl FaultEvent {
    /// Stable lower-case name of the fault kind (telemetry label).
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultEvent::Crashed => "crashed",
            FaultEvent::Dropped => "dropped",
            FaultEvent::Delayed { .. } => "delayed",
            FaultEvent::CorruptedRows { .. } => "corrupted_rows",
            FaultEvent::Truncated { .. } => "truncated",
            FaultEvent::ShardPartitioned { .. } => "shard_partitioned",
            FaultEvent::CoordinatorCrashed => "coordinator_crashed",
        }
    }
}

/// Count one injected fault and, in JSONL mode, emit a `sim.fault` event
/// keyed by the delivery-attempt coordinates.
fn record_fault(event: &FaultEvent, agent: usize, window: usize, attempt: usize) {
    let (counter, magnitude) = match event {
        FaultEvent::Crashed => (&OBS_CRASHED, 1.0),
        FaultEvent::Dropped => (&OBS_DROPPED, 1.0),
        FaultEvent::Delayed { windows } => (&OBS_DELAYED, *windows as f64),
        FaultEvent::CorruptedRows { rows } => (&OBS_CORRUPTED, *rows as f64),
        FaultEvent::Truncated { kept, .. } => (&OBS_TRUNCATED, *kept as f64),
        FaultEvent::ShardPartitioned { shard } => (&OBS_PARTITIONED, *shard as f64),
        FaultEvent::CoordinatorCrashed => (&OBS_COORD_CRASHES, 1.0),
    };
    counter.incr();
    if kert_obs::jsonl_enabled() {
        kert_obs::event(
            "sim.fault",
            magnitude,
            &[
                ("kind", event.kind_name()),
                ("agent", &agent.to_string()),
                ("window", &window.to_string()),
                ("attempt", &attempt.to_string()),
            ],
        );
    }
}

/// The fault behaviour of one monitoring agent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Window index from which the agent is dead (inclusive). `None` =
    /// never crashes.
    pub crash_at_window: Option<usize>,
    /// Probability that a delivery attempt loses the whole report.
    pub drop_prob: f64,
    /// Probability that a delivered report straggles.
    pub delay_prob: f64,
    /// How many windows a straggling report is late.
    pub delay_windows: usize,
    /// Per-row probability of corruption (NaN or gross outlier).
    pub corrupt_prob: f64,
    /// Probability that a report is truncated to a prefix of its rows.
    pub truncate_prob: f64,
    /// Fraction of rows kept when truncation strikes (clamped to ≥ 1 row).
    pub truncate_keep: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::healthy()
    }
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn healthy() -> Self {
        FaultPlan {
            crash_at_window: None,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_windows: 0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            truncate_keep: 0.5,
        }
    }

    /// Crash the agent at window `k` (no reports from `k` on).
    pub fn crash_at(window: usize) -> Self {
        FaultPlan {
            crash_at_window: Some(window),
            ..FaultPlan::healthy()
        }
    }

    /// Drop each delivery attempt with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan {
            drop_prob: p,
            ..FaultPlan::healthy()
        }
    }

    /// Validate probability ranges.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("delay_prob", self.delay_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("truncate_prob", self.truncate_prob),
            ("truncate_keep", self.truncate_keep),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(SimError::BadFaultPlan(format!("{name} = {p}")));
            }
        }
        Ok(())
    }

    /// Whether this plan can inject anything at all.
    pub fn is_healthy(&self) -> bool {
        self.crash_at_window.is_none()
            && self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.truncate_prob == 0.0
    }
}

/// What the injector did to one delivery attempt (for health accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The agent is crashed; nothing will ever arrive.
    Crashed,
    /// The report was lost in transit.
    Dropped,
    /// The report straggles this many windows late.
    Delayed {
        /// Lateness in windows.
        windows: usize,
    },
    /// Rows were poisoned with NaN/outlier values.
    CorruptedRows {
        /// Number of corrupted rows.
        rows: usize,
    },
    /// Only a prefix of the rows was shipped.
    Truncated {
        /// Rows that survived.
        kept: usize,
        /// Rows originally in the report.
        of: usize,
    },
    /// The agent's whole shard was unreachable this window (network
    /// partition between the coordinator and a slice of the fleet).
    ShardPartitioned {
        /// The partitioned shard.
        shard: usize,
    },
    /// The coordinator itself died this epoch; collection stopped and a
    /// restarted coordinator resumed from its last snapshot.
    CoordinatorCrashed,
}

/// Outcome of one delivery attempt.
#[derive(Debug, Clone)]
pub enum Delivery {
    /// The (possibly perturbed) report arrived on time.
    Delivered(AgentReport),
    /// The report will arrive, but `windows` windows late.
    Delayed {
        /// Lateness in windows.
        windows: usize,
        /// The straggling (possibly perturbed) report.
        report: AgentReport,
    },
    /// Nothing arrived and nothing will (crash or loss).
    Missing,
}

/// Fleet-level fault behaviour: whole-shard partitions.
///
/// Per-agent [`FaultPlan`]s model endpoint failures; at 10³–10⁴ agents the
/// dominant outage is *correlated* — a switch or overlay partition takes
/// out an entire shard of the fleet at once. Partition decisions are keyed
/// by `(seed, shard, n_shards, window)`, so they are bitwise-deterministic
/// and independent of per-agent delivery randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    /// Probability that a given shard is unreachable for a given window.
    pub partition_prob: f64,
}

impl ShardFaultPlan {
    /// Validate probability ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.partition_prob) {
            return Err(SimError::BadFaultPlan(format!(
                "partition_prob = {}",
                self.partition_prob
            )));
        }
        Ok(())
    }
}

/// Coordinator fault behaviour: the management server itself dies.
///
/// Unlike agent faults, a coordinator crash does not perturb a delivery —
/// it ends the epoch: the harness drops the in-memory [`CpdCache`] and a
/// restarted coordinator resumes from its last persisted snapshot. Crashes
/// are keyed by `(seed, epoch)`, with an optional deterministic kill epoch
/// for reproducible kill-restart drills.
///
/// [`CpdCache`]: https://docs.rs/kert-agents
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoordinatorFaultPlan {
    /// Probability the coordinator dies in any given epoch.
    pub crash_prob: f64,
    /// Epoch at which the coordinator deterministically dies (on top of
    /// the probabilistic crashes). `None` = only probabilistic.
    pub crash_at_epoch: Option<u64>,
}

impl CoordinatorFaultPlan {
    /// A plan that kills the coordinator exactly once, at `epoch`.
    pub fn kill_at(epoch: u64) -> Self {
        CoordinatorFaultPlan {
            crash_prob: 0.0,
            crash_at_epoch: Some(epoch),
        }
    }

    /// Validate probability ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.crash_prob) {
            return Err(SimError::BadFaultPlan(format!(
                "crash_prob = {}",
                self.crash_prob
            )));
        }
        Ok(())
    }
}

/// Domain-separation salts so shard/coordinator decisions never reuse the
/// per-delivery RNG streams.
const SHARD_SALT: u64 = 0x5348_4152_4421_1111;
const COORD_SALT: u64 = 0x434F_4F52_4422_2222;

/// Seeded fault injector for a fleet of agents.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    plans: Vec<FaultPlan>,
    shard_faults: Option<ShardFaultPlan>,
    coordinator: Option<CoordinatorFaultPlan>,
}

impl FaultInjector {
    /// Build an injector from per-agent plans (`plans[a]` for agent `a`).
    pub fn new(seed: u64, plans: Vec<FaultPlan>) -> Result<Self> {
        for plan in &plans {
            plan.validate()?;
        }
        Ok(FaultInjector {
            seed,
            plans,
            shard_faults: None,
            coordinator: None,
        })
    }

    /// An injector that perturbs nothing (useful as the zero of a sweep).
    pub fn healthy(n_agents: usize) -> Self {
        FaultInjector {
            seed: 0,
            plans: vec![FaultPlan::healthy(); n_agents],
            shard_faults: None,
            coordinator: None,
        }
    }

    /// Add whole-shard partition faults.
    pub fn with_shard_faults(mut self, plan: ShardFaultPlan) -> Result<Self> {
        plan.validate()?;
        self.shard_faults = Some(plan);
        Ok(self)
    }

    /// Add coordinator-crash faults.
    pub fn with_coordinator_faults(mut self, plan: CoordinatorFaultPlan) -> Result<Self> {
        plan.validate()?;
        self.coordinator = Some(plan);
        Ok(self)
    }

    /// Whether shard `shard` (of `n_shards`) is partitioned away from the
    /// coordinator for `window`. Deterministic in
    /// `(seed, shard, n_shards, window)`; records the injection once per
    /// query hit.
    pub fn shard_partitioned(&self, shard: usize, n_shards: usize, window: usize) -> bool {
        let Some(plan) = &self.shard_faults else {
            return false;
        };
        if plan.partition_prob <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(mix_key(
            self.seed ^ SHARD_SALT,
            shard as u64,
            window as u64,
            n_shards as u64,
        ));
        let hit = rng.gen::<f64>() < plan.partition_prob;
        if hit {
            record_fault(&FaultEvent::ShardPartitioned { shard }, shard, window, 0);
        }
        hit
    }

    /// Whether the coordinator dies in `epoch` (deterministic kill epoch
    /// or seeded probabilistic crash). Records the injection on hit.
    pub fn coordinator_crashes(&self, epoch: u64) -> bool {
        let Some(plan) = &self.coordinator else {
            return false;
        };
        if plan.crash_at_epoch == Some(epoch) {
            record_fault(&FaultEvent::CoordinatorCrashed, 0, epoch as usize, 0);
            return true;
        }
        if plan.crash_prob <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(mix_key(self.seed ^ COORD_SALT, 0, epoch, 0));
        let hit = rng.gen::<f64>() < plan.crash_prob;
        if hit {
            record_fault(&FaultEvent::CoordinatorCrashed, 0, epoch as usize, 0);
        }
        hit
    }

    /// Number of agents covered.
    pub fn n_agents(&self) -> usize {
        self.plans.len()
    }

    /// The plan of one agent.
    pub fn plan(&self, agent: usize) -> &FaultPlan {
        &self.plans[agent]
    }

    /// Perturb one delivery attempt of `agent`'s report for `window`.
    ///
    /// Deterministic in `(seed, agent, window, attempt)`: calling twice
    /// with the same key yields bitwise-identical outcomes.
    pub fn deliver(
        &self,
        agent: usize,
        window: usize,
        attempt: usize,
        report: &AgentReport,
    ) -> (Delivery, Vec<FaultEvent>) {
        OBS_DELIVERIES.incr();
        let plan = &self.plans[agent];
        if plan.crash_at_window.is_some_and(|k| window >= k) {
            let event = FaultEvent::Crashed;
            record_fault(&event, agent, window, attempt);
            return (Delivery::Missing, vec![event]);
        }
        if plan.is_healthy() {
            return (Delivery::Delivered(report.clone()), Vec::new());
        }
        let mut rng = StdRng::seed_from_u64(mix_key(
            self.seed,
            agent as u64,
            window as u64,
            attempt as u64,
        ));
        if rng.gen::<f64>() < plan.drop_prob {
            let event = FaultEvent::Dropped;
            record_fault(&event, agent, window, attempt);
            return (Delivery::Missing, vec![event]);
        }

        let mut events = Vec::new();
        let mut report = report.clone();

        // Truncation: ship only a prefix of the batch.
        if plan.truncate_prob > 0.0 && rng.gen::<f64>() < plan.truncate_prob {
            let rows = report.data.rows();
            let keep = ((rows as f64 * plan.truncate_keep).ceil() as usize).clamp(1, rows.max(1));
            if keep < rows {
                report = truncate_report(&report, keep);
                events.push(FaultEvent::Truncated {
                    kept: keep,
                    of: rows,
                });
            }
        }

        // Corruption: poison individual rows with NaN or gross outliers.
        if plan.corrupt_prob > 0.0 {
            let corrupted = corrupt_report(&mut report, plan.corrupt_prob, &mut rng);
            if corrupted > 0 {
                events.push(FaultEvent::CorruptedRows { rows: corrupted });
            }
        }

        if plan.delay_prob > 0.0 && rng.gen::<f64>() < plan.delay_prob {
            let windows = plan.delay_windows.max(1);
            events.push(FaultEvent::Delayed { windows });
            for event in &events {
                record_fault(event, agent, window, attempt);
            }
            return (Delivery::Delayed { windows, report }, events);
        }
        for event in &events {
            record_fault(event, agent, window, attempt);
        }
        (Delivery::Delivered(report), events)
    }
}

/// Keep the first `keep` rows of a report.
fn truncate_report(report: &AgentReport, keep: usize) -> AgentReport {
    let mut data = kert_bayes::Dataset::new(report.data.names().to_vec());
    for r in 0..keep {
        data.push_row(report.data.row(r).to_vec())
            .expect("truncated rows keep the report's width");
    }
    AgentReport {
        service: report.service,
        data,
        row_ids: report.row_ids.iter().take(keep).copied().collect(),
        values_received: report.values_received,
    }
}

/// Poison rows in place; returns the number of corrupted rows.
fn corrupt_report(report: &mut AgentReport, per_row_prob: f64, rng: &mut StdRng) -> usize {
    let rows = report.data.rows();
    let cols = report.data.columns();
    if rows == 0 || cols == 0 {
        return 0;
    }
    let mut rebuilt = kert_bayes::Dataset::new(report.data.names().to_vec());
    let mut corrupted = 0usize;
    for r in 0..rows {
        let mut row = report.data.row(r).to_vec();
        if rng.gen::<f64>() < per_row_prob {
            let col = rng.gen_range(0..cols);
            // Alternate between the two instrumentation pathologies: a
            // reading that never materialized (NaN) and a clock glitch
            // (gross outlier).
            row[col] = if rng.gen::<bool>() {
                f64::NAN
            } else {
                row[col].abs().max(1e-3) * 1e3
            };
            corrupted += 1;
        }
        rebuilt
            .push_row(row)
            .expect("corruption preserves the report's width");
    }
    report.data = rebuilt;
    corrupted
}

/// SplitMix64-style avalanche, used to key per-attempt RNG streams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a `(seed, agent, window, attempt)` key into one RNG seed.
fn mix_key(seed: u64, agent: u64, window: u64, attempt: u64) -> u64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ agent);
    h = splitmix64(h ^ window.wrapping_mul(0x0000_0001_0000_001B));
    splitmix64(h ^ attempt.wrapping_mul(0x0000_0100_0000_01B3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitoringAgent;
    use crate::trace::{Trace, TraceRow};

    fn demo_report(rows: usize) -> AgentReport {
        let mut t = Trace::new(2);
        for i in 0..rows {
            t.push(TraceRow {
                completed_at: i as f64,
                elapsed: vec![0.1 + i as f64, 0.2 + i as f64],
                response_time: 0.3,
                resources: Vec::new(),
            });
        }
        MonitoringAgent::new(1, vec![0]).report(&t)
    }

    #[test]
    fn healthy_plan_is_identity() {
        let injector = FaultInjector::healthy(2);
        let report = demo_report(5);
        let (delivery, events) = injector.deliver(1, 0, 0, &report);
        assert!(events.is_empty());
        match delivery {
            Delivery::Delivered(r) => {
                assert_eq!(r.data.rows(), 5);
                assert_eq!(r.row_ids, report.row_ids);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crash_is_permanent_from_its_window() {
        let injector = FaultInjector::new(7, vec![FaultPlan::crash_at(2)]).unwrap();
        let report = demo_report(3);
        for window in 0..2 {
            assert!(matches!(
                injector.deliver(0, window, 0, &report).0,
                Delivery::Delivered(_)
            ));
        }
        for window in 2..6 {
            let (delivery, events) = injector.deliver(0, window, 0, &report);
            assert!(matches!(delivery, Delivery::Missing));
            assert_eq!(events, vec![FaultEvent::Crashed]);
        }
    }

    #[test]
    fn deliveries_are_deterministic_per_key_and_vary_across_attempts() {
        let plan = FaultPlan {
            drop_prob: 0.5,
            corrupt_prob: 0.3,
            truncate_prob: 0.3,
            delay_prob: 0.2,
            delay_windows: 1,
            ..FaultPlan::healthy()
        };
        let injector = FaultInjector::new(11, vec![plan; 3]).unwrap();
        let report = demo_report(20);
        // Same key twice → bitwise-identical outcome.
        for agent in 0..3 {
            for window in 0..4 {
                for attempt in 0..3 {
                    let (a, ea) = injector.deliver(agent, window, attempt, &report);
                    let (b, eb) = injector.deliver(agent, window, attempt, &report);
                    assert_eq!(ea, eb);
                    match (a, b) {
                        (Delivery::Delivered(x), Delivery::Delivered(y)) => {
                            assert_eq!(x.row_ids, y.row_ids);
                            for r in 0..x.data.rows() {
                                for c in 0..x.data.columns() {
                                    let (xv, yv) = (x.data.get(r, c), y.data.get(r, c));
                                    assert!(xv == yv || (xv.is_nan() && yv.is_nan()));
                                }
                            }
                        }
                        (Delivery::Missing, Delivery::Missing) => {}
                        (
                            Delivery::Delayed { windows: wx, .. },
                            Delivery::Delayed { windows: wy, .. },
                        ) => assert_eq!(wx, wy),
                        other => panic!("outcomes diverged: {other:?}"),
                    }
                }
            }
        }
        // Different attempts must not all collapse onto one outcome: a
        // p=0.5 drop should both hit and miss somewhere over 24 attempts.
        let mut dropped = 0;
        let mut delivered = 0;
        for window in 0..8 {
            for attempt in 0..3 {
                match injector.deliver(0, window, attempt, &report).0 {
                    Delivery::Missing => dropped += 1,
                    _ => delivered += 1,
                }
            }
        }
        assert!(dropped > 0 && delivered > 0, "{dropped} vs {delivered}");
    }

    #[test]
    fn truncation_keeps_a_prefix_with_matching_ids() {
        let plan = FaultPlan {
            truncate_prob: 1.0,
            truncate_keep: 0.4,
            ..FaultPlan::healthy()
        };
        let injector = FaultInjector::new(3, vec![plan]).unwrap();
        let report = demo_report(10);
        let (delivery, events) = injector.deliver(0, 0, 0, &report);
        let Delivery::Delivered(r) = delivery else {
            panic!("truncation still delivers");
        };
        assert_eq!(r.data.rows(), 4);
        assert_eq!(r.row_ids, (0..4).collect::<Vec<u64>>());
        assert_eq!(events, vec![FaultEvent::Truncated { kept: 4, of: 10 }]);
    }

    #[test]
    fn corruption_poisons_rows() {
        let plan = FaultPlan {
            corrupt_prob: 1.0,
            ..FaultPlan::healthy()
        };
        let injector = FaultInjector::new(5, vec![plan]).unwrap();
        let report = demo_report(12);
        let (delivery, events) = injector.deliver(0, 0, 0, &report);
        let Delivery::Delivered(r) = delivery else {
            panic!("corruption still delivers");
        };
        assert_eq!(events, vec![FaultEvent::CorruptedRows { rows: 12 }]);
        // Every row carries either a NaN or a ×1000 outlier.
        for row in 0..r.data.rows() {
            let poisoned = (0..r.data.columns()).any(|c| {
                let v = r.data.get(row, c);
                v.is_nan() || v > 100.0
            });
            assert!(poisoned, "row {row} unpoisoned");
        }
    }

    #[test]
    fn delay_straggles_by_the_configured_windows() {
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_windows: 3,
            ..FaultPlan::healthy()
        };
        let injector = FaultInjector::new(9, vec![plan]).unwrap();
        let (delivery, events) = injector.deliver(0, 0, 0, &demo_report(4));
        match delivery {
            Delivery::Delayed { windows, report } => {
                assert_eq!(windows, 3);
                assert_eq!(report.data.rows(), 4);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(events, vec![FaultEvent::Delayed { windows: 3 }]);
    }

    #[test]
    fn shard_partitions_are_deterministic_and_seed_varied() {
        let injector = FaultInjector::new(21, vec![FaultPlan::healthy(); 8])
            .unwrap()
            .with_shard_faults(ShardFaultPlan {
                partition_prob: 0.5,
            })
            .unwrap();
        let mut hits = 0;
        for shard in 0..4 {
            for window in 0..16 {
                let a = injector.shard_partitioned(shard, 4, window);
                let b = injector.shard_partitioned(shard, 4, window);
                assert_eq!(a, b, "partition decision must be pure");
                hits += usize::from(a);
            }
        }
        // p=0.5 over 64 keys: both outcomes must occur.
        assert!(hits > 0 && hits < 64, "{hits}/64 partitions");
        // Shard decisions are independent of the per-agent delivery
        // streams: an injector without shard faults never partitions.
        let plain = FaultInjector::new(21, vec![FaultPlan::healthy(); 8]).unwrap();
        assert!(!plain.shard_partitioned(0, 4, 0));
    }

    #[test]
    fn coordinator_crash_honours_kill_epoch_and_probability() {
        let healthy = FaultInjector::healthy(4);
        assert!(!healthy.coordinator_crashes(0));

        let killed = FaultInjector::new(5, vec![FaultPlan::healthy(); 4])
            .unwrap()
            .with_coordinator_faults(CoordinatorFaultPlan::kill_at(3))
            .unwrap();
        for epoch in 0..8 {
            assert_eq!(killed.coordinator_crashes(epoch), epoch == 3);
        }

        let flaky = FaultInjector::new(5, vec![FaultPlan::healthy(); 4])
            .unwrap()
            .with_coordinator_faults(CoordinatorFaultPlan {
                crash_prob: 0.5,
                crash_at_epoch: None,
            })
            .unwrap();
        let mut crashes = 0;
        for epoch in 0..32 {
            let a = flaky.coordinator_crashes(epoch);
            assert_eq!(a, flaky.coordinator_crashes(epoch));
            crashes += u32::from(a);
        }
        assert!(crashes > 0 && crashes < 32, "{crashes}/32 crashes");
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(FaultInjector::new(0, vec![FaultPlan::lossy(1.5)]).is_err());
        let bad_keep = FaultPlan {
            truncate_keep: -0.1,
            ..FaultPlan::healthy()
        };
        assert!(FaultInjector::new(0, vec![bad_keep]).is_err());
        assert!(FaultPlan::healthy().validate().is_ok());
        assert!(FaultInjector::healthy(2)
            .with_shard_faults(ShardFaultPlan {
                partition_prob: 1.2
            })
            .is_err());
        assert!(FaultInjector::healthy(2)
            .with_coordinator_faults(CoordinatorFaultPlan {
                crash_prob: -0.5,
                crash_at_epoch: None,
            })
            .is_err());
    }
}
