//! The reporting data plane: batching, latency, and loss.
//!
//! Figure 1's pipeline between monitoring points and the management
//! server, made concrete: each agent batches its measurements and ships a
//! report per batch; reports arrive after a network latency and may be
//! lost outright — §5.1's "failure in the act of data reporting", one of
//! the three reasons dComp exists. The server's usable training set is the
//! set of requests for which *every* service's measurement arrived; the
//! availability statistics quantify what monitoring overhead reduction or
//! flaky links cost in effective data.

use kert_bayes::Dataset;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::Trace;
use crate::{Result, SimError};

/// Configuration of one agent's reporting behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportingConfig {
    /// Measurements per report message (batching to avoid flooding the
    /// network, §3.4).
    pub batch_size: usize,
    /// Seconds between a batch filling up and its arrival at the server.
    pub report_latency: f64,
    /// Probability that an entire report is lost in transit.
    pub loss_prob: f64,
}

impl Default for ReportingConfig {
    fn default() -> Self {
        ReportingConfig {
            batch_size: 10,
            report_latency: 0.5,
            loss_prob: 0.0,
        }
    }
}

impl ReportingConfig {
    /// Validate ranges.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(SimError::BadConfig("batch_size = 0".into()));
        }
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return Err(SimError::BadConfig(format!(
                "loss_prob = {}",
                self.loss_prob
            )));
        }
        if self.report_latency < 0.0 || !self.report_latency.is_finite() {
            return Err(SimError::BadConfig(format!(
                "report_latency = {}",
                self.report_latency
            )));
        }
        Ok(())
    }
}

/// What the management server ends up holding after the lossy pipeline.
#[derive(Debug, Clone)]
pub struct ServerView {
    n_services: usize,
    /// `arrived[s][r]`: did service `s`'s measurement for trace row `r`
    /// reach the server?
    arrived: Vec<Vec<bool>>,
    /// Arrival time of each service's batch reports (for staleness
    /// accounting), per delivered report.
    delivery_times: Vec<Vec<f64>>,
}

impl ServerView {
    /// Fraction of rows whose measurement arrived, per service.
    pub fn availability(&self, service: usize) -> f64 {
        let v = &self.arrived[service];
        if v.is_empty() {
            return 0.0;
        }
        v.iter().filter(|&&a| a).count() as f64 / v.len() as f64
    }

    /// Row indices for which *every* service reported — the server's
    /// usable complete-case training rows.
    pub fn complete_rows(&self) -> Vec<usize> {
        let rows = self.arrived.first().map_or(0, Vec::len);
        (0..rows)
            .filter(|&r| self.arrived.iter().all(|col| col[r]))
            .collect()
    }

    /// The complete-case training dataset (columns as in
    /// [`Trace::to_dataset`]).
    pub fn complete_dataset(&self, trace: &Trace) -> Dataset {
        let full = trace.to_dataset(None);
        let mut out = Dataset::new(full.names().to_vec());
        for r in self.complete_rows() {
            out.push_row(full.row(r).to_vec()).expect("fixed width");
        }
        out
    }

    /// Which services are fully silent (no report ever arrived) — dComp's
    /// "unobservable components".
    pub fn silent_services(&self) -> Vec<usize> {
        (0..self.n_services)
            .filter(|&s| self.arrived[s].iter().all(|&a| !a))
            .collect()
    }

    /// Mean report delivery delay of a service (NaN if nothing arrived).
    pub fn mean_delivery_time(&self, service: usize) -> f64 {
        let t = &self.delivery_times[service];
        if t.is_empty() {
            f64::NAN
        } else {
            t.iter().sum::<f64>() / t.len() as f64
        }
    }
}

/// Push a trace through the reporting pipeline with per-service configs
/// (`configs[s]` for service `s`). Whole batches are lost together —
/// loss is a property of report messages, not of individual measurements.
pub fn simulate_reporting<R: Rng + ?Sized>(
    trace: &Trace,
    configs: &[ReportingConfig],
    rng: &mut R,
) -> Result<ServerView> {
    let n = trace.n_services();
    if configs.len() != n {
        return Err(SimError::BadConfig(format!(
            "{} reporting configs for {n} services",
            configs.len()
        )));
    }
    for c in configs {
        c.validate()?;
    }
    let rows = trace.len();
    let mut arrived = vec![vec![false; rows]; n];
    let mut delivery_times = vec![Vec::new(); n];

    for (s, config) in configs.iter().enumerate() {
        let mut batch_start = 0usize;
        while batch_start < rows {
            let batch_end = (batch_start + config.batch_size).min(rows);
            // The batch ships when its last measurement is taken.
            let ship_time = trace.rows()[batch_end - 1].completed_at;
            let lost = rng.gen::<f64>() < config.loss_prob;
            if !lost {
                arrived[s][batch_start..batch_end].fill(true);
                delivery_times[s].push(ship_time + config.report_latency);
            }
            batch_start = batch_end;
        }
    }
    Ok(ServerView {
        n_services: n,
        arrived,
        delivery_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_trace(rows: usize) -> Trace {
        let mut t = Trace::new(2);
        for i in 0..rows {
            t.push(TraceRow {
                completed_at: i as f64,
                elapsed: vec![0.1, 0.2],
                response_time: 0.3,
                resources: Vec::new(),
            });
        }
        t
    }

    #[test]
    fn lossless_pipeline_delivers_everything() {
        let trace = demo_trace(25);
        let configs = vec![ReportingConfig::default(); 2];
        let mut rng = StdRng::seed_from_u64(1);
        let view = simulate_reporting(&trace, &configs, &mut rng).unwrap();
        assert_eq!(view.availability(0), 1.0);
        assert_eq!(view.availability(1), 1.0);
        assert_eq!(view.complete_rows().len(), 25);
        assert!(view.silent_services().is_empty());
        // Batch of 10 at 0.5s latency: first report arrives at t=9.5.
        assert!((view.mean_delivery_time(0) - (9.5 + 19.5 + 24.5) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn full_loss_silences_a_service() {
        let trace = demo_trace(20);
        let configs = vec![
            ReportingConfig::default(),
            ReportingConfig {
                loss_prob: 1.0,
                ..Default::default()
            },
        ];
        let mut rng = StdRng::seed_from_u64(2);
        let view = simulate_reporting(&trace, &configs, &mut rng).unwrap();
        assert_eq!(view.availability(1), 0.0);
        assert_eq!(view.silent_services(), vec![1]);
        assert!(view.complete_rows().is_empty());
        assert!(view.mean_delivery_time(1).is_nan());
    }

    #[test]
    fn partial_loss_shrinks_the_complete_case_set() {
        let trace = demo_trace(200);
        let configs = vec![
            ReportingConfig {
                batch_size: 5,
                loss_prob: 0.3,
                ..Default::default()
            };
            2
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let view = simulate_reporting(&trace, &configs, &mut rng).unwrap();
        let avail0 = view.availability(0);
        assert!(avail0 > 0.5 && avail0 < 0.9, "{avail0}");
        let complete = view.complete_rows().len();
        // Complete cases ≈ availability₀ × availability₁ × rows.
        let expect = view.availability(0) * view.availability(1) * 200.0;
        assert!(
            (complete as f64 - expect).abs() < 40.0,
            "complete {complete} vs expected ≈ {expect}"
        );
        // Losses are batch-aligned: row availability changes only at batch
        // boundaries.
        let ds = view.complete_dataset(&trace);
        assert_eq!(ds.rows(), complete);
    }

    #[test]
    fn invalid_configs_rejected() {
        let trace = demo_trace(5);
        let bad_len = vec![ReportingConfig::default()];
        let mut rng = StdRng::seed_from_u64(4);
        assert!(simulate_reporting(&trace, &bad_len, &mut rng).is_err());
        let bad_cfg = vec![
            ReportingConfig {
                batch_size: 0,
                ..Default::default()
            };
            2
        ];
        assert!(simulate_reporting(&trace, &bad_cfg, &mut rng).is_err());
        let bad_loss = vec![
            ReportingConfig {
                loss_prob: 1.5,
                ..Default::default()
            };
            2
        ];
        assert!(simulate_reporting(&trace, &bad_loss, &mut rng).is_err());
    }
}
