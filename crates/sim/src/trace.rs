//! Monitoring traces: what the instrumentation actually measured.
//!
//! Each completed request contributes one [`TraceRow`]: per-service elapsed
//! times (`X₁…X_n`, zero for services off the taken path) and the
//! end-to-end response time `D`. Conversion to a model-ready
//! [`Dataset`] puts `D` in the *last* column, the node-ordering convention
//! used across the workspace (service `s` ↔ column `s`, `D` ↔ column `n`).

use kert_bayes::Dataset;
use serde::{Deserialize, Serialize};

// One counter per completed request recorded anywhere in the process — the
// simulator's raw measurement throughput.
static OBS_TRACE_ROWS: kert_obs::Counter = kert_obs::Counter::new("sim.trace.rows");

/// One completed request's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Simulation time at which the request completed.
    pub completed_at: f64,
    /// Per-service elapsed times (wait + service; loop iterations
    /// accumulate; unvisited services are zero).
    pub elapsed: Vec<f64>,
    /// End-to-end response time.
    pub response_time: f64,
    /// Mean utilization observed on each monitored host while this request
    /// was served (empty when no host layout is configured).
    #[serde(default)]
    pub resources: Vec<f64>,
}

/// A sequence of completed-request measurements, completion-time ordered.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    n_services: usize,
    /// Names of the monitored shared resources (hosts), in column order.
    resource_names: Vec<String>,
    rows: Vec<TraceRow>,
}

impl Trace {
    /// An empty trace over `n_services` services, no resource columns.
    pub fn new(n_services: usize) -> Self {
        Trace {
            n_services,
            resource_names: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// An empty trace with shared-resource (host utilization) columns.
    pub fn with_resources(n_services: usize, resource_names: Vec<String>) -> Self {
        Trace {
            n_services,
            resource_names,
            rows: Vec::new(),
        }
    }

    /// Names of the resource columns (between the service columns and `D`).
    pub fn resource_names(&self) -> &[String] {
        &self.resource_names
    }

    /// Number of services.
    pub fn n_services(&self) -> usize {
        self.n_services
    }

    /// Append a row (rows must arrive in completion order).
    pub fn push(&mut self, row: TraceRow) {
        debug_assert_eq!(row.elapsed.len(), self.n_services);
        debug_assert_eq!(row.resources.len(), self.resource_names.len());
        debug_assert!(self
            .rows
            .last()
            .is_none_or(|last| last.completed_at <= row.completed_at));
        OBS_TRACE_ROWS.incr();
        self.rows.push(row);
    }

    /// All rows.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no requests completed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Response-time column.
    pub fn response_times(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.response_time).collect()
    }

    /// Elapsed-time column of one service.
    pub fn elapsed_of(&self, service: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r.elapsed[service]).collect()
    }

    /// Thin the trace to the monitoring cadence: keep the *last* completed
    /// request of each `t_data`-long interval — one reported data point per
    /// collection interval, as in the paper's `T_DATA` scheme.
    pub fn sample_every(&self, t_data: f64) -> Trace {
        assert!(t_data > 0.0, "T_DATA must be positive");
        let mut out = Trace::with_resources(self.n_services, self.resource_names.clone());
        let mut current_bucket: Option<(u64, TraceRow)> = None;
        for row in &self.rows {
            let bucket = (row.completed_at / t_data) as u64;
            match &mut current_bucket {
                Some((b, pending)) if *b == bucket => *pending = row.clone(),
                Some((b, pending)) => {
                    debug_assert!(*b < bucket);
                    out.rows.push(pending.clone());
                    current_bucket = Some((bucket, row.clone()));
                }
                None => current_bucket = Some((bucket, row.clone())),
            }
        }
        if let Some((_, pending)) = current_bucket {
            out.rows.push(pending);
        }
        out
    }

    /// Split into consecutive windows of `rows_per_window` rows — the
    /// per-construction-interval slices the monitoring agents report on.
    /// The final window may be shorter; it is kept only if non-empty.
    pub fn windows(&self, rows_per_window: usize) -> Vec<Trace> {
        assert!(rows_per_window > 0, "windows need at least one row");
        self.rows
            .chunks(rows_per_window)
            .map(|chunk| {
                let mut w = Trace::with_resources(self.n_services, self.resource_names.clone());
                w.rows.extend_from_slice(chunk);
                w
            })
            .collect()
    }

    /// Aggregate the trace into the §3.3 *timeout-count* metric: per
    /// `t_data`-long interval, count how many requests saw each service's
    /// elapsed time exceed its deadline (`deadlines[s]`), plus the
    /// end-to-end count `D = Σ Xᵢ` in the last column (each sub-transaction
    /// timeout is attributed to its service; the transaction-level counter
    /// is their sum, which is exactly the `f` the paper derives for this
    /// metric).
    ///
    /// Column names: `T1…Tn, D`. Resource columns are not produced (the
    /// count metric concerns transactions, not hosts).
    pub fn timeout_counts(&self, deadlines: &[f64], t_data: f64) -> Dataset {
        assert_eq!(deadlines.len(), self.n_services, "one deadline per service");
        assert!(t_data > 0.0, "T_DATA must be positive");
        let names: Vec<String> = (0..self.n_services)
            .map(|i| format!("T{}", i + 1))
            .chain(std::iter::once("D".to_string()))
            .collect();
        let mut ds = Dataset::new(names);
        let mut bucket: Option<u64> = None;
        let mut counts = vec![0.0; self.n_services + 1];
        for row in &self.rows {
            let b = (row.completed_at / t_data) as u64;
            if bucket.is_some_and(|cur| cur != b) {
                ds.push_row(counts.clone()).expect("fixed width");
                counts.fill(0.0);
            }
            bucket = Some(b);
            for (s, (&x, &dl)) in row.elapsed.iter().zip(deadlines.iter()).enumerate() {
                if x > dl {
                    counts[s] += 1.0;
                }
            }
            // End-to-end counter: total sub-transaction timeouts.
            counts[self.n_services] = counts[..self.n_services].iter().sum();
        }
        if bucket.is_some() {
            ds.push_row(counts).expect("fixed width");
        }
        ds
    }

    /// Like [`Trace::to_dataset`], but with multiplicative Gaussian
    /// measurement noise (`rel_noise` as a fraction, e.g. `0.02` = 2%) on
    /// every reading. Models the imprecision of code-instrumentation
    /// monitoring points — the paper's justification for the "leak" term
    /// of Eq. 4: with noisy measurements, `D` is no longer *exactly*
    /// `f(𝕏)`, so neither model family gets a degenerate deterministic
    /// column.
    pub fn to_noisy_dataset<R: rand::Rng + ?Sized>(
        &self,
        service_names: Option<&[String]>,
        rel_noise: f64,
        rng: &mut R,
    ) -> Dataset {
        assert!(rel_noise >= 0.0, "noise fraction must be non-negative");
        let clean = self.to_dataset(service_names);
        let mut out = Dataset::new(clean.names().to_vec());
        for r in 0..clean.rows() {
            let row: Vec<f64> = clean
                .row(r)
                .iter()
                .map(|&v| {
                    let noise = symmetric_normal(rng) * rel_noise * v.abs();
                    (v + noise).max(0.0)
                })
                .collect();
            out.push_row(row).expect("fixed width");
        }
        out
    }

    /// Convert to a model dataset: columns `X1..Xn`, then one column per
    /// monitored resource, then `D` (node order).
    pub fn to_dataset(&self, service_names: Option<&[String]>) -> Dataset {
        let mut names: Vec<String> = match service_names {
            Some(ns) => {
                assert_eq!(ns.len(), self.n_services, "name count mismatch");
                ns.to_vec()
            }
            None => (0..self.n_services)
                .map(|i| format!("X{}", i + 1))
                .collect(),
        };
        names.extend(self.resource_names.iter().cloned());
        names.push("D".to_string());
        let mut ds = Dataset::new(names);
        for row in &self.rows {
            let mut values = row.elapsed.clone();
            values.extend_from_slice(&row.resources);
            values.push(row.response_time);
            ds.push_row(values).expect("trace rows are rectangular");
        }
        ds
    }
}

/// A standard-normal draw (Box–Muller; unclamped, unlike
/// [`crate::dist::Dist::Normal`] which truncates at zero for delays).
fn symmetric_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: f64, elapsed: Vec<f64>, d: f64) -> TraceRow {
        TraceRow {
            completed_at: t,
            elapsed,
            response_time: d,
            resources: Vec::new(),
        }
    }

    fn demo() -> Trace {
        let mut t = Trace::new(2);
        t.push(row(1.0, vec![0.1, 0.2], 0.3));
        t.push(row(2.5, vec![0.2, 0.3], 0.5));
        t.push(row(2.9, vec![0.3, 0.1], 0.4));
        t.push(row(7.2, vec![0.5, 0.5], 1.0));
        t
    }

    #[test]
    fn columns_extract() {
        let t = demo();
        assert_eq!(t.len(), 4);
        assert_eq!(t.response_times(), vec![0.3, 0.5, 0.4, 1.0]);
        assert_eq!(t.elapsed_of(1), vec![0.2, 0.3, 0.1, 0.5]);
    }

    #[test]
    fn sample_every_keeps_last_of_each_interval() {
        let t = demo();
        // Intervals of 2s: [0,2) → t=1.0; [2,4) → t=2.9 (last); [6,8) → 7.2.
        let s = t.sample_every(2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.rows()[0].completed_at, 1.0);
        assert_eq!(s.rows()[1].completed_at, 2.9);
        assert_eq!(s.rows()[2].completed_at, 7.2);
    }

    #[test]
    fn to_dataset_layout() {
        let t = demo();
        let ds = t.to_dataset(None);
        assert_eq!(ds.names(), &["X1", "X2", "D"]);
        assert_eq!(ds.rows(), 4);
        assert_eq!(ds.get(1, 2), 0.5);
        assert_eq!(ds.get(3, 0), 0.5);

        let named = t.to_dataset(Some(&["a".to_string(), "b".to_string()]));
        assert_eq!(named.names(), &["a", "b", "D"]);
    }

    #[test]
    fn timeout_counts_aggregate_per_interval() {
        // Deadlines 0.25 per service; rows at t=1.0, 2.5, 2.9 land in
        // intervals [0,2) and [2,4), t=7.2 in [6,8).
        let t = demo();
        let counts = t.timeout_counts(&[0.25, 0.25], 2.0);
        assert_eq!(counts.names(), &["T1", "T2", "D"]);
        assert_eq!(counts.rows(), 3);
        // Interval 1: row (0.1, 0.2) → no timeouts.
        assert_eq!(counts.row(0), &[0.0, 0.0, 0.0]);
        // Interval 2: rows (0.2,0.3) and (0.3,0.1): X1 over once (0.3),
        // X2 over once (0.3).
        assert_eq!(counts.row(1), &[1.0, 1.0, 2.0]);
        // Interval 3: (0.5, 0.5): both over.
        assert_eq!(counts.row(2), &[1.0, 1.0, 2.0]);
        // The count metric satisfies its own reduction: D = Σ Tᵢ.
        for r in 0..counts.rows() {
            let row = counts.row(r);
            assert_eq!(row[2], row[0] + row[1]);
        }
    }

    #[test]
    fn noisy_dataset_stays_close_and_nonnegative() {
        use rand::SeedableRng;
        let t = demo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let noisy = t.to_noisy_dataset(None, 0.05, &mut rng);
        let clean = t.to_dataset(None);
        assert_eq!(noisy.rows(), clean.rows());
        for r in 0..clean.rows() {
            for c in 0..clean.columns() {
                let v = clean.get(r, c);
                let w = noisy.get(r, c);
                assert!(w >= 0.0);
                assert!((w - v).abs() <= 0.3 * v.abs() + 1e-12, "{w} vs {v}");
            }
        }
        // Zero noise reproduces the clean dataset exactly.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
        let same = t.to_noisy_dataset(None, 0.0, &mut rng2);
        for r in 0..clean.rows() {
            assert_eq!(same.row(r), clean.row(r));
        }
    }

    #[test]
    fn windows_partition_the_trace() {
        let t = demo();
        let ws = t.windows(3);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].len(), 3);
        assert_eq!(ws[1].len(), 1);
        assert_eq!(ws[1].rows()[0].completed_at, 7.2);
        // Exact division leaves no ragged tail.
        assert_eq!(t.windows(2).len(), 2);
        assert!(Trace::new(2).windows(5).is_empty());
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new(3);
        assert!(t.is_empty());
        assert_eq!(t.sample_every(1.0).len(), 0);
        assert_eq!(t.to_dataset(None).rows(), 0);
    }
}
