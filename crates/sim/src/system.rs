//! The simulated service-oriented environment.
//!
//! Ties together the event queue, the stations, and the per-request
//! workflow executor: requests arrive under an open workload, traverse the
//! workflow acquiring queueing + processing delays at each station, and on
//! completion deposit a monitoring record — per-service elapsed times and
//! the end-to-end response time — into the [`Trace`].

use std::collections::HashMap;

use rand::Rng;

use kert_workflow::Workflow;

use crate::dist::Dist;
use crate::engine::{EventQueue, SimTime};
use crate::request::{RequestExec, WorkflowPlan};
use crate::resources::{HostLayout, UtilizationAccumulator};
use crate::service::{ServiceConfig, Station};
use crate::trace::{Trace, TraceRow};
use crate::{Result, SimError};

/// Options governing a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Inter-arrival distribution of the open workload (e.g. exponential
    /// mean `1/λ` for Poisson arrivals).
    pub inter_arrival: Dist,
    /// Completed requests to discard before recording (queue warm-up).
    pub warmup: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            inter_arrival: Dist::Exponential { mean: 1.0 },
            warmup: 100,
        }
    }
}

/// Event payloads of the service-system simulation.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// A new user request enters the system.
    Arrival,
    /// A task execution finishes at its station.
    TaskDone {
        req: u64,
        node: usize,
        /// When the job arrived at the station (queue entry).
        station_arrived: SimTime,
        /// Time spent queued before service started.
        wait: SimTime,
    },
}

/// In-flight bookkeeping for one request.
#[derive(Debug)]
struct InFlight {
    exec: RequestExec,
    arrived: SimTime,
    /// Accumulated elapsed time per service (loops accumulate; untouched
    /// services stay at zero — the convention the choice-reduction relies
    /// on).
    elapsed: Vec<f64>,
    /// Host-utilization snapshots taken when this request's tasks start.
    util: UtilizationAccumulator,
}

/// A runnable simulated environment.
#[derive(Debug)]
pub struct SimSystem {
    plan: WorkflowPlan,
    n_services: usize,
    stations: Vec<Station>,
    options: SimOptions,
    /// Shared-resource layout (may be empty).
    layout: HostLayout,
    /// Service → host index, derived from the layout.
    host_of: Vec<Option<usize>>,
    /// Services per host, for utilization normalization.
    host_sizes: Vec<usize>,
    /// Currently executing tasks per host.
    host_busy: Vec<usize>,
}

impl SimSystem {
    /// Build a system: one station per service, in service-id order.
    pub fn new(
        workflow: &Workflow,
        stations: Vec<ServiceConfig>,
        options: SimOptions,
    ) -> Result<Self> {
        Self::with_hosts(workflow, stations, HostLayout::none(), options)
    }

    /// Build a system with a shared-resource layout: hosts' utilizations
    /// are observed per request and become extra trace columns (§3.2's
    /// resource-sharing knowledge source).
    pub fn with_hosts(
        workflow: &Workflow,
        stations: Vec<ServiceConfig>,
        layout: HostLayout,
        options: SimOptions,
    ) -> Result<Self> {
        let n_services = stations.len();
        workflow
            .validate(n_services)
            .map_err(|e| SimError::BadConfig(e.to_string()))?;
        options
            .inter_arrival
            .validate()
            .map_err(|e| SimError::BadConfig(e.to_string()))?;
        for cfg in &stations {
            cfg.validate()?;
        }
        let host_of = layout.host_of(n_services);
        let host_sizes = layout.sizes();
        let host_busy = vec![0; layout.len()];
        Ok(SimSystem {
            plan: WorkflowPlan::compile(workflow),
            n_services,
            stations: stations.into_iter().map(Station::new).collect(),
            options,
            layout,
            host_of,
            host_sizes,
            host_busy,
        })
    }

    /// The shared-resource layout.
    pub fn layout(&self) -> &HostLayout {
        &self.layout
    }

    /// Number of services.
    pub fn n_services(&self) -> usize {
        self.n_services
    }

    /// Replace a service's processing-time distribution (models a resource
    /// action, e.g. pAccel's "reduce X₄ to 90%").
    pub fn set_service_time(&mut self, service: usize, dist: Dist) -> Result<()> {
        dist.validate()?;
        self.stations
            .get_mut(service)
            .ok_or_else(|| SimError::BadConfig(format!("no service {service}")))?
            .set_service_time(dist);
        Ok(())
    }

    /// Mean station elapsed time observed so far (wait + service), per
    /// service — a utilization diagnostic.
    pub fn mean_station_elapsed(&self) -> Vec<f64> {
        self.stations.iter().map(Station::mean_elapsed).collect()
    }

    /// Run until `n_requests` requests have *completed after warm-up*,
    /// returning their monitoring trace.
    pub fn run<R: Rng + ?Sized>(&mut self, n_requests: usize, rng: &mut R) -> Trace {
        // Every run starts from an idle system: jobs left over from a
        // previous run's event queue no longer exist, so their station
        // state must not linger (it would deadlock the new run behind
        // phantom busy servers).
        for st in &mut self.stations {
            st.reset_runtime();
        }
        self.host_busy.iter_mut().for_each(|b| *b = 0);
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut inflight: HashMap<u64, InFlight> = HashMap::new();
        let mut trace = Trace::with_resources(self.n_services, self.layout.names());
        let mut next_req: u64 = 0;
        let mut completed_after_warmup = 0usize;
        let mut completed_total = 0usize;

        queue.schedule(self.options.inter_arrival.sample(rng), Event::Arrival);

        while completed_after_warmup < n_requests {
            let (now, event) = queue
                .pop()
                .expect("arrival self-scheduling keeps the queue non-empty");
            match event {
                Event::Arrival => {
                    // Admit the request and schedule the next arrival.
                    let req = next_req;
                    next_req += 1;
                    let mut state = InFlight {
                        exec: RequestExec::new(&self.plan),
                        arrived: now,
                        elapsed: vec![0.0; self.n_services],
                        util: UtilizationAccumulator::new(self.layout.len()),
                    };
                    let step = state.exec.start(&self.plan, rng);
                    debug_assert!(!step.finished, "workflows have at least one task");
                    inflight.insert(req, state);
                    for (node, _svc) in step.activations {
                        self.dispatch(req, node, now, &mut queue, &mut inflight, rng);
                    }
                    queue.schedule_in(self.options.inter_arrival.sample(rng), Event::Arrival);
                }
                Event::TaskDone {
                    req,
                    node,
                    station_arrived,
                    wait,
                } => {
                    let svc = self.plan.service_of(node);
                    // The finishing task releases its host slot.
                    if let Some(h) = self.host_of[svc] {
                        self.host_busy[h] -= 1;
                    }
                    // Free the server; maybe promote a queued job.
                    if let Some((token, q_wait)) =
                        self.stations[svc].complete(now, station_arrived, wait)
                    {
                        let (q_req, q_node) = decode(token);
                        // The promoted job starts executing right now.
                        self.observe_task_start(q_req, svc, &mut inflight);
                        let st = self.stations[svc].config().service_time.sample(rng);
                        queue.schedule_in(
                            st,
                            Event::TaskDone {
                                req: q_req,
                                node: q_node,
                                station_arrived: now - q_wait,
                                wait: q_wait,
                            },
                        );
                    }
                    let state = inflight
                        .get_mut(&req)
                        .expect("completions only fire for in-flight requests");
                    state.elapsed[svc] += now - station_arrived;
                    let step = state.exec.complete_task(&self.plan, node, rng);
                    for (next_node, _svc) in step.activations {
                        self.dispatch(req, next_node, now, &mut queue, &mut inflight, rng);
                    }
                    if step.finished {
                        let state = inflight.remove(&req).expect("still present");
                        completed_total += 1;
                        if completed_total > self.options.warmup {
                            completed_after_warmup += 1;
                            trace.push(TraceRow {
                                completed_at: now,
                                response_time: now - state.arrived,
                                elapsed: state.elapsed,
                                resources: state.util.means(),
                            });
                        }
                    }
                }
            }
        }
        trace
    }

    /// Send a task to its station; schedule completion if it starts now.
    fn dispatch<R: Rng + ?Sized>(
        &mut self,
        req: u64,
        node: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
        inflight: &mut HashMap<u64, InFlight>,
        rng: &mut R,
    ) {
        let svc = self.plan.service_of(node);
        let token = encode(req, node);
        if self.stations[svc].arrive(token, now).is_some() {
            self.observe_task_start(req, svc, inflight);
            let st = self.stations[svc].config().service_time.sample(rng);
            queue.schedule_in(
                st,
                Event::TaskDone {
                    req,
                    node,
                    station_arrived: now,
                    wait: 0.0,
                },
            );
        }
        // Otherwise the job sits in the FIFO; the station completion path
        // schedules it when a server frees up.
    }

    /// A task of `req` starts executing on `svc`'s station: occupy the host
    /// slot and snapshot the host's utilization into the request's record.
    fn observe_task_start(&mut self, req: u64, svc: usize, inflight: &mut HashMap<u64, InFlight>) {
        let Some(h) = self.host_of[svc] else {
            return;
        };
        self.host_busy[h] += 1;
        let utilization = self.host_busy[h] as f64 / self.host_sizes[h] as f64;
        if let Some(state) = inflight.get_mut(&req) {
            state.util.observe(h, utilization);
        }
    }
}

#[inline]
fn encode(req: u64, node: usize) -> u64 {
    debug_assert!(node < (1 << 20), "plan too large for token encoding");
    (req << 20) | node as u64
}

#[inline]
fn decode(token: u64) -> (u64, usize) {
    (token >> 20, (token & ((1 << 20) - 1)) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_workflow::ediamond_workflow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn light_stations(n: usize, mean: f64) -> Vec<ServiceConfig> {
        (0..n)
            .map(|_| ServiceConfig::single(Dist::Exponential { mean }))
            .collect()
    }

    fn ediamond_system(arrival_mean: f64) -> SimSystem {
        SimSystem::new(
            &ediamond_workflow(),
            light_stations(6, 0.05),
            SimOptions {
                inter_arrival: Dist::Exponential { mean: arrival_mean },
                warmup: 50,
            },
        )
        .unwrap()
    }

    #[test]
    fn response_time_equals_workflow_function_of_elapsed() {
        // With measured elapsed times (wait + service), the realized D must
        // satisfy D = X1 + X2 + max(X3+X5, X4+X6) exactly, queueing or not.
        let mut sys = ediamond_system(0.5);
        let mut rng = StdRng::seed_from_u64(42);
        let trace = sys.run(500, &mut rng);
        let f = kert_workflow::response_time_expr(&ediamond_workflow());
        for row in trace.rows() {
            let predicted = f.eval(&row.elapsed);
            assert!(
                (predicted - row.response_time).abs() < 1e-9,
                "D {} vs f(X) {predicted}",
                row.response_time
            );
        }
    }

    #[test]
    fn all_services_record_positive_elapsed() {
        let mut sys = ediamond_system(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = sys.run(200, &mut rng);
        for row in trace.rows() {
            assert!(row.elapsed.iter().all(|&x| x > 0.0), "{:?}", row.elapsed);
        }
    }

    #[test]
    fn heavier_load_increases_elapsed_times() {
        // Shrinking the inter-arrival mean (more load) must raise queueing
        // delay — the load coupling the BN structure models.
        let mut light = ediamond_system(1.0);
        let mut heavy = ediamond_system(0.07);
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let t_light = light.run(1_000, &mut rng1);
        let t_heavy = heavy.run(1_000, &mut rng2);
        let mean_d_light = kert_linalg::stats::mean(&t_light.response_times());
        let mean_d_heavy = kert_linalg::stats::mean(&t_heavy.response_times());
        assert!(
            mean_d_heavy > mean_d_light * 1.2,
            "heavy {mean_d_heavy} vs light {mean_d_light}"
        );
    }

    #[test]
    fn accelerating_a_service_reduces_response_time() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sys = ediamond_system(0.3);
        let before = sys.run(1_000, &mut rng);
        // Make the remote DB 10x faster.
        sys.set_service_time(5, Dist::Exponential { mean: 0.005 })
            .unwrap();
        let after = sys.run(1_000, &mut rng);
        let d_before = kert_linalg::stats::mean(&before.response_times());
        let d_after = kert_linalg::stats::mean(&after.response_times());
        assert!(d_after < d_before, "{d_after} !< {d_before}");
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let mut a = ediamond_system(0.4);
        let mut b = ediamond_system(0.4);
        let ta = a.run(100, &mut StdRng::seed_from_u64(9));
        let tb = b.run(100, &mut StdRng::seed_from_u64(9));
        assert_eq!(ta.rows().len(), tb.rows().len());
        for (ra, rb) in ta.rows().iter().zip(tb.rows().iter()) {
            assert_eq!(ra.response_time, rb.response_time);
            assert_eq!(ra.elapsed, rb.elapsed);
        }
    }

    #[test]
    fn choice_workflow_leaves_untaken_branch_at_zero() {
        let wf = Workflow::Seq(vec![
            Workflow::Task(0),
            Workflow::Choice(vec![(0.5, Workflow::Task(1)), (0.5, Workflow::Task(2))]),
        ]);
        let mut sys = SimSystem::new(
            &wf,
            light_stations(3, 0.05),
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 10,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let trace = sys.run(300, &mut rng);
        let mut took_1 = 0;
        let mut took_2 = 0;
        for row in trace.rows() {
            let b1 = row.elapsed[1] > 0.0;
            let b2 = row.elapsed[2] > 0.0;
            assert!(b1 ^ b2, "exactly one branch should run: {:?}", row.elapsed);
            if b1 {
                took_1 += 1;
            } else {
                took_2 += 1;
            }
        }
        assert!(took_1 > 50 && took_2 > 50, "{took_1} vs {took_2}");
    }

    #[test]
    fn host_utilization_is_recorded_and_bounded() {
        use crate::resources::HostLayout;
        let wf = ediamond_workflow();
        let layout = HostLayout::new(
            vec![
                ("local_host".into(), vec![2, 4]),
                ("remote_host".into(), vec![3, 5]),
            ],
            6,
        )
        .unwrap();
        let mut sys = SimSystem::with_hosts(
            &wf,
            light_stations(6, 0.05),
            layout,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.2 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let trace = sys.run(400, &mut rng);
        assert_eq!(trace.resource_names(), &["local_host", "remote_host"]);
        for row in trace.rows() {
            assert_eq!(row.resources.len(), 2);
            for &u in &row.resources {
                assert!((0.0..=1.0).contains(&u), "utilization {u}");
            }
            // Every eDiaMoND request visits both hosts.
            assert!(row.resources.iter().all(|&u| u > 0.0));
        }
        // Dataset layout: X1..X6, two resource columns, D.
        let ds = trace.to_dataset(None);
        assert_eq!(ds.columns(), 9);
        assert_eq!(ds.names()[6], "local_host");
        assert_eq!(ds.names()[8], "D");
    }

    #[test]
    fn heavier_load_raises_host_utilization() {
        use crate::resources::HostLayout;
        let wf = ediamond_workflow();
        let layout = HostLayout::new(vec![("host".into(), vec![2, 3, 4, 5])], 6).unwrap();
        let run_mean = |arrival: f64, seed: u64| {
            let mut sys = SimSystem::with_hosts(
                &wf,
                light_stations(6, 0.05),
                HostLayout::new(vec![("host".into(), vec![2, 3, 4, 5])], 6).unwrap(),
                SimOptions {
                    inter_arrival: Dist::Exponential { mean: arrival },
                    warmup: 50,
                },
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let t = sys.run(400, &mut rng);
            let col: Vec<f64> = t.rows().iter().map(|r| r.resources[0]).collect();
            kert_linalg::stats::mean(&col)
        };
        let _ = layout;
        let light = run_mean(0.6, 5);
        let heavy = run_mean(0.08, 5);
        assert!(heavy > light, "heavy {heavy} !> light {light}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let wf = ediamond_workflow();
        // Too few stations for the workflow.
        assert!(SimSystem::new(&wf, light_stations(3, 0.1), SimOptions::default()).is_err());
        // Bad arrival distribution.
        assert!(SimSystem::new(
            &wf,
            light_stations(6, 0.1),
            SimOptions {
                inter_arrival: Dist::Exponential { mean: -1.0 },
                warmup: 0,
            }
        )
        .is_err());
        let mut ok = SimSystem::new(&wf, light_stations(6, 0.1), SimOptions::default()).unwrap();
        assert!(ok
            .set_service_time(99, Dist::Exponential { mean: 1.0 })
            .is_err());
    }
}
