//! Monitoring infrastructure: agents, batching, reporting.
//!
//! Figure 1 of the paper: each machine hosts a *monitoring agent* that
//! listens to its service's monitoring points, batches measurements, and
//! reports them to the management server. For decentralized learning
//! (§3.4), the agent of service `i` additionally receives the elapsed-time
//! measurements of its KERT-BN parents `Φ(Xᵢ)` — the data locality that
//! makes per-node CPD learning a purely local computation.
//!
//! This module models that data plane: it slices a system [`Trace`] into
//! per-agent datasets (own column + parent columns, request-aligned) and a
//! management-server view, and accounts for the bytes each agent would have
//! shipped (the "will not flood the network" consideration of §3.4).

use kert_bayes::Dataset;
use kert_workflow::ServiceId;
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

// Data-plane telemetry: reports sliced, rows and parent-shipped values in
// them. The values counter is the §3.4 network-cost argument as a live
// metric rather than a one-off calculation.
static OBS_REPORTS: kert_obs::Counter = kert_obs::Counter::new("sim.monitor.reports");
static OBS_REPORT_ROWS: kert_obs::Counter = kert_obs::Counter::new("sim.monitor.report_rows");
static OBS_VALUES_SHIPPED: kert_obs::Counter = kert_obs::Counter::new("sim.monitor.values_shipped");

/// What one agent reports per construction interval: its local dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentReport {
    /// The service this agent monitors.
    pub service: ServiceId,
    /// Columns: parents (ascending) then own service; rows are
    /// request-aligned across all agents.
    pub data: Dataset,
    /// Request identity of each row (globally monotone). Reports of
    /// different agents covering the same window carry the same ids, so a
    /// server receiving partial reports can realign them by intersection
    /// instead of trusting positional alignment.
    #[serde(default)]
    pub row_ids: Vec<u64>,
    /// Number of `f64` measurements received from parent agents (network
    /// cost accounting; own measurements are local and free).
    pub values_received: usize,
}

/// A monitoring agent for one service.
///
/// Stateless between windows in this model (batching is byte accounting,
/// not an event simulation): construction captures the topology, and
/// [`MonitoringAgent::report`] slices a trace window into the local view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoringAgent {
    service: ServiceId,
    /// KERT-BN parents of this service, ascending.
    parents: Vec<ServiceId>,
}

impl MonitoringAgent {
    /// Create an agent for `service` with the given BN parents.
    pub fn new(service: ServiceId, mut parents: Vec<ServiceId>) -> Self {
        parents.sort_unstable();
        parents.dedup();
        parents.retain(|&p| p != service);
        MonitoringAgent { service, parents }
    }

    /// The monitored service.
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// Parent services whose data this agent receives.
    pub fn parents(&self) -> &[ServiceId] {
        &self.parents
    }

    /// Build this agent's local dataset from a trace window.
    ///
    /// Columns are `[parents…, own]` in network-node terms; callers that
    /// need network-global column indices use [`MonitoringAgent::columns`].
    /// Row ids start at zero; use [`MonitoringAgent::report_window`] when
    /// the window is a slice of a longer trace.
    pub fn report(&self, window: &Trace) -> AgentReport {
        self.report_window(window, 0)
    }

    /// Like [`MonitoringAgent::report`], but rows are identified globally:
    /// row `r` of the window gets id `first_row_id + r`. All agents slicing
    /// the same window with the same offset produce mutually aligned ids.
    pub fn report_window(&self, window: &Trace, first_row_id: u64) -> AgentReport {
        let cols = self.columns();
        let names: Vec<String> = cols.iter().map(|&c| format!("X{}", c + 1)).collect();
        let mut data = Dataset::new(names);
        for row in window.rows() {
            let values: Vec<f64> = cols.iter().map(|&c| row.elapsed[c]).collect();
            data.push_row(values).expect("fixed width");
        }
        OBS_REPORTS.incr();
        OBS_REPORT_ROWS.add(window.len() as u64);
        OBS_VALUES_SHIPPED.add((self.parents.len() * window.len()) as u64);
        AgentReport {
            service: self.service,
            data,
            row_ids: (0..window.len() as u64).map(|r| first_row_id + r).collect(),
            values_received: self.parents.len() * window.len(),
        }
    }

    /// Column order of [`MonitoringAgent::report`]: parents then own.
    pub fn columns(&self) -> Vec<ServiceId> {
        let mut cols = self.parents.clone();
        cols.push(self.service);
        cols
    }
}

/// Build one agent per service from the upstream-edge list (the same edges
/// that define the KERT-BN structure).
pub fn agents_from_edges(
    n_services: usize,
    edges: &[(ServiceId, ServiceId)],
) -> Vec<MonitoringAgent> {
    (0..n_services)
        .map(|s| {
            let parents = edges
                .iter()
                .filter(|&&(_, to)| to == s)
                .map(|&(from, _)| from)
                .collect();
            MonitoringAgent::new(s, parents)
        })
        .collect()
}

/// Total parent→child values shipped per window across all agents — the
/// decentralized scheme's network cost (the centralized alternative ships
/// *every* measurement to the management server: `n_services × rows`).
pub fn total_network_values(agents: &[MonitoringAgent], window_rows: usize) -> usize {
    agents.iter().map(|a| a.parents().len() * window_rows).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRow;

    fn demo_trace() -> Trace {
        let mut t = Trace::new(3);
        for i in 0..4 {
            t.push(TraceRow {
                completed_at: i as f64,
                elapsed: vec![i as f64, 10.0 + i as f64, 20.0 + i as f64],
                response_time: 30.0,
                resources: Vec::new(),
            });
        }
        t
    }

    #[test]
    fn agent_report_has_parent_then_own_columns() {
        let agent = MonitoringAgent::new(2, vec![0]);
        let report = agent.report(&demo_trace());
        assert_eq!(report.data.names(), &["X1", "X3"]);
        assert_eq!(report.data.rows(), 4);
        assert_eq!(report.data.get(1, 0), 1.0); // parent X1 at row 1
        assert_eq!(report.data.get(1, 1), 21.0); // own X3 at row 1
        assert_eq!(report.row_ids, vec![0, 1, 2, 3]);
        assert_eq!(report.values_received, 4);
    }

    #[test]
    fn windowed_reports_are_globally_aligned() {
        let a = MonitoringAgent::new(0, vec![]);
        let b = MonitoringAgent::new(2, vec![0]);
        let ra = a.report_window(&demo_trace(), 100);
        let rb = b.report_window(&demo_trace(), 100);
        assert_eq!(ra.row_ids, vec![100, 101, 102, 103]);
        assert_eq!(ra.row_ids, rb.row_ids);
    }

    #[test]
    fn rootless_agent_receives_nothing() {
        let agent = MonitoringAgent::new(0, vec![]);
        let report = agent.report(&demo_trace());
        assert_eq!(report.values_received, 0);
        assert_eq!(report.data.columns(), 1);
    }

    #[test]
    fn parents_are_normalized() {
        let agent = MonitoringAgent::new(1, vec![2, 0, 2, 1]);
        assert_eq!(agent.parents(), &[0, 2]);
        assert_eq!(agent.columns(), vec![0, 2, 1]);
    }

    #[test]
    fn agents_from_edges_matches_structure() {
        // Edges 0→1, 0→2, 1→2.
        let agents = agents_from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(agents[0].parents(), &[] as &[usize]);
        assert_eq!(agents[1].parents(), &[0]);
        assert_eq!(agents[2].parents(), &[0, 1]);
    }

    #[test]
    fn network_cost_counts_parent_values_only() {
        let agents = agents_from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        // 0 + 1 + 2 parents, 10 rows each.
        assert_eq!(total_network_values(&agents, 10), 30);
    }
}
