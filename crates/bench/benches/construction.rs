//! Benchmarks behind Figures 3–4: model-construction cost, merged into
//! `BENCH_perf.json`.
//!
//! `construction/kert_*` vs `construction/nrt_*` measure the full build
//! (structure + parameters) of both model families at one training size
//! and two environment sizes — the shape claim (KERT flat, NRT superlinear
//! in services) is asserted by the fig3/fig4 integration tests; these
//! record the absolute medians.

use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{bench, merge_bench_perf};
use kert_core::{ContinuousKertOptions, KertBn, NrtBn, NrtOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::hint::black_box;

fn main() {
    println!("== construction ==");
    let mut entries: Vec<(String, Value)> = Vec::new();

    for &n in &[10usize, 30] {
        let mut env = Environment::random(n, ScenarioOptions::default(), 7);
        let (train, _) = env.datasets(216, 1, 8);

        let kert = bench(&format!("construction/kert_{n}_services"), || {
            KertBn::build_continuous(
                &env.knowledge,
                black_box(&train),
                ContinuousKertOptions::default(),
            )
            .unwrap()
        });
        let nrt = bench(&format!("construction/nrt_{n}_services"), || {
            let mut rng = StdRng::seed_from_u64(9);
            NrtBn::build_continuous(black_box(&train), NrtOptions::default(), &mut rng).unwrap()
        });
        entries.push((format!("kert_{n}_services_ns"), Value::Num(kert.median_ns)));
        entries.push((format!("nrt_{n}_services_ns"), Value::Num(nrt.median_ns)));
        entries.push((
            format!("kert_vs_nrt_{n}_services"),
            Value::Num(nrt.median_ns / kert.median_ns),
        ));
    }

    merge_bench_perf("construction", Value::Map(entries));
}
