//! Criterion benchmarks behind Figures 3–4: model-construction cost.
//!
//! `construction/kert/*` vs `construction/nrt/*` measure the full build
//! (structure + parameters) of both model families over training size
//! (Figure 3's x-axis) and environment size (Figure 4's x-axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::{ContinuousKertOptions, KertBn, NrtBn, NrtOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_training_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_construction_vs_train_size");
    group.sample_size(10);
    for &train_size in &[36usize, 216, 1080] {
        let mut env = Environment::random(30, ScenarioOptions::default(), 1);
        let (train, _) = env.datasets(train_size, 1, 2);
        group.bench_with_input(
            BenchmarkId::new("kert", train_size),
            &train,
            |b, train| {
                b.iter(|| {
                    KertBn::build_continuous(
                        &env.knowledge,
                        black_box(train),
                        ContinuousKertOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("nrt", train_size), &train, |b, train| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                NrtBn::build_continuous(black_box(train), NrtOptions::default(), &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_environment_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_construction_vs_services");
    group.sample_size(10);
    for &n in &[10usize, 30, 60] {
        let mut env = Environment::random(n, ScenarioOptions::default(), 7);
        let (train, _) = env.datasets(36, 1, 8);
        group.bench_with_input(BenchmarkId::new("kert", n), &train, |b, train| {
            b.iter(|| {
                KertBn::build_continuous(
                    &env.knowledge,
                    black_box(train),
                    ContinuousKertOptions::default(),
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("nrt", n), &train, |b, train| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                NrtBn::build_continuous(black_box(train), NrtOptions::default(), &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_size_sweep, bench_environment_size_sweep);
criterion_main!(benches);
