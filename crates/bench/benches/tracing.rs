//! Tracing overhead benchmarks, merged into `BENCH_perf.json` as the
//! `tracing` section.
//!
//! Three measurements:
//!
//! 1. **Daemon throughput, tracing off vs on (the 5% gate)** — the same
//!    seed-scripted mixed load (the drill's request script, so
//!    coalescible bursts are present) fired by 4 concurrent clients at
//!    two otherwise-identical daemons. Both run in `Metrics` mode (the
//!    `kertctl serve` configuration) and both carry wire trace ids, so
//!    the only difference is the tracing layer itself: per-request
//!    `TraceContext`, the five daemon spans, leader capture of engine
//!    spans, and the flight-recorder push. The acceptance gate is ≤5%
//!    wall-clock overhead per request.
//! 2. **Flight-recorder capture** — `FlightRecorder::record` on a
//!    representative complete span tree at a full ring (steady-state:
//!    every push also evicts), plus the recorder-side snapshot cost.
//! 3. **Chrome export** — `chrome_trace_json` + validation over a
//!    48-trace drill batch, the `kertctl trace --chrome` hot path.

use std::time::{Duration, Instant};

use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{bench, format_ns, merge_bench_perf, quick_mode};
use kert_core::serve::SharedKert;
use kert_core::{DiscreteKertOptions, KertBn};
use kert_obs::{FlightRecorder, ObsMode};
use kertd::drill::{run_trace_drill, scripted_requests, DrillConfig};
use kertd::protocol::Request;
use kertd::server::{serve, ServeConfig};
use kertd::Client;
use serde::Value;
use std::hint::black_box;

fn build_model() -> KertBn {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 1);
    KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap()
}

/// Wall-clock for `clients` threads each replaying `script` once per
/// round over one connection, all frames carrying wire trace ids (the
/// traffic is byte-identical whether the daemon traces or not — only
/// the daemon-side work differs).
fn scripted_wall(
    addr: std::net::SocketAddr,
    script: &[Request],
    clients: usize,
    rounds: usize,
) -> Duration {
    std::thread::scope(|s| {
        let conns: Vec<Client> = (0..clients)
            .map(|_| Client::connect_retry(addr, Duration::from_secs(5)).unwrap())
            .collect();
        let started = Instant::now();
        let handles: Vec<_> = conns
            .into_iter()
            .enumerate()
            .map(|(ci, mut client)| {
                s.spawn(move || {
                    let mut tid = (ci as u64) << 32;
                    for _ in 0..rounds {
                        for request in script {
                            tid += 1;
                            let (_, echoed) = client.request_traced(request, tid).unwrap();
                            assert_eq!(echoed, Some(tid), "trace id echo");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        started.elapsed()
    })
}

fn main() {
    println!("== tracing overhead benchmarks ==");
    let model = build_model();
    let script = scripted_requests(&model, 11, 16);
    let engine = SharedKert::new(model).unwrap();

    // --- 1. Daemon throughput, tracing off vs on --------------------------
    // Both daemons run in Metrics mode — `kertctl serve` always turns the
    // registry on — so the delta is the tracing layer, not the metrics
    // probes (those are gated separately in §obs_overhead).
    kert_obs::set_mode(ObsMode::Metrics);
    let clients = 4usize;
    let rounds = if quick_mode() { 2usize } else { 12 };
    let trials = if quick_mode() { 2usize } else { 3 };
    let mut walls = [Duration::ZERO; 2];
    for (slot, trace) in [false, true].into_iter().enumerate() {
        let handle = serve(
            SharedKert::new(build_model()).unwrap(),
            ServeConfig {
                workers: 2,
                trace,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // Best of `trials` runs: scheduler noise only ever slows a trial.
        walls[slot] = (0..trials)
            .map(|_| scripted_wall(handle.addr(), &script, clients, rounds))
            .min()
            .unwrap();
        let mut control = Client::connect(handle.addr()).unwrap();
        control.stop().unwrap();
        handle.wait();
    }
    kert_obs::set_mode(ObsMode::Disabled);
    let [wall_off, wall_on] = walls;
    let total = (clients * rounds * script.len()) as f64;
    let off_ns = wall_off.as_nanos() as f64 / total;
    let on_ns = wall_on.as_nanos() as f64 / total;
    let overhead = on_ns / off_ns - 1.0;
    println!(
        "daemon mixed load ({clients} clients × {} requests): untraced {} / req, \
         traced {} / req — {:+.2}% overhead",
        rounds * script.len(),
        format_ns(off_ns),
        format_ns(on_ns),
        overhead * 100.0,
    );
    // The ≤5% figure is the acceptance gate recorded for the driver; fail
    // loudly here if it regresses. (Quick mode's tiny sample counts are
    // too noisy to gate on.)
    assert!(
        overhead <= 0.05 || quick_mode(),
        "tracing overhead on daemon throughput rose to {:+.2}% (gate: ≤5%)",
        overhead * 100.0
    );

    // --- 2. Flight-recorder capture ---------------------------------------
    // A representative complete tree (root + queue-wait + group +
    // propagate + serialize, labels and links included) from the drill;
    // the ring is pre-filled so every record also evicts — the daemon's
    // steady state once `trace_cap` traces have passed.
    let trees = run_trace_drill(
        &engine,
        &DrillConfig {
            seed: 11,
            requests: 48,
            max_batch: 6,
            workers: 2,
        },
    );
    let sample = trees
        .iter()
        .max_by_key(|t| t.spans.len())
        .expect("drill produced trees")
        .clone();
    let recorder = FlightRecorder::new(256);
    for tree in &trees {
        recorder.record(tree.clone());
    }
    while recorder.len() < recorder.capacity() {
        recorder.record(sample.clone());
    }
    let record = bench("flight_recorder/record_full_ring", || {
        recorder.record(black_box(sample.clone()));
    });
    let snapshot = bench("flight_recorder/snapshot_256", || {
        black_box(recorder.snapshot(0));
    });

    // --- 3. Chrome export --------------------------------------------------
    let export = bench("chrome_export/48_traces", || {
        black_box(kert_obs::chrome_trace_json(black_box(&trees)));
    });
    let json = kert_obs::chrome_trace_json(&trees);
    let stats = kert_obs::check_chrome_trace(&json).expect("drill export validates");
    println!(
        "flight-recorder record {} (snapshot of 256: {}), chrome export of 48 traces {} \
         ({} events)",
        format_ns(record.median_ns),
        format_ns(snapshot.median_ns),
        format_ns(export.median_ns),
        stats.events,
    );

    merge_bench_perf(
        "tracing",
        Value::Map(vec![
            (
                "daemon_mixed_load".into(),
                Value::Map(vec![
                    ("untraced_ns_per_request".into(), Value::Num(off_ns)),
                    ("traced_ns_per_request".into(), Value::Num(on_ns)),
                    ("overhead".into(), Value::Num(overhead)),
                    ("gate".into(), Value::Str("overhead <= 0.05".into())),
                ]),
            ),
            (
                "flight_recorder".into(),
                Value::Map(vec![
                    ("record_full_ring_ns".into(), Value::Num(record.median_ns)),
                    ("snapshot_256_ns".into(), Value::Num(snapshot.median_ns)),
                ]),
            ),
            (
                "chrome_export_48_traces_ns".into(),
                Value::Num(export.median_ns),
            ),
            (
                "note".into(),
                Value::Str(
                    "both daemons run in metrics mode with wire trace ids on every frame; \
                     overhead isolates the tracing layer (context + spans + capture + \
                     flight-recorder push) on a seed-scripted coalescible mixed load"
                        .into(),
                ),
            ),
        ]),
    );
}
