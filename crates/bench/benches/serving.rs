//! Serving-daemon benchmarks, merged into `BENCH_perf.json` as the
//! `serving` section.
//!
//! Four measurements:
//!
//! 1. **Coalesced vs sequential 10-way dComp (the headline gate)** — a
//!    real TCP daemon under a hot-query load: 10 concurrent clients all
//!    asking for the same single-target dComp (the dashboard-fan-out
//!    case). With the coalescing window off, every request pays its own
//!    prior + posterior propagation; with it on, the micro-batcher folds
//!    the 10 into one group, dedups the identical work item, computes it
//!    once and fans the answer out. Responses are bitwise identical
//!    either way (conformance-gated); the acceptance gate is ≥5×.
//! 2. **Shared-evidence fold** — engine-side: 10 *distinct* targets
//!    sharing one evidence set, answered one-by-one vs as one group
//!    (evidence propagated once). Smaller win: on KERT models the D
//!    clique spans every service, so a marginal read costs a comparable
//!    table sweep to a propagation.
//! 3. **End-to-end daemon throughput** — 8 client threads firing mixed
//!    posterior queries; requests/second plus client-observed p50/p99.
//! 4. **Wire overhead** — one in-process engine call vs the same query
//!    through connect/frame/serve/parse.

use std::time::{Duration, Instant};

use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{bench, format_ns, merge_bench_perf, quick_mode};
use kert_core::serve::SharedKert;
use kert_core::{DiscreteKertOptions, KertBn, Posterior};
use kertd::protocol::{Request, Response, WireDcomp};
use kertd::server::{serve, ServeConfig};
use kertd::Client;
use serde::Value;
use std::hint::black_box;

fn build_model() -> KertBn {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 1);
    KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap()
}

fn dbits(p: &Posterior) -> Vec<u64> {
    match p {
        Posterior::Discrete { probs, .. } => probs.iter().map(|v| v.to_bits()).collect(),
        other => panic!("expected discrete posterior, got {other:?}"),
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64
}

/// Wall-clock for `clients` threads each sending `request` to `addr`
/// `rounds` times over one connection. A barrier re-synchronizes the
/// threads before every round so each round really is a `clients`-way
/// concurrent burst (the load the gate is defined over), not a drifted
/// trickle.
fn hot_query_wall(
    addr: std::net::SocketAddr,
    request: &Request,
    clients: usize,
    rounds: usize,
) -> Duration {
    let barrier = std::sync::Barrier::new(clients);
    std::thread::scope(|s| {
        let conns: Vec<Client> = (0..clients)
            .map(|_| Client::connect_retry(addr, Duration::from_secs(5)).unwrap())
            .collect();
        let started = Instant::now();
        let handles: Vec<_> = conns
            .into_iter()
            .map(|mut client| {
                let request = request.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    for _ in 0..rounds {
                        barrier.wait();
                        let resp = client.request(&request).unwrap();
                        assert!(
                            matches!(resp, Response::Dcomp { .. }),
                            "hot-query load got {resp:?}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        started.elapsed()
    })
}

fn main() {
    println!("== kertd serving benchmarks ==");
    let shared = SharedKert::new(build_model()).unwrap();
    let evidence = vec![(0usize, 0.05), (1, 0.06)];

    // --- 1. Hot-query coalescing gate: 10-way concurrent dComp -----------
    // The load: 10 concurrent clients all asking for the same dComp (the
    // natural one — decompose D over every unobserved service, what a
    // dashboard or autonomic controller asks after each control period).
    //
    // The *simulated* speedup follows the repo's Σ/max convention (see
    // `parallel_jt` in BENCH_perf.json): compute-only, host-independent.
    // It times the worker's two actual code paths — uncoalesced, each of
    // the 10 requests pays its own full dComp; coalesced, the batch
    // dedups the identical work item, computes it once, and fans the
    // serialized answer out to all 10 — without the scheduler/socket
    // wakeup noise of the TCP path, which is reported separately below
    // as the end-to-end wall-clock number.
    let clients = 10usize;
    let hot_targets: Vec<usize> = vec![2, 3, 4, 5];
    let hot_request = Request::Dcomp {
        observed: evidence.clone(),
        targets: hot_targets.clone(),
    };

    let per_request = bench("hot_dcomp_10way/uncoalesced_per_request", || {
        let mut session = shared.session();
        black_box(session.dcomp(black_box(&evidence), &hot_targets).unwrap());
    });
    let batch_of_10 = bench("hot_dcomp_10way/coalesced_batch", || {
        // What answer_group does for 10 identical folded requests:
        // dedup leaves one work item, computed once...
        let mut session = shared.session();
        let outcomes = session.dcomp(black_box(&evidence), &hot_targets).unwrap();
        // ...then the answer is converted and fanned out per requester.
        let wires: Vec<WireDcomp> = outcomes
            .iter()
            .map(|o| WireDcomp::from_outcome(o).unwrap())
            .collect();
        let responses: Vec<Response> = (0..clients)
            .map(|_| Response::Dcomp {
                outcomes: wires.clone(),
            })
            .collect();
        black_box(responses);
    });
    let simulated_speedup = clients as f64 * per_request.median_ns / batch_of_10.median_ns;
    println!("hot-query 10-way dComp simulated speedup: {simulated_speedup:.2}×");
    // The ≥5× figure is the acceptance gate recorded for the driver; fail
    // loudly here if it regresses. (Quick mode's tiny sample counts are
    // too noisy to gate on.)
    assert!(
        simulated_speedup >= 5.0 || quick_mode(),
        "10-way coalesced dComp simulated speedup fell to {simulated_speedup:.2}× (gate: ≥5×)"
    );

    // The same load end-to-end over TCP, single worker both times so the
    // comparison isolates coalescing from thread-level parallelism.
    let rounds = if quick_mode() { 10usize } else { 60 };
    let trials = if quick_mode() { 2usize } else { 3 };
    let mut walls = [Duration::ZERO; 2];
    for (slot, window) in [Duration::ZERO, Duration::from_millis(10)]
        .into_iter()
        .enumerate()
    {
        let handle = serve(
            SharedKert::new(build_model()).unwrap(),
            ServeConfig {
                workers: 1,
                coalesce_window: window,
                max_batch: clients,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // Best of `trials` runs: one-sided scheduler noise only ever
        // slows a trial down.
        walls[slot] = (0..trials)
            .map(|_| hot_query_wall(handle.addr(), &hot_request, clients, rounds))
            .min()
            .unwrap();
        let mut control = Client::connect(handle.addr()).unwrap();
        control.stop().unwrap();
        handle.wait();
    }
    let [wall_seq, wall_coal] = walls;
    let total = (clients * rounds) as f64;
    let wall_speedup = wall_seq.as_secs_f64() / wall_coal.as_secs_f64();
    println!(
        "hot-query dcomp over TCP ({clients} clients × {rounds} rounds): \
         uncoalesced {} / req, coalesced {} / req — {wall_speedup:.2}× wall speedup",
        format_ns(wall_seq.as_nanos() as f64 / total),
        format_ns(wall_coal.as_nanos() as f64 / total),
    );

    // --- 2. Shared-evidence fold: 10 distinct targets, engine-side -------
    let targets: Vec<usize> = (0..10).map(|i| 2 + (i % 5)).collect();
    {
        // Bitwise sanity before timing: folding must be invisible.
        let mut session = shared.session();
        let grouped = session.dcomp(&evidence, &targets).unwrap();
        for (i, &t) in targets.iter().enumerate() {
            let single = session.dcomp(&evidence, &[t]).unwrap();
            assert_eq!(dbits(&single[0].posterior), dbits(&grouped[i].posterior));
            assert_eq!(dbits(&single[0].prior), dbits(&grouped[i].prior));
        }
    }
    let sequential = bench("dcomp_10way/sequential", || {
        let mut session = shared.session();
        for &t in &targets {
            black_box(session.dcomp(black_box(&evidence), &[t]).unwrap());
        }
    });
    let grouped = bench("dcomp_10way/grouped", || {
        let mut session = shared.session();
        black_box(
            session
                .dcomp(black_box(&evidence), black_box(&targets))
                .unwrap(),
        );
    });
    let fold_speedup = sequential.median_ns / grouped.median_ns;
    println!("shared-evidence fold speedup: {fold_speedup:.2}×");

    // --- 3. End-to-end daemon throughput over TCP -------------------------
    let handle = serve(
        SharedKert::new(build_model()).unwrap(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let tput_clients = 8usize;
    let per_client = if quick_mode() { 25usize } else { 250 };
    let request = Request::Posterior {
        evidence: evidence.clone(),
        target: 6,
    };
    let started = Instant::now();
    let mut latencies_ns: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tput_clients)
            .map(|_| {
                let request = request.clone();
                s.spawn(move || {
                    let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                    (0..per_client)
                        .map(|_| {
                            let t0 = Instant::now();
                            let resp = client.request(&request).unwrap();
                            assert!(matches!(resp, Response::Posterior(_)));
                            t0.elapsed().as_nanos() as u64
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = started.elapsed();
    let total_requests = tput_clients * per_client;
    let throughput_rps = total_requests as f64 / wall.as_secs_f64();
    latencies_ns.sort_unstable();
    let p50 = percentile(&latencies_ns, 0.50);
    let p99 = percentile(&latencies_ns, 0.99);
    println!(
        "daemon throughput: {throughput_rps:.0} req/s over {tput_clients} clients \
         (p50 {}, p99 {})",
        format_ns(p50),
        format_ns(p99)
    );

    let mut control = Client::connect(addr).unwrap();
    let status = match control.status().unwrap() {
        Response::Status(s) => s,
        other => panic!("expected Status, got {other:?}"),
    };
    assert_eq!(status.served_posterior as usize, total_requests);
    control.stop().unwrap();
    handle.wait();

    // --- 4. Wire overhead: in-process call vs the same query over TCP ----
    let direct = bench("posterior/in_process", || {
        let mut session = shared.session();
        black_box(session.posterior_group(black_box(&evidence), &[6]).unwrap());
    });
    let handle = serve(
        SharedKert::new(build_model()).unwrap(),
        ServeConfig {
            workers: 1,
            coalesce_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let over_wire = bench("posterior/over_tcp", || {
        black_box(client.request(black_box(&request)).unwrap());
    });
    client.stop().unwrap();
    handle.wait();

    merge_bench_perf(
        "serving",
        Value::Map(vec![
            (
                "hot_query_dcomp_10way".into(),
                Value::Map(vec![
                    ("clients".into(), Value::Num(clients as f64)),
                    (
                        "uncoalesced_per_request_ns".into(),
                        Value::Num(per_request.median_ns),
                    ),
                    (
                        "coalesced_batch_ns".into(),
                        Value::Num(batch_of_10.median_ns),
                    ),
                    ("simulated_speedup".into(), Value::Num(simulated_speedup)),
                    (
                        "wall_uncoalesced_per_req_ns".into(),
                        Value::Num(wall_seq.as_nanos() as f64 / total),
                    ),
                    (
                        "wall_coalesced_per_req_ns".into(),
                        Value::Num(wall_coal.as_nanos() as f64 / total),
                    ),
                    ("wall_speedup".into(), Value::Num(wall_speedup)),
                    (
                        "note".into(),
                        Value::Str(
                            "10 clients concurrently asking the same dComp (every \
                             unobserved service). simulated_speedup is Σ/max per the \
                             parallel_jt convention: 10× the worker's per-request dComp \
                             vs one deduped batch computation + fan-out, compute-only \
                             and host-independent; acceptance gate ≥5×. The wall_* rows \
                             are the same load end-to-end over loopback TCP with one \
                             worker (window off vs 10 ms), where per-round thread and \
                             socket wakeups dilute the win. Bitwise-identical responses \
                             either way (conformance-gated)."
                                .into(),
                        ),
                    ),
                ]),
            ),
            (
                "shared_evidence_fold_10way".into(),
                Value::Map(vec![
                    ("sequential_ns".into(), Value::Num(sequential.median_ns)),
                    ("grouped_ns".into(), Value::Num(grouped.median_ns)),
                    ("speedup".into(), Value::Num(fold_speedup)),
                    (
                        "note".into(),
                        Value::Str(
                            "10 distinct-target dComps sharing one evidence set, engine-side: \
                             one-by-one vs one group (evidence propagated once). The win is \
                             bounded on KERT models because D's clique spans every service, \
                             so a marginal read sweeps a comparable table to a propagation."
                                .into(),
                        ),
                    ),
                ]),
            ),
            (
                "daemon_tcp".into(),
                Value::Map(vec![
                    ("clients".into(), Value::Num(tput_clients as f64)),
                    ("requests".into(), Value::Num(total_requests as f64)),
                    ("workers".into(), Value::Num(4.0)),
                    ("throughput_rps".into(), Value::Num(throughput_rps)),
                    ("latency_p50_ns".into(), Value::Num(p50)),
                    ("latency_p99_ns".into(), Value::Num(p99)),
                ]),
            ),
            (
                "wire_overhead".into(),
                Value::Map(vec![
                    ("in_process_ns".into(), Value::Num(direct.median_ns)),
                    ("over_tcp_ns".into(), Value::Num(over_wire.median_ns)),
                    (
                        "overhead_ns".into(),
                        Value::Num(over_wire.median_ns - direct.median_ns),
                    ),
                ]),
            ),
        ]),
    );
}
