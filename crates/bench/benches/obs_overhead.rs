//! Telemetry overhead: the same hot paths timed with `kert-obs` disabled
//! and enabled, merged into `BENCH_perf.json` as the `obs_overhead`
//! section.
//!
//! Two representative workloads bracket the instrumentation cost:
//!
//! * `jt/calibrated_marginal` — the steady-state inference read, where a
//!   disabled probe must cost one relaxed load + branch (the committed
//!   baseline this run must stay within 2% of);
//! * `learning/decentralized_pool_40` — the per-window rebuild, whose
//!   spans and per-node histogram records sit outside the per-row math.
//!
//! The run finishes by committing a [`TelemetrySnapshot`] of the registry
//! (the metrics-mode benches just exercised every probe) as the
//! `telemetry` section, so the perf artifact carries the counters that
//! explain its numbers.

use kert_agents::health::ModelHealth;
use kert_agents::runtime::{
    decentralized_learn, publish_health_gauges, slice_local_datasets, LearnOptions,
};
use kert_bayes::compile::JunctionTree;
use kert_bayes::infer::ve::Evidence;
use kert_bayes::{Dag, Variable};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{bench, merge_bench_perf, BenchResult};
use kert_core::{DiscreteKertOptions, KertBn};
use kert_obs::ObsMode;
use serde::Value;
use std::hint::black_box;

/// `(disabled_ns, enabled_ns, overhead-as-fraction)` JSON object.
fn overhead_entry(disabled: &BenchResult, enabled: &BenchResult) -> Value {
    Value::Map(vec![
        ("disabled_ns".into(), Value::Num(disabled.median_ns)),
        ("enabled_ns".into(), Value::Num(enabled.median_ns)),
        (
            "overhead".into(),
            Value::Num(enabled.median_ns / disabled.median_ns - 1.0),
        ),
    ])
}

fn main() {
    println!("== telemetry overhead ==");

    // Steady-state junction-tree marginal on the discrete eDiaMoND model,
    // identical to the committed `jt_calibrated_marginal_ns` workload.
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 1);
    let model =
        KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap();
    let bn = model.network();
    let d_node = model.d_node();
    let mut evidence = Evidence::new();
    evidence.insert(0, 2);
    evidence.insert(1, 2);
    evidence.insert(d_node, 4);
    let tree = JunctionTree::compile(bn).unwrap();
    let mut state = tree.new_state();
    for (&node, &s) in evidence.iter() {
        tree.set_evidence(&mut state, node, s).unwrap();
    }
    tree.marginal(&mut state, 3).unwrap(); // calibrate once

    // Decentralized rebuild at 40 services, identical to the committed
    // `decentralized_learn_ns` workload.
    let mut learn_env = Environment::random(40, ScenarioOptions::default(), 21);
    let (learn_train, _) = learn_env.datasets(1080, 1, 21 ^ 1);
    let service_data = learn_train.project(&(0..40).collect::<Vec<_>>()).unwrap();
    let mut dag = Dag::new(40);
    for &(a, b) in &learn_env.knowledge.upstream_edges {
        dag.add_edge(a, b).unwrap();
    }
    let variables: Vec<Variable> = (0..40)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let locals = slice_local_datasets(&dag, &service_data).unwrap();

    kert_obs::set_mode(ObsMode::Disabled);
    let jt_disabled = bench("jt_marginal/obs_disabled", || {
        tree.marginal(black_box(&mut state), 3).unwrap()
    });
    let learn_disabled = bench("decentralized_learn/obs_disabled", || {
        decentralized_learn(
            black_box(&variables),
            black_box(&locals),
            LearnOptions::default(),
        )
        .unwrap()
    });

    kert_obs::set_mode(ObsMode::Metrics);
    kert_obs::reset();
    let jt_enabled = bench("jt_marginal/obs_metrics", || {
        tree.marginal(black_box(&mut state), 3).unwrap()
    });
    let learn_enabled = bench("decentralized_learn/obs_metrics", || {
        decentralized_learn(
            black_box(&variables),
            black_box(&locals),
            LearnOptions::default(),
        )
        .unwrap()
    });
    // The metrics-mode learn just rebuilt all 40 CPDs from fresh fits, but
    // gauges are only published by the resilient rebuild path — surface the
    // equivalent all-fresh report here so the committed snapshot carries the
    // ModelHealth gauges, not an empty array.
    let health = ModelHealth::all_fresh(variables.len(), locals[0].data.rows());
    publish_health_gauges(&health);
    let snap = kert_obs::snapshot();
    kert_obs::set_mode(ObsMode::Disabled);

    println!(
        "jt marginal overhead: {:+.2}%, decentralized learn overhead: {:+.2}%",
        (jt_enabled.median_ns / jt_disabled.median_ns - 1.0) * 100.0,
        (learn_enabled.median_ns / learn_disabled.median_ns - 1.0) * 100.0,
    );

    merge_bench_perf(
        "obs_overhead",
        Value::Map(vec![
            (
                "jt_calibrated_marginal".into(),
                overhead_entry(&jt_disabled, &jt_enabled),
            ),
            (
                "decentralized_learn".into(),
                overhead_entry(&learn_disabled, &learn_enabled),
            ),
            (
                "note".into(),
                Value::Str(
                    "overhead = enabled/disabled - 1 on the same workload; the disabled \
                     numbers are the ones comparable to the inference/learning sections"
                        .into(),
                ),
            ),
        ]),
    );

    // Commit the registry the metrics-mode benches populated: every probe
    // on these two paths fired thousands of times, so the snapshot is a
    // census of the instrumentation, not noise.
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let value = serde_json::value_from_str(&json).expect("snapshot JSON parses");
    merge_bench_perf("telemetry", value);
}
