//! Streaming-learning benchmarks, merged into `BENCH_perf.json` as the
//! `streaming` section.
//!
//! The claim under test: a sliding-window refresh through the
//! [`kert_core::StreamingWindow`] sufficient statistics costs `O(delta)` —
//! proportional to the rows entering/leaving — while the conventional
//! path pays a full batch relearn over the whole window every `T_CON`.
//! Measured here:
//!
//! * `update_d{1,4,16}_w1000` — one refresh cycle (insert `d` rows, evict
//!   `d` rows by capacity, refit all CPDs from the statistics) against a
//!   10³-row window;
//! * `update_d4_w4000` — the same delta against a 4× larger window: the
//!   per-update cost must track the delta, not the window;
//! * `batch_relearn_w1000` — the conventional path: `fit_all_parameters`
//!   over the full 10³-row window.
//!
//! Acceptance gate (asserted in full mode): the delta-16 refresh is ≥10×
//! cheaper than the batch relearn at a 10³-row window.

use kert_bayes::learn::mle::{fit_all_parameters, ParamOptions};
use kert_bayes::{Dag, Dataset};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{bench, merge_bench_perf, quick_mode};
use kert_core::{ContinuousKertOptions, KertBn, StreamingWindow};
use serde::Value;
use std::hint::black_box;

/// eDiaMoND continuous model plus a row pool large enough to slide any
/// window size used below.
fn setup(pool_rows: usize) -> (KertBn, Dataset) {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(pool_rows, 1, 17);
    let model = KertBn::build_continuous(&env.knowledge, &train, ContinuousKertOptions::default())
        .expect("eDiaMoND builds cleanly");
    (model, train)
}

/// One refresh cycle at delta `d`: stream `d` fresh rows through a full
/// window (capacity eviction pays the matching `d` downdates) and refit
/// every learned CPD from the maintained statistics.
fn bench_update(
    name: &str,
    model: &KertBn,
    pool: &Dataset,
    capacity: usize,
    delta: usize,
) -> kert_bench::timing::BenchResult {
    let mut window =
        StreamingWindow::new(model, capacity, ParamOptions::default()).expect("window");
    let mut cursor = 0usize;
    for _ in 0..capacity {
        window.push_row(pool.row(cursor % pool.rows())).unwrap();
        cursor += 1;
    }
    bench(name, move || {
        for _ in 0..delta {
            window.push_row(pool.row(cursor % pool.rows())).unwrap();
            cursor += 1;
        }
        let outcome = window.refresh_outcome(black_box(model)).unwrap();
        black_box(outcome.updates.len())
    })
}

fn main() {
    println!("== streaming ==");
    let (model, pool) = setup(1200);
    let m = model.d_node();

    let d1 = bench_update("streaming/update_d1_w1000", &model, &pool, 1000, 1);
    let d4 = bench_update("streaming/update_d4_w1000", &model, &pool, 1000, 4);
    let d16 = bench_update("streaming/update_d16_w1000", &model, &pool, 1000, 16);
    // Window-size independence: same delta, 4× the window.
    let d4_w4000 = bench_update("streaming/update_d4_w4000", &model, &pool, 4000, 4);

    // The conventional path this replaces: a full batch relearn of the
    // learned nodes over the 10³-row window.
    let vars = model.network().variables()[..m].to_vec();
    let mut dag = Dag::new(m);
    for (from, to) in model.network().dag().edges() {
        if from < m && to < m {
            dag.add_edge(from, to).unwrap();
        }
    }
    let window_cols: Vec<usize> = (0..m).collect();
    let mut window_rows = Dataset::new(
        window_cols
            .iter()
            .map(|&i| model.network().variables()[i].name.clone())
            .collect(),
    );
    for r in 0..1000 {
        let full = pool.row(r % pool.rows());
        window_rows.push_row(full[..m].to_vec()).unwrap();
    }
    let batch = bench("streaming/batch_relearn_w1000", || {
        fit_all_parameters(
            black_box(&vars),
            black_box(&dag),
            black_box(&window_rows),
            ParamOptions::default(),
        )
        .unwrap()
    });

    let speedup_d16 = batch.median_ns / d16.median_ns;
    let window_independence = d4_w4000.median_ns / d4.median_ns;
    println!("streaming/speedup_batch_over_d16          {speedup_d16:>10.2}x");
    println!("streaming/w4000_over_w1000_at_d4          {window_independence:>10.2}x  (≈1 ⇒ delta-bound)");

    if !quick_mode() {
        // The PR's acceptance gate: O(delta) refresh ≥10× below the batch
        // relearn at a 10³-row window with deltas up to 16 rows.
        assert!(
            speedup_d16 >= 10.0,
            "streaming refresh (d=16) only {speedup_d16:.1}x faster than batch relearn"
        );
    }

    merge_bench_perf(
        "streaming",
        Value::Map(vec![
            ("update_d1_w1000_ns".into(), Value::Num(d1.median_ns)),
            ("update_d4_w1000_ns".into(), Value::Num(d4.median_ns)),
            ("update_d16_w1000_ns".into(), Value::Num(d16.median_ns)),
            ("update_d4_w4000_ns".into(), Value::Num(d4_w4000.median_ns)),
            ("batch_relearn_w1000_ns".into(), Value::Num(batch.median_ns)),
            ("speedup_batch_over_d16".into(), Value::Num(speedup_d16)),
            (
                "w4000_over_w1000_at_d4".into(),
                Value::Num(window_independence),
            ),
            (
                "note".into(),
                Value::Str(
                    "update_dK_wN = insert K rows into a full N-row window (evicting K) and \
                     refit all CPDs from sufficient statistics; batch_relearn = the \
                     conventional full-window fit_all_parameters it replaces. Gate: \
                     speedup_batch_over_d16 ≥ 10 at w=1000; w4000_over_w1000_at_d4 ≈ 1 \
                     shows per-update cost tracks the delta, not the window size"
                        .into(),
                ),
            ),
        ]),
    );
}
