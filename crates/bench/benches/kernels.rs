//! Lane-kernel benchmarks: the chunked inner-stride factor kernels
//! against the PR 4 odometer kernels they replaced, merged into
//! `BENCH_perf.json` as the `kernels` section.
//!
//! The "before" side is a verbatim bench-local copy of the PR 4
//! implementation (incremental stride walking, but the multi-position
//! odometer advances inside the innermost loop — one counter sweep per
//! table entry, one scalar scatter-add per element). The "after" side is
//! the library's current kernels: odometer hoisted to the outer blocks,
//! contiguous inner runs processed in 8-wide f64 chunks. Both sides run
//! the same eDiaMoND-shaped workload as the committed
//! `inference.factor_*` numbers, so the section is directly comparable
//! to the PR 4 baseline (`factor_sum_out.after_ns` ≈ 71.3 µs).
//!
//! Also measured here: the one-pass log-space VE query path, whose cost
//! is the price of underflow immunity on deep networks, and the FMA'd
//! four-way-split `lanes::dot` against the plain sequential dot it
//! replaced (the expectation read in variable elimination).

use kert_bayes::infer::factor::{lanes, Factor};
use kert_bayes::infer::ve;
use kert_bayes::infer::ve::Evidence;
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{before_after, bench, merge_bench_perf};
use kert_core::{DiscreteKertOptions, KertBn};
use serde::Value;
use std::hint::black_box;

/// `factor_sum_out.after_ns` committed by PR 4 — the baseline the
/// acceptance gate compares this run's lane kernel against.
const PR4_COMMITTED_SUM_OUT_NS: f64 = 71319.58823529411;

/// The PR 4 kernels, preserved as this bench's live "before" side.
mod pr4 {
    use kert_bayes::infer::factor::Factor;

    fn strides(cards: &[usize]) -> Vec<usize> {
        let mut out = vec![0usize; cards.len()];
        let mut acc = 1usize;
        for (i, &c) in cards.iter().enumerate().rev() {
            out[i] = acc;
            acc *= c;
        }
        out
    }

    /// Per-entry odometer: every `advance` sweeps the counter slots from
    /// the fastest position, updating each tracked linear index — the
    /// inner-loop cost the lane kernels hoist out.
    struct Odometer<'a> {
        cards: &'a [usize],
        counters: Vec<usize>,
    }

    impl<'a> Odometer<'a> {
        fn new(cards: &'a [usize]) -> Self {
            Odometer {
                cards,
                counters: vec![0; cards.len()],
            }
        }

        #[inline]
        fn advance(&mut self, stride_tables: &[&[usize]], indices: &mut [usize]) {
            for p in (0..self.cards.len()).rev() {
                self.counters[p] += 1;
                for (k, table) in stride_tables.iter().enumerate() {
                    indices[k] += table[p];
                }
                if self.counters[p] < self.cards[p] {
                    return;
                }
                self.counters[p] = 0;
                for (k, table) in stride_tables.iter().enumerate() {
                    indices[k] -= table[p] * self.cards[p];
                }
            }
        }
    }

    pub fn product(a: &Factor, b: &Factor) -> Factor {
        let (av, ac) = (a.vars(), a.cards());
        let (bv, bc) = (b.vars(), b.cards());
        let mut vars: Vec<usize> = Vec::with_capacity(av.len() + bv.len());
        let mut cards: Vec<usize> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < av.len() || j < bv.len() {
            let take_left = match (av.get(i), bv.get(j)) {
                (Some(&x), Some(&y)) => {
                    if x == y {
                        vars.push(x);
                        cards.push(ac[i]);
                        i += 1;
                        j += 1;
                        continue;
                    }
                    x < y
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_left {
                vars.push(av[i]);
                cards.push(ac[i]);
                i += 1;
            } else {
                vars.push(bv[j]);
                cards.push(bc[j]);
                j += 1;
            }
        }
        let sa_full = strides(ac);
        let sb_full = strides(bc);
        let stride_a: Vec<usize> = vars
            .iter()
            .map(|v| av.binary_search(v).map(|p| sa_full[p]).unwrap_or(0))
            .collect();
        let stride_b: Vec<usize> = vars
            .iter()
            .map(|v| bv.binary_search(v).map(|p| sb_full[p]).unwrap_or(0))
            .collect();

        let total: usize = cards.iter().product();
        let (aval, bval) = (a.values(), b.values());
        let mut values = Vec::with_capacity(total);
        let mut odo = Odometer::new(&cards);
        let mut idx = [0usize; 2];
        for _ in 0..total {
            values.push(aval[idx[0]] * bval[idx[1]]);
            odo.advance(&[&stride_a, &stride_b], &mut idx);
        }
        Factor::new(vars, cards, values).unwrap()
    }

    pub fn sum_out(f: &Factor, var: usize) -> Factor {
        let pos = f.vars().binary_search(&var).expect("var in scope");
        let mut vars = f.vars().to_vec();
        vars.remove(pos);
        let mut cards = f.cards().to_vec();
        cards.remove(pos);

        let out_strides = strides(&cards);
        let scatter: Vec<usize> = (0..f.vars().len())
            .map(|ip| match ip.cmp(&pos) {
                std::cmp::Ordering::Less => out_strides[ip],
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => out_strides[ip - 1],
            })
            .collect();

        let total: usize = cards.iter().product();
        let mut values = vec![0.0; total];
        let mut odo = Odometer::new(f.cards());
        let mut idx = [0usize];
        for &v in f.values() {
            values[idx[0]] += v;
            odo.advance(&[&scatter], &mut idx);
        }
        Factor::new(vars, cards, values).unwrap()
    }
}

/// Same eDiaMoND-shaped factor pair as the `inference` bench.
fn factor_pair() -> (Factor, Factor) {
    let cards_a = [5usize, 5, 5, 5, 5];
    let len_a: usize = cards_a.iter().product();
    let a = Factor::new(
        vec![0, 1, 2, 3, 6],
        cards_a.to_vec(),
        (0..len_a).map(|i| 1.0 + (i % 17) as f64 * 0.25).collect(),
    )
    .unwrap();
    let cards_b = [5usize, 5, 5];
    let len_b: usize = cards_b.iter().product();
    let b = Factor::new(
        vec![1, 3, 4],
        cards_b.to_vec(),
        (0..len_b).map(|i| 0.5 + (i % 11) as f64 * 0.125).collect(),
    )
    .unwrap();
    (a, b)
}

fn main() {
    println!("== lane kernels vs PR 4 odometer kernels ==");
    let (fa, fb) = factor_pair();

    // Sanity first: the determinism contract says the lane kernels are
    // *bitwise* identical to the kernels they replaced.
    let bits = |f: &Factor| f.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let prod_old = pr4::product(&fa, &fb);
    let prod_new = fa.product(&fb);
    assert_eq!(prod_old.vars(), prod_new.vars());
    assert_eq!(
        bits(&prod_old),
        bits(&prod_new),
        "product diverged from PR 4"
    );
    let sum_old = pr4::sum_out(&prod_old, 3);
    let sum_new = prod_new.sum_out(3);
    assert_eq!(bits(&sum_old), bits(&sum_new), "sum_out diverged from PR 4");

    let product_before = bench("factor_product/pr4_odometer", || {
        pr4::product(black_box(&fa), black_box(&fb))
    });
    let product_after = bench("factor_product/lanes", || {
        black_box(&fa).product(black_box(&fb))
    });

    let big = fa.product(&fb);
    let sum_before = bench("factor_sum_out/pr4_odometer", || {
        pr4::sum_out(black_box(&big), 3)
    });
    let sum_after = bench("factor_sum_out/lanes", || black_box(&big).sum_out(3));

    // Log-space VE on the discrete eDiaMoND dComp query: what underflow
    // immunity costs relative to the linear path on the same workload.
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 1);
    let model =
        KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap();
    let bn = model.network();
    let d_node = model.d_node();
    let mut evidence = Evidence::new();
    evidence.insert(0, 2);
    evidence.insert(1, 2);
    evidence.insert(d_node, 4);
    let lin = ve::posterior_marginal(bn, 3, &evidence).unwrap();
    let log = ve::posterior_marginal_logspace(bn, 3, &evidence).unwrap();
    for (a, b) in log.iter().zip(lin.iter()) {
        assert!((a - b).abs() < 1e-9, "log-space VE diverged from linear");
    }
    let ve_linear = bench("ve_query/linear", || {
        ve::posterior_marginal(black_box(bn), 3, black_box(&evidence)).unwrap()
    });
    let ve_log = bench("ve_query/logspace", || {
        ve::posterior_marginal_logspace(black_box(bn), 3, black_box(&evidence)).unwrap()
    });

    // FMA headroom: the four-way-split mul_add dot against the plain
    // sequential dot it replaced. Probability-scale inputs, and the
    // documented accuracy contract asserted before any timing: ≤1e-15
    // relative divergence between the two summation orders.
    let n = 1024usize;
    let raw: Vec<f64> = (0..n)
        .map(|i| 0.5 + ((i * 97) % 251) as f64 / 251.0)
        .collect();
    let total: f64 = raw.iter().sum();
    let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
    let support: Vec<f64> = (0..n)
        .map(|i| 0.01 + ((i * 53) % 199) as f64 / 100.0)
        .collect();
    let dot_seq = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let seq_val = dot_seq(&probs, &support);
    let fma_val = lanes::dot(&probs, &support);
    assert!(
        (fma_val - seq_val).abs() <= 1e-15 * seq_val.abs(),
        "lanes::dot violated its 1e-15 relative tolerance contract"
    );
    let dot_before = bench("dot/scalar_sequential", || {
        dot_seq(black_box(&probs), black_box(&support))
    });
    let dot_after = bench("dot/lanes_fma", || {
        lanes::dot(black_box(&probs), black_box(&support))
    });

    merge_bench_perf(
        "kernels",
        Value::Map(vec![
            (
                "factor_product".into(),
                before_after(&product_before, &product_after),
            ),
            (
                "factor_sum_out".into(),
                before_after(&sum_before, &sum_after),
            ),
            (
                "pr4_committed_sum_out_ns".into(),
                Value::Num(PR4_COMMITTED_SUM_OUT_NS),
            ),
            (
                "sum_out_speedup_vs_committed".into(),
                Value::Num(PR4_COMMITTED_SUM_OUT_NS / sum_after.median_ns),
            ),
            (
                "dot_fma".into(),
                Value::Map(vec![
                    ("len".into(), Value::Num(n as f64)),
                    ("before_ns".into(), Value::Num(dot_before.median_ns)),
                    ("after_ns".into(), Value::Num(dot_after.median_ns)),
                    (
                        "speedup".into(),
                        Value::Num(dot_before.median_ns / dot_after.median_ns),
                    ),
                    (
                        "fused_fma_compiled".into(),
                        Value::Bool(cfg!(target_feature = "fma")),
                    ),
                    (
                        "note".into(),
                        Value::Str(
                            "before = plain sequential dot; after = lanes::dot \
                             (four-way split accumulator; hardware-fused mul_add \
                             only when compiled with target-feature=+fma, else \
                             plain mul+add — see lanes::fmadd). Reassociates: \
                             ≤1e-15 relative of sequential on probability-scale \
                             inputs, asserted above and in factor.rs tests."
                                .into(),
                        ),
                    ),
                ]),
            ),
            (
                "ve_query_logspace".into(),
                Value::Map(vec![
                    ("linear_ns".into(), Value::Num(ve_linear.median_ns)),
                    ("logspace_ns".into(), Value::Num(ve_log.median_ns)),
                    (
                        "overhead".into(),
                        Value::Num(ve_log.median_ns / ve_linear.median_ns - 1.0),
                    ),
                ]),
            ),
            (
                "note".into(),
                Value::Str(
                    "before = live re-run of the PR 4 odometer kernels on this host; \
                     pr4_committed_sum_out_ns is the number PR 4 committed, kept for \
                     cross-run comparison. Lane kernels are bitwise-identical to the \
                     PR 4 kernels (asserted before timing)."
                        .into(),
                ),
            ),
        ]),
    );
}
