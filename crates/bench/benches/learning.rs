//! Benchmarks behind Figure 5 and the K2 learning path, merged into
//! `BENCH_perf.json`.
//!
//! * `k2_run` — one full K2 search (true ordering, memo cache) on the
//!   discretized eDiaMoND training set, plus a 10-restart run;
//! * `learning` — decentralized (scoped worker pool, wall-clock = slowest
//!   worker) vs centralized (sequential sum) parameter learning. Two
//!   speedups are reported: the *simulated* one (Σ vs max of per-node
//!   learning times — the paper's each-agent-on-its-own-host claim, which
//!   is independent of this host's core count) and the *wall-clock* one
//!   (what the worker pool achieves here; on a single-core host it cannot
//!   win, so `host_cores` is recorded alongside).

use kert_agents::runtime::{
    centralized_learn, decentralized_learn, slice_local_datasets, LearnOptions,
};
use kert_bayes::discretize::{BinStrategy, Discretizer};
use kert_bayes::learn::k2::{k2_search, k2_with_random_restarts, K2Options};
use kert_bayes::{Dag, Variable};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{bench, merge_bench_perf, simulated_speedup};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::hint::black_box;

fn learning_setup(
    n: usize,
    rows: usize,
    seed: u64,
) -> (Vec<Variable>, Vec<kert_agents::LocalDataset>) {
    let mut env = Environment::random(n, ScenarioOptions::default(), seed);
    let (train, _) = env.datasets(rows, 1, seed ^ 1);
    let service_data = train.project(&(0..n).collect::<Vec<_>>()).unwrap();
    let mut dag = Dag::new(n);
    for &(a, b) in &env.knowledge.upstream_edges {
        dag.add_edge(a, b).unwrap();
    }
    let variables: Vec<Variable> = (0..n)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let locals = slice_local_datasets(&dag, &service_data).unwrap();
    (variables, locals)
}

fn main() {
    println!("== learning ==");

    // K2 on the discretized eDiaMoND training set (7 columns, 1200 rows).
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 3);
    let disc = Discretizer::fit(&train, 5, BinStrategy::EqualFrequency).unwrap();
    let states = disc.transform(&train).unwrap();
    let cards = vec![5usize; states.columns()];
    let ordering: Vec<usize> = (0..states.columns()).collect();

    let k2_single = bench("k2_run/single_search", || {
        k2_search(
            black_box(&ordering),
            black_box(&states),
            &cards,
            K2Options::default(),
        )
        .unwrap()
    });
    let k2_restarts = bench("k2_run/10_restarts_cached", || {
        let mut rng = StdRng::seed_from_u64(9);
        k2_with_random_restarts(
            black_box(&states),
            &cards,
            K2Options::default(),
            10,
            &mut rng,
        )
        .unwrap()
    });

    // Figure-5 comparison at 40 services.
    let (variables, locals) = learning_setup(40, 1080, 21);
    let centralized = bench("learning/centralized_40", || {
        centralized_learn(
            black_box(&variables),
            black_box(&locals),
            LearnOptions::default(),
        )
        .unwrap()
    });
    let decentralized = bench("learning/decentralized_pool_40", || {
        decentralized_learn(
            black_box(&variables),
            black_box(&locals),
            LearnOptions::default(),
        )
        .unwrap()
    });

    // The per-node learning times from one sequential pass give the
    // host-core-independent speedup: latency of the slowest agent vs the
    // sum of all agents (each agent learns on its own machine).
    let sequential = centralized_learn(&variables, &locals, LearnOptions::default()).unwrap();
    let sim_speedup = simulated_speedup(&sequential.node_times);
    println!("learning/simulated_speedup_40            {sim_speedup:>10.2}x  (Σ/max node times)");

    merge_bench_perf(
        "learning",
        Value::Map(vec![
            ("k2_run_ns".into(), Value::Num(k2_single.median_ns)),
            (
                "k2_10_restarts_ns".into(),
                Value::Num(k2_restarts.median_ns),
            ),
            (
                "centralized_learn_ns".into(),
                Value::Num(centralized.median_ns),
            ),
            (
                "decentralized_learn_ns".into(),
                Value::Num(decentralized.median_ns),
            ),
            (
                "decentralized_simulated_speedup".into(),
                Value::Num(sim_speedup),
            ),
            (
                "decentralized_wall_speedup".into(),
                Value::Num(centralized.median_ns / decentralized.median_ns),
            ),
            (
                "note".into(),
                Value::Str(
                    "simulated_speedup = Σ/max of per-node learning times (one agent per \
                     host, the paper's architecture claim); wall_speedup is this host's \
                     worker pool and beats 1x only with ≥2 real cores — see host_cores"
                        .into(),
                ),
            ),
        ]),
    );
}
