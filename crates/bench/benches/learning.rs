//! Criterion benchmarks behind Figure 5: decentralized vs centralized
//! parameter learning.
//!
//! `learning/decentralized/*` runs the crossbeam agent-fleet pool;
//! `learning/centralized/*` the sequential reference. The figure itself
//! reports max-vs-sum of per-node times; these benches measure the actual
//! wall cost of both code paths on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kert_agents::runtime::{
    centralized_learn, decentralized_learn, slice_local_datasets, LearnOptions,
};
use kert_bayes::{Dag, Variable};
use kert_bench::scenario::{Environment, ScenarioOptions};
use std::hint::black_box;

fn setup(n: usize, rows: usize, seed: u64) -> (Vec<Variable>, Vec<kert_agents::LocalDataset>) {
    let mut env = Environment::random(n, ScenarioOptions::default(), seed);
    let (train, _) = env.datasets(rows, 1, seed ^ 1);
    let service_data = train.project(&(0..n).collect::<Vec<_>>()).unwrap();
    let mut dag = Dag::new(n);
    for &(a, b) in &env.knowledge.upstream_edges {
        dag.add_edge(a, b).unwrap();
    }
    let variables: Vec<Variable> = (0..n)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let locals = slice_local_datasets(&dag, &service_data).unwrap();
    (variables, locals)
}

fn bench_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_parameter_learning");
    group.sample_size(10);
    for &n in &[10usize, 40, 100] {
        let (variables, locals) = setup(n, 1080, 21);
        group.bench_with_input(
            BenchmarkId::new("centralized", n),
            &(&variables, &locals),
            |b, (vars, locals)| {
                b.iter(|| {
                    centralized_learn(black_box(vars), black_box(locals), LearnOptions::default())
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decentralized_pool", n),
            &(&variables, &locals),
            |b, (vars, locals)| {
                b.iter(|| {
                    decentralized_learn(
                        black_box(vars),
                        black_box(locals),
                        LearnOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
