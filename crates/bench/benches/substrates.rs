//! Criterion micro-benchmarks for the substrate layers: the simulator,
//! the linear-algebra kernel, discretization, and K2 scoring — the cost
//! drivers the figure-level numbers decompose into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kert_bayes::discretize::{BinStrategy, Discretizer};
use kert_bayes::learn::score::{gaussian_bic_family_score, k2_family_score};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_simulator");
    group.sample_size(10);
    for &n in &[6usize, 30, 100] {
        group.bench_with_input(BenchmarkId::new("run_1000_requests", n), &n, |b, &n| {
            b.iter(|| {
                let mut env = Environment::random(n, ScenarioOptions::default(), 42);
                let mut rng = StdRng::seed_from_u64(1);
                black_box(env.system.run(1_000, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_linalg");
    for &n in &[8usize, 32, 101] {
        // SPD matrix: covariance-like.
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                let v = 0.9f64.powi((i as i32 - j as i32).abs());
                a.set(i, j, v);
            }
        }
        group.bench_with_input(BenchmarkId::new("cholesky_factor", n), &a, |b, a| {
            b.iter(|| Cholesky::factor(black_box(a)).unwrap())
        });
        let ch = Cholesky::factor(&a).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &ch, |b, ch| {
            b.iter(|| ch.solve(black_box(rhs.clone())).unwrap())
        });
    }
    group.finish();
}

fn bench_scores_and_discretization(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_learning_primitives");
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 3);

    group.bench_function("discretizer_fit_transform_1200x7", |b| {
        b.iter(|| {
            let disc = Discretizer::fit(black_box(&train), 5, BinStrategy::EqualFrequency)
                .unwrap();
            black_box(disc.transform(&train).unwrap())
        })
    });

    let disc = Discretizer::fit(&train, 5, BinStrategy::EqualFrequency).unwrap();
    let states = disc.transform(&train).unwrap();
    let cards = vec![5usize; 7];
    group.bench_function("k2_family_score_1200_rows", |b| {
        b.iter(|| k2_family_score(6, black_box(&[0, 1, 3]), &states, &cards).unwrap())
    });
    group.bench_function("gaussian_bic_family_score_1200_rows", |b| {
        b.iter(|| gaussian_bic_family_score(6, black_box(&[0, 1, 3]), &train).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_linalg,
    bench_scores_and_discretization
);
criterion_main!(benches);
