//! Micro-benchmarks for the substrate layers: the simulator, the
//! linear-algebra kernel, discretization, and K2 scoring — the cost
//! drivers the figure-level numbers decompose into. Printed only; the
//! committed `BENCH_perf.json` tracks the kernel-level before/after pairs
//! from the other bench binaries.

use kert_bayes::discretize::{BinStrategy, Discretizer};
use kert_bayes::learn::score::{gaussian_bic_family_score, k2_family_score};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::bench;
use kert_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn main() {
    println!("== substrates ==");

    for &n in &[6usize, 30] {
        bench(&format!("simulator/run_1000_requests_{n}"), || {
            let mut env = Environment::random(n, ScenarioOptions::default(), 42);
            let mut rng = StdRng::seed_from_u64(1);
            black_box(env.system.run(1_000, &mut rng))
        });
    }

    for &n in &[8usize, 32] {
        // SPD matrix: covariance-like.
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                let v = 0.9f64.powi((i as i32 - j as i32).abs());
                a.set(i, j, v);
            }
        }
        bench(&format!("linalg/cholesky_factor_{n}"), || {
            Cholesky::factor(black_box(&a)).unwrap()
        });
        let ch = Cholesky::factor(&a).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        bench(&format!("linalg/cholesky_solve_{n}"), || {
            ch.solve(black_box(rhs.clone())).unwrap()
        });
    }

    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 3);
    bench("discretize/fit_transform_1200x7", || {
        let disc = Discretizer::fit(black_box(&train), 5, BinStrategy::EqualFrequency).unwrap();
        black_box(disc.transform(&train).unwrap())
    });

    let disc = Discretizer::fit(&train, 5, BinStrategy::EqualFrequency).unwrap();
    let states = disc.transform(&train).unwrap();
    let cards = vec![5usize; 7];
    bench("score/k2_family_score_1200_rows", || {
        k2_family_score(6, black_box(&[0, 1, 3]), &states, &cards).unwrap()
    });
    bench("score/gaussian_bic_family_score_1200_rows", || {
        gaussian_bic_family_score(6, black_box(&[0, 1, 3]), &train).unwrap()
    });
}
