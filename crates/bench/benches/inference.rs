//! Criterion benchmarks behind Figures 6–8: the inference machinery that
//! dComp, pAccel and the violation sweep run on.
//!
//! * `ve_posterior` — exact variable elimination on the discrete eDiaMoND
//!   KERT-BN (the §5 path used by all three figures);
//! * `gaussian_conditioning` — exact joint-Gaussian conditioning on a
//!   linear continuous network;
//! * `likelihood_weighting` — the Monte-Carlo fallback for nonlinear
//!   continuous networks (the capability BNT lacked).

use criterion::{criterion_group, criterion_main, Criterion};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_core::posterior::{query_posterior, McOptions};
use kert_core::{ContinuousKertOptions, DiscreteKertOptions, KertBn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_8_inference");
    group.sample_size(10);

    // Discrete eDiaMoND model (Figures 6–8).
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 1);
    let discrete =
        KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap();
    let x4_mean = kert_linalg::stats::mean(&train.column(3));
    group.bench_function("ve_posterior_dcomp_query", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let observed: Vec<(usize, f64)> = (0..7)
            .filter(|&c| c != 3)
            .map(|c| (c, kert_linalg::stats::mean(&train.column(c))))
            .collect();
        b.iter(|| {
            query_posterior(
                discrete.network(),
                discrete.discretizer(),
                black_box(&observed),
                3,
                McOptions::default(),
                &mut rng,
            )
            .unwrap()
        })
    });
    group.bench_function("ve_posterior_paccel_query", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            query_posterior(
                discrete.network(),
                discrete.discretizer(),
                black_box(&[(3usize, 0.9 * x4_mean)]),
                6,
                McOptions::default(),
                &mut rng,
            )
            .unwrap()
        })
    });

    // Continuous models: a linear chain (exact conditioning) and the
    // max-bearing eDiaMoND network (likelihood weighting).
    let mut lin_env = Environment::random(
        12,
        ScenarioOptions {
            gen: kert_workflow::GenOptions {
                parallel_prob: 0.0,
                choice_prob: 0.0,
                loop_prob: 0.0,
                max_branches: 4,
            },
            ..Default::default()
        },
        4,
    );
    let (lin_train, _) = lin_env.datasets(400, 1, 5);
    let linear =
        KertBn::build_continuous(&lin_env.knowledge, &lin_train, ContinuousKertOptions::default())
            .unwrap();
    group.bench_function("gaussian_conditioning", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let obs = [(0usize, 0.05)];
        b.iter(|| {
            query_posterior(
                linear.network(),
                None,
                black_box(&obs),
                linear.d_node(),
                McOptions::default(),
                &mut rng,
            )
            .unwrap()
        })
    });

    let cont =
        KertBn::build_continuous(&env.knowledge, &train, ContinuousKertOptions::default())
            .unwrap();
    group.bench_function("likelihood_weighting_20k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let obs = [(3usize, 0.9 * x4_mean)];
        b.iter(|| {
            query_posterior(
                cont.network(),
                None,
                black_box(&obs),
                cont.d_node(),
                McOptions { samples: 20_000 },
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
