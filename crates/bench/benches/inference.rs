//! Kernel benchmarks for the inference hot path: factor combination and
//! variable elimination, each measured against its pre-optimization
//! implementation (`naive` modules) — the before/after pair committed to
//! `BENCH_perf.json`.
//!
//! * `factor_product` — stride/odometer product vs per-entry decode/encode
//!   on eDiaMoND-shaped factors (scope overlap, mixed cardinalities);
//! * `factor_sum_out` — linear scatter pass vs decode + inner state sweep;
//! * `ve_query` — a dComp-style posterior on the discrete eDiaMoND
//!   KERT-BN: min-fill ordering + stride kernels vs greedy per-step
//!   ordering + naive kernels;
//! * `junction_tree` — the compiled engine: one-time compilation cost,
//!   steady-state calibrated marginal reads, and a 10-query dComp-style
//!   batch against re-running per-query VE from scratch.

use kert_bayes::compile::JunctionTree;
use kert_bayes::cpd::{Cpd, TabularCpd};
use kert_bayes::infer::factor::{naive as naive_factor, Factor};
use kert_bayes::infer::ve::{self, naive as naive_ve, Evidence};
use kert_bayes::{BayesianNetwork, Dag, Variable};
use kert_bench::scenario::{Environment, ScenarioOptions};
use kert_bench::timing::{before_after, bench, merge_bench_perf, simulated_speedup};
use kert_core::{DiscreteKertOptions, FanoutStats, KertBn};
use serde::Value;
use std::hint::black_box;

/// eDiaMoND-shaped factor pair: the response-node factor over four parents
/// (card 5 each) times an upstream family factor sharing two of them.
fn factor_pair() -> (Factor, Factor) {
    let cards_a = [5usize, 5, 5, 5, 5];
    let len_a: usize = cards_a.iter().product();
    let a = Factor::new(
        vec![0, 1, 2, 3, 6],
        cards_a.to_vec(),
        (0..len_a).map(|i| 1.0 + (i % 17) as f64 * 0.25).collect(),
    )
    .unwrap();
    let cards_b = [5usize, 5, 5];
    let len_b: usize = cards_b.iter().product();
    let b = Factor::new(
        vec![1, 3, 4],
        cards_b.to_vec(),
        (0..len_b).map(|i| 0.5 + (i % 11) as f64 * 0.125).collect(),
    )
    .unwrap();
    (a, b)
}

/// A hub node with `arms` independent card-3 chains of length `depth`
/// hanging off it — the root-branch-rich shape the subtree-parallel
/// collect pass partitions. Mirrors the structure used by the
/// `parallel_collect_*` tests in `kert-bayes`.
fn star_of_chains(arms: usize, depth: usize) -> BayesianNetwork {
    let n = 1 + arms * depth;
    let vars: Vec<Variable> = (0..n)
        .map(|i| Variable::discrete(format!("n{i}"), 3))
        .collect();
    let mut dag = Dag::new(n);
    let mut cpds = vec![Cpd::Tabular(
        TabularCpd::new(0, vec![], 3, vec![], vec![0.5, 0.3, 0.2]).unwrap(),
    )];
    for a in 0..arms {
        for d in 0..depth {
            let node = 1 + a * depth + d;
            let parent = if d == 0 { 0 } else { node - 1 };
            dag.add_edge(parent, node).unwrap();
            let mut table = Vec::with_capacity(9);
            for r in 0..3 {
                let x = 0.2 + 0.1 * ((node + r) % 4) as f64;
                let y = 0.25 + 0.05 * ((node * 7 + r) % 5) as f64;
                table.extend_from_slice(&[x, y, 1.0 - x - y]);
            }
            cpds.push(Cpd::Tabular(
                TabularCpd::new(node, vec![parent], 3, vec![3], table).unwrap(),
            ));
        }
    }
    BayesianNetwork::new(vars, dag, cpds).unwrap()
}

fn main() {
    println!("== inference kernels ==");
    let (fa, fb) = factor_pair();

    let product_before = bench("factor_product/naive", || {
        naive_factor::product(black_box(&fa), black_box(&fb))
    });
    let product_after = bench("factor_product/stride", || {
        black_box(&fa).product(black_box(&fb))
    });

    let big = fa.product(&fb);
    let sum_before = bench("factor_sum_out/naive", || {
        naive_factor::sum_out(black_box(&big), 3)
    });
    let sum_after = bench("factor_sum_out/stride", || black_box(&big).sum_out(3));

    // Discrete eDiaMoND model, dComp-style query: response time observed in
    // its top bin plus two upstream services, posterior of the hidden X4.
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(1200, 1, 1);
    let model =
        KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default()).unwrap();
    let bn = model.network();
    let d_node = model.d_node();
    let mut evidence = Evidence::new();
    evidence.insert(0, 2);
    evidence.insert(1, 2);
    evidence.insert(d_node, 4);

    let ve_before = bench("ve_query/naive_greedy", || {
        naive_ve::posterior_marginal(black_box(bn), 3, black_box(&evidence)).unwrap()
    });
    let ve_after = bench("ve_query/minfill_stride", || {
        ve::posterior_marginal(black_box(bn), 3, black_box(&evidence)).unwrap()
    });
    let ve_pruned = bench("ve_query/minfill_stride_pruned", || {
        ve::posterior_marginal_pruned(black_box(bn), 3, black_box(&evidence)).unwrap()
    });

    // Sanity: the two paths must agree before their times are comparable.
    let p_naive = naive_ve::posterior_marginal(bn, 3, &evidence).unwrap();
    let p_fast = ve::posterior_marginal(bn, 3, &evidence).unwrap();
    for (a, b) in p_fast.iter().zip(p_naive.iter()) {
        assert!((a - b).abs() < 1e-12, "optimized VE diverged from naive VE");
    }

    // Compiled junction tree on the same model. Compilation is the one-time
    // cost a control period amortizes; the calibrated-marginal read is the
    // steady-state query with evidence already propagated.
    let jt_compile = bench("jt/compile", || {
        JunctionTree::compile(black_box(bn)).unwrap()
    });
    let tree = JunctionTree::compile(bn).unwrap();
    let mut pins: Vec<(usize, usize)> = evidence.iter().map(|(&n, &s)| (n, s)).collect();
    pins.sort_unstable();
    let mut calibrated = tree.new_state();
    for &(node, s) in &pins {
        tree.set_evidence(&mut calibrated, node, s).unwrap();
    }
    tree.marginal(&mut calibrated, 3).unwrap(); // calibrate once
    let jt_marginal = bench("jt/calibrated_marginal", || {
        tree.marginal(black_box(&mut calibrated), 3).unwrap()
    });

    // 10-query dComp-style batch: fresh evidence each control period, then
    // the posterior of every hidden service (round-robin to 10 queries).
    // Per-query VE rebuilds the factor stack from the network every time;
    // the compiled engine enters evidence incrementally into a reusable
    // state and reads each marginal off the calibrated tree.
    let hidden: Vec<usize> = (0..bn.len())
        .filter(|n| !evidence.contains_key(n))
        .collect();
    let batch_targets: Vec<usize> = (0..10).map(|i| hidden[i % hidden.len()]).collect();
    let ve_batch = bench("batch_dcomp_10/per_query_ve", || {
        batch_targets
            .iter()
            .map(|&t| ve::posterior_marginal(black_box(bn), t, black_box(&evidence)).unwrap())
            .collect::<Vec<_>>()
    });
    let mut batch_state = tree.new_state();
    let jt_batch = bench("batch_dcomp_10/junction_tree", || {
        tree.clear_evidence(&mut batch_state).unwrap();
        for &(node, s) in &pins {
            tree.set_evidence(&mut batch_state, node, s).unwrap();
        }
        batch_targets
            .iter()
            .map(|&t| tree.marginal(black_box(&mut batch_state), t).unwrap())
            .collect::<Vec<_>>()
    });

    // Sanity: the compiled engine must agree with VE on every batch query.
    for &t in &batch_targets {
        let want = ve::posterior_marginal(bn, t, &evidence).unwrap();
        let got = tree.marginal(&mut batch_state, t).unwrap();
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-9, "junction tree diverged from VE");
        }
    }

    merge_bench_perf(
        "inference",
        Value::Map(vec![
            (
                "factor_product".into(),
                before_after(&product_before, &product_after),
            ),
            (
                "factor_sum_out".into(),
                before_after(&sum_before, &sum_after),
            ),
            ("ve_query".into(), before_after(&ve_before, &ve_after)),
            ("ve_query_pruned_ns".into(), Value::Num(ve_pruned.median_ns)),
        ]),
    );
    merge_bench_perf(
        "junction_tree",
        Value::Map(vec![
            ("jt_compile_ns".into(), Value::Num(jt_compile.median_ns)),
            (
                "jt_calibrated_marginal_ns".into(),
                Value::Num(jt_marginal.median_ns),
            ),
            (
                "jt_batch_dcomp_ns".into(),
                before_after(&ve_batch, &jt_batch),
            ),
        ]),
    );

    // Subtree-parallel propagation and worker-pool batching. Wall numbers
    // on a shared host measure its core count; the `simulated_speedup`
    // entries (Σ/max of per-branch or per-item times) are the
    // host-independent architecture claim, matching the
    // decentralized-learning convention in the `learning` section.
    //
    // The collect workload is a 41-node star of chains (8 independent
    // arms of depth 5 off a shared hub): a service-composition shape
    // whose root clique has many independent subtrees — the eDiaMoND
    // tree is too small to branch, and a random 40-service workflow
    // moralizes into an intractable clique around the response node.
    println!("== subtree-parallel propagation (star of chains) ==");
    let star = star_of_chains(8, 5);
    let depth = 5usize;
    let star_pins: Vec<(usize, usize)> = vec![(depth, 2), (3 * depth, 0), (5 * depth, 1)];
    let mut tree_star = JunctionTree::compile(&star).unwrap();
    let mut st_star = tree_star.new_state();

    tree_star.set_workers(1);
    let cal_seq = bench("jt_star_calibrate/workers_1", || {
        tree_star.clear_evidence(&mut st_star).unwrap();
        for &(n, s) in &star_pins {
            tree_star.set_evidence(&mut st_star, n, s).unwrap();
        }
        tree_star.marginal(&mut st_star, 0).unwrap()
    });
    // One more fresh calibrate so the branch-time profile on record is a
    // full sequential collect, then keep its marginal as the reference.
    tree_star.clear_evidence(&mut st_star).unwrap();
    for &(n, s) in &star_pins {
        tree_star.set_evidence(&mut st_star, n, s).unwrap();
    }
    let seq_marginal = tree_star.marginal(&mut st_star, 0).unwrap();
    let branches = st_star.last_branch_times().len();
    let collect_sim = simulated_speedup(st_star.last_branch_times());

    tree_star.set_workers(4);
    let cal_par = bench("jt_star_calibrate/workers_4", || {
        tree_star.clear_evidence(&mut st_star).unwrap();
        for &(n, s) in &star_pins {
            tree_star.set_evidence(&mut st_star, n, s).unwrap();
        }
        tree_star.marginal(&mut st_star, 0).unwrap()
    });
    tree_star.clear_evidence(&mut st_star).unwrap();
    for &(n, s) in &star_pins {
        tree_star.set_evidence(&mut st_star, n, s).unwrap();
    }
    let par_marginal = tree_star.marginal(&mut st_star, 0).unwrap();
    assert_eq!(
        seq_marginal, par_marginal,
        "parallel collect diverged from sequential (must be bitwise identical)"
    );
    println!("collect: {branches} root branches, simulated speedup {collect_sim:.2}x");

    // Worker-pool batch front end: 8 independent violation sweeps fanned
    // across the pool against the shared calibrated eDiaMoND core.
    let thresholds = {
        let d_col = bn.len() - 1;
        let mut d_vals: Vec<f64> = (0..train.rows()).map(|r| train.row(r)[d_col]).collect();
        d_vals.sort_by(|a, b| a.total_cmp(b));
        vec![
            d_vals[train.rows() / 4],
            d_vals[train.rows() / 2],
            d_vals[3 * train.rows() / 4],
        ]
    };
    let ev_sets: Vec<Vec<(usize, f64)>> = (0..8)
        .map(|k| {
            let row = train.row(k * 7);
            vec![(0, row[0]), (1, row[1])]
        })
        .collect();
    let mut engine = model.compile().unwrap();
    engine.set_workers(1);
    let rows_seq = engine.violation_sweep_batch(&ev_sets, &thresholds).unwrap();
    let sweep_seq = bench("violation_sweep_batch8/workers_1", || {
        engine
            .violation_sweep_batch(black_box(&ev_sets), &thresholds)
            .unwrap()
    });
    engine.set_workers(4);
    let rows_par = engine.violation_sweep_batch(&ev_sets, &thresholds).unwrap();
    assert_eq!(
        rows_seq, rows_par,
        "worker pool changed sweep results (must be bitwise identical)"
    );
    let sweep_par = bench("violation_sweep_batch8/workers_4", || {
        engine
            .violation_sweep_batch(black_box(&ev_sets), &thresholds)
            .unwrap()
    });
    let sweep_sim = engine
        .last_fanout()
        .map(FanoutStats::simulated_speedup)
        .unwrap_or(1.0);
    println!("batch sweep: simulated speedup {sweep_sim:.2}x over 8 evidence sets");

    merge_bench_perf(
        "parallel_jt",
        Value::Map(vec![
            ("jt_star_calibrate".into(), before_after(&cal_seq, &cal_par)),
            ("collect_branches".into(), Value::Num(branches as f64)),
            ("collect_simulated_speedup".into(), Value::Num(collect_sim)),
            ("sweep_batch8".into(), before_after(&sweep_seq, &sweep_par)),
            ("sweep_simulated_speedup".into(), Value::Num(sweep_sim)),
            ("workers".into(), Value::Num(4.0)),
            (
                "note".into(),
                Value::Str(
                    "simulated_speedup = Σ/max of per-branch (collect) or per-item \
                     (batch) times — host-independent, see host_cores; the \
                     before/after wall pairs measure this host's worker pool and \
                     only beat 1x with ≥2 real cores. Results are asserted \
                     bitwise-identical across worker counts before timing."
                        .into(),
                ),
            ),
        ]),
    );
}
