//! Figure 3 — KERT-BN vs NRT-BN over training-set size.
//!
//! Paper setting: 30 simulated services; training sets from 36 points
//! (`K = 3, α = 12`, `T_CON` = 2 min) to 1080 points (`α = 360`, 60 min);
//! continuous Gaussian models with `l = 0`; accuracy = `log₁₀ p(test)` on
//! 100 test points; 10 repetitions with fresh data each.

use kert_core::{ContinuousKertOptions, KertBn, NrtBn, NrtOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Paper parameters for this figure.
pub const N_SERVICES: usize = 30;
/// §4.1: accuracy is measured against a test set of 100 data points.
pub const TEST_ROWS: usize = 100;
/// The paper's sweep end-points (36 = K·α with α = 12; 1080 with α = 360).
pub const TRAIN_SIZES: [usize; 7] = [36, 108, 216, 432, 648, 864, 1080];

/// One point of the Figure-3 series (averaged over repetitions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Training-set size (data points).
    pub train_size: usize,
    /// Mean KERT-BN construction time (s).
    pub kert_time: f64,
    /// Mean NRT-BN construction time (s).
    pub nrt_time: f64,
    /// Mean KERT-BN accuracy, `log₁₀ p(test | model)`.
    pub kert_accuracy: f64,
    /// Mean NRT-BN accuracy.
    pub nrt_accuracy: f64,
    /// Std-dev of KERT-BN accuracy across repetitions (data sensitivity).
    pub kert_accuracy_sd: f64,
    /// Std-dev of NRT-BN accuracy across repetitions.
    pub nrt_accuracy_sd: f64,
}

/// Run the Figure-3 experiment.
pub fn run(train_sizes: &[usize], reps: usize, base_seed: u64) -> Vec<Fig3Point> {
    run_sized(N_SERVICES, train_sizes, reps, base_seed)
}

/// Parameterized variant (shared with Figure 4, which sweeps `n` instead).
pub fn run_sized(
    n_services: usize,
    train_sizes: &[usize],
    reps: usize,
    base_seed: u64,
) -> Vec<Fig3Point> {
    assert!(reps >= 1);
    train_sizes
        .iter()
        .map(|&size| {
            let mut kert_times = Vec::with_capacity(reps);
            let mut nrt_times = Vec::with_capacity(reps);
            let mut kert_accs = Vec::with_capacity(reps);
            let mut nrt_accs = Vec::with_capacity(reps);
            for rep in 0..reps {
                let seed = base_seed
                    .wrapping_mul(0x5851_f42d_4c95_7f2d)
                    .wrapping_add((size * 1_000 + rep) as u64);
                let (kt, nt, ka, na) = one_rep(n_services, size, seed);
                kert_times.push(kt);
                nrt_times.push(nt);
                kert_accs.push(ka);
                nrt_accs.push(na);
            }
            Fig3Point {
                train_size: size,
                kert_time: kert_linalg::stats::mean(&kert_times),
                nrt_time: kert_linalg::stats::mean(&nrt_times),
                kert_accuracy: kert_linalg::stats::mean(&kert_accs),
                nrt_accuracy: kert_linalg::stats::mean(&nrt_accs),
                kert_accuracy_sd: kert_linalg::stats::std_dev(&kert_accs),
                nrt_accuracy_sd: kert_linalg::stats::std_dev(&nrt_accs),
            }
        })
        .collect()
}

/// One repetition: fresh environment and data, both models built and
/// scored. Returns `(kert_time, nrt_time, kert_acc, nrt_acc)`.
pub fn one_rep(n_services: usize, train_size: usize, seed: u64) -> (f64, f64, f64, f64) {
    let mut env = Environment::random(n_services, ScenarioOptions::default(), seed);
    let (train, test) = env.datasets(train_size, TEST_ROWS, seed ^ 0xabcd);

    let kert = KertBn::build_continuous(&env.knowledge, &train, ContinuousKertOptions::default())
        .expect("KERT-BN builds on scenario data");
    let kert_time = kert.report().total_secs();
    let kert_acc = kert.accuracy(&test).expect("finite accuracy");

    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
    let nrt = NrtBn::build_continuous(&train, NrtOptions::default(), &mut rng)
        .expect("NRT-BN builds on scenario data");
    let nrt_time = nrt.report().total_secs();
    let nrt_acc = nrt.accuracy(&test).expect("finite accuracy");

    (kert_time, nrt_time, kert_acc, nrt_acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kert_is_cheaper_and_at_least_as_accurate() {
        // A scaled-down Figure 3: two sizes, a few reps; the paper's two
        // claims must hold — lower construction time, higher (or equal)
        // accuracy, with the gap in time present at both sizes.
        let points = run_sized(12, &[40, 200], 3, 42);
        for p in &points {
            assert!(
                p.kert_time < p.nrt_time,
                "size {}: kert {} vs nrt {}",
                p.train_size,
                p.kert_time,
                p.nrt_time
            );
            assert!(
                p.kert_accuracy >= p.nrt_accuracy - 0.05 * p.nrt_accuracy.abs(),
                "size {}: kert {} vs nrt {}",
                p.train_size,
                p.kert_accuracy,
                p.nrt_accuracy
            );
        }
    }

    #[test]
    fn kert_accuracy_converges_with_less_data() {
        // Data-sensitivity claim: at the small end KERT-BN's accuracy per
        // row should already be near its large-data value, while NRT-BN
        // should visibly improve with more data.
        let points = run_sized(12, &[40, 400], 3, 7);
        let small = &points[0];
        let large = &points[1];
        // Accuracy scales with test rows, not train rows, so values are
        // directly comparable across training sizes.
        let kert_gain = large.kert_accuracy - small.kert_accuracy;
        let nrt_gain = large.nrt_accuracy - small.nrt_accuracy;
        assert!(
            nrt_gain > kert_gain - 1.0,
            "NRT should gain at least comparably from data: {nrt_gain} vs {kert_gain}"
        );
    }
}
