//! Simulated environments for the experiments.
//!
//! §4's setup: services "receive and send calls among each other and
//! randomly generate a processing delay upon receiving calls … assembled
//! together by different workflows". Here an *environment* is a random
//! workflow over `n` services, each hosted on a single-server queueing
//! station with an Erlang service-time distribution, fed by an open
//! Poisson workload sized to keep the busiest station below a target
//! utilization. §5's eDiaMoND test-bed has its own constructor with the
//! remote path dominant.

use kert_bayes::Dataset;
use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
use kert_workflow::{
    derive_structure, ediamond_workflow, expected_visits, random_workflow, GenOptions, ResourceMap,
    Workflow, WorkflowKnowledge,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Environment-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOptions {
    /// Service-time means are drawn uniformly from this range (seconds).
    pub mean_range: (f64, f64),
    /// Erlang shape of service times (higher = less variable).
    pub erlang_k: u32,
    /// Target utilization of the busiest station.
    pub target_utilization: f64,
    /// Relative measurement noise applied to reported datasets (the
    /// instrumentation imprecision behind Eq. 4's leak).
    pub measurement_noise: f64,
    /// Workflow-generation options.
    pub gen: GenOptions,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            mean_range: (0.02, 0.10),
            erlang_k: 4,
            target_utilization: 0.5,
            measurement_noise: 0.02,
            // Sequence/parallel only for the model-comparison experiments:
            // probabilistic choices produce zero-inflated elapsed-time
            // columns (a service unvisited in a 36-point window has a
            // degenerate all-zero Gaussian), which *neither* continuous
            // model family of the paper can represent — the §4 simulation
            // compares Gaussian CPDs on always-invoked services. Choice and
            // loop handling is exercised by the workflow/sim test suites
            // and by the discrete models.
            gen: GenOptions {
                choice_prob: 0.0,
                loop_prob: 0.0,
                ..GenOptions::default()
            },
        }
    }
}

/// A ready-to-run simulated environment with its compiled knowledge.
pub struct Environment {
    /// The workflow driving requests.
    pub workflow: Workflow,
    /// Knowledge compiled from the workflow (structure + `f`).
    pub knowledge: WorkflowKnowledge,
    /// The queueing simulator.
    pub system: SimSystem,
    /// Scenario options (kept for dataset generation).
    pub options: ScenarioOptions,
    /// Per-service mean service times.
    pub service_means: Vec<f64>,
}

impl Environment {
    /// A random environment of `n_services` (Figures 3–5).
    pub fn random(n_services: usize, options: ScenarioOptions, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let workflow = random_workflow(n_services, options.gen, &mut rng);
        let knowledge = derive_structure(&workflow, n_services, &ResourceMap::new())
            .expect("generated workflows are valid");
        let (lo, hi) = options.mean_range;
        let service_means: Vec<f64> = (0..n_services).map(|_| rng.gen_range(lo..hi)).collect();
        let system = build_system(&workflow, &service_means, &options);
        Environment {
            workflow,
            knowledge,
            system,
            options,
            service_means,
        }
    }

    /// The eDiaMoND test-bed (Figures 6–8): six fixed services with the
    /// remote hospital path dominant — the paper simulated the remote link
    /// by request forwarding; we give the remote locator the largest mean.
    pub fn ediamond(options: ScenarioOptions) -> Self {
        let workflow = ediamond_workflow();
        let knowledge =
            derive_structure(&workflow, 6, &ResourceMap::new()).expect("eDiaMoND is valid");
        // image_list, work_list, loc_local, loc_remote, dai_local, dai_remote
        let service_means = vec![0.05, 0.05, 0.04, 0.30, 0.05, 0.12];
        let system = build_system(&workflow, &service_means, &options);
        Environment {
            workflow,
            knowledge,
            system,
            options,
            service_means,
        }
    }

    /// Generate a `(train, test)` dataset pair from fresh simulation, with
    /// measurement noise applied. Columns: `X1…Xn, D`.
    pub fn datasets(
        &mut self,
        train_rows: usize,
        test_rows: usize,
        seed: u64,
    ) -> (Dataset, Dataset) {
        let mut sim_rng = StdRng::seed_from_u64(seed);
        let trace = self.system.run(train_rows + test_rows, &mut sim_rng);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let data = trace.to_noisy_dataset(None, self.options.measurement_noise, &mut noise_rng);
        data.split_at(train_rows)
    }

    /// Scale one service's mean service time (resource action); returns the
    /// new mean.
    pub fn scale_service(&mut self, service: usize, factor: f64) -> f64 {
        let new_mean = self.service_means[service] * factor;
        self.service_means[service] = new_mean;
        self.system
            .set_service_time(
                service,
                Dist::Erlang {
                    k: self.options.erlang_k,
                    mean: new_mean,
                },
            )
            .expect("service exists");
        new_mean
    }
}

fn build_system(workflow: &Workflow, means: &[f64], options: &ScenarioOptions) -> SimSystem {
    let stations: Vec<ServiceConfig> = means
        .iter()
        .map(|&m| {
            ServiceConfig::single(Dist::Erlang {
                k: options.erlang_k,
                mean: m,
            })
        })
        .collect();
    // Arrival rate that keeps the busiest station at the target utilization,
    // accounting for loops/choices via expected visit counts.
    let visits = expected_visits(workflow, means.len());
    let max_work = visits
        .iter()
        .zip(means.iter())
        .map(|(&v, &m)| v * m)
        .fold(0.0f64, f64::max)
        .max(1e-6);
    let inter_arrival_mean = max_work / options.target_utilization;
    SimSystem::new(
        workflow,
        stations,
        SimOptions {
            inter_arrival: Dist::Exponential {
                mean: inter_arrival_mean,
            },
            warmup: 100,
        },
    )
    .expect("scenario configuration is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_environment_produces_usable_datasets() {
        let mut env = Environment::random(12, ScenarioOptions::default(), 7);
        let (train, test) = env.datasets(100, 50, 1);
        assert_eq!(train.rows(), 100);
        assert_eq!(test.rows(), 50);
        assert_eq!(train.columns(), 13);
        // Response times are positive.
        assert!(train.column(12).iter().all(|&d| d > 0.0));
    }

    #[test]
    fn environment_is_reproducible_per_seed() {
        let mut a = Environment::random(8, ScenarioOptions::default(), 3);
        let mut b = Environment::random(8, ScenarioOptions::default(), 3);
        let (ta, _) = a.datasets(50, 10, 9);
        let (tb, _) = b.datasets(50, 10, 9);
        for r in 0..50 {
            assert_eq!(ta.row(r), tb.row(r));
        }
    }

    #[test]
    fn ediamond_environment_matches_figure_1() {
        let env = Environment::ediamond(ScenarioOptions::default());
        assert_eq!(env.knowledge.n_services, 6);
        assert_eq!(
            env.knowledge.upstream_edges,
            vec![(0, 1), (1, 2), (1, 3), (2, 4), (3, 5)]
        );
        // Remote locator dominates.
        let max = env.service_means.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(env.service_means[3], max);
    }

    #[test]
    fn scaling_a_service_shifts_its_measurements() {
        let mut env = Environment::ediamond(ScenarioOptions::default());
        let (before, _) = env.datasets(300, 1, 5);
        env.scale_service(3, 0.5);
        let (after, _) = env.datasets(300, 1, 6);
        let m_before = kert_linalg::stats::mean(&before.column(3));
        let m_after = kert_linalg::stats::mean(&after.column(3));
        assert!(m_after < m_before * 0.8, "{m_after} vs {m_before}");
    }
}
