//! Ablations: quantifying the design choices the paper argues in prose.
//!
//! Three studies, each pinned to a specific passage:
//!
//! 1. **Learning-free Naive-BN baseline** (§4.2): the paper "quickly
//!    dismissed" replacing K2 by a fixed naive structure; we measure the
//!    accuracy it actually costs.
//! 2. **Sequential update vs windowed reconstruction** (§2): old data
//!    "lingers in the updated model and adversely impacts its accuracy" —
//!    we change the environment mid-stream and compare prediction error of
//!    a cumulative updater against the sliding-window reconstruction.
//! 3. **Barren-node pruning for inference** (§7 future work): cheaper
//!    probability assessment after construction, with exactness preserved.

use std::time::Instant;

use kert_agents::{CumulativeUpdater, ReconstructionWindow};
use kert_bayes::infer::ve::{posterior_marginal, posterior_marginal_pruned, Evidence};
use kert_core::posterior::{query_posterior, McOptions};
use kert_core::{DiscreteKertOptions, KertBn, NrtBn, NrtOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Results of the naive-baseline ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveAblation {
    /// `log₁₀ p(test)` of the knowledge-enhanced model.
    pub kert_accuracy: f64,
    /// `log₁₀ p(test)` of the K2-learned NRT-BN.
    pub nrt_accuracy: f64,
    /// `log₁₀ p(test)` of the learning-free naive structure.
    pub naive_accuracy: f64,
    /// Service-to-service edges in the naive model (always 0 — the
    /// interpretability loss).
    pub naive_service_edges: usize,
    /// Service-to-service edges the K2 model recovered.
    pub nrt_service_edges: usize,
}

/// Run the §4.2 naive-baseline ablation on the eDiaMoND test-bed.
pub fn naive_baseline(seed: u64) -> NaiveAblation {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (data, _) = env.datasets(1_500, 1, seed);
    let (train, test) = data.split_at(1_200);

    let kert = KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default())
        .expect("builds");
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let nrt = NrtBn::build_discrete(&train, NrtOptions::default(), &mut rng).expect("builds");
    let naive = NrtBn::build_naive_discrete(&train, NrtOptions::default()).expect("builds");

    let service_edges =
        |dag: &kert_bayes::Dag| dag.edges().filter(|&(a, b)| a < 6 && b < 6).count();
    NaiveAblation {
        kert_accuracy: kert.accuracy(&test).expect("finite"),
        nrt_accuracy: nrt.accuracy(&test).expect("finite"),
        naive_accuracy: naive.accuracy(&test).expect("finite"),
        naive_service_edges: service_edges(naive.network().dag()),
        nrt_service_edges: service_edges(nrt.network().dag()),
    }
}

/// Results of the update-vs-reconstruct ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateAblation {
    /// |predicted mean D − actual| for the windowed reconstruction.
    pub windowed_error: f64,
    /// Same for the cumulative (never-forgetting) updater.
    pub cumulative_error: f64,
    /// Training rows the cumulative updater dragged into its last rebuild.
    pub cumulative_rows: usize,
    /// Training rows in the last reconstruction window.
    pub windowed_rows: usize,
}

/// Run the §2 update-vs-reconstruct ablation: the remote service becomes
/// 2× faster halfway through; both schemes rebuild afterwards; both are
/// asked for the expected response time of the *new* regime.
pub fn update_vs_reconstruct(seed: u64) -> UpdateAblation {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let alpha = 100usize;
    let k = 2usize;
    let names: Vec<String> = (0..6)
        .map(|i| format!("X{}", i + 1))
        .chain(std::iter::once("D".into()))
        .collect();
    let schedule = kert_agents::ModelSchedule {
        t_data: 10.0,
        alpha_model: alpha,
        k,
    };
    let mut window = ReconstructionWindow::new(schedule, names.clone()).expect("valid");
    let mut cumulative = CumulativeUpdater::new(alpha, names).expect("valid");

    let mut windowed_model = None;
    let mut cumulative_model = None;
    let fit = |train: &kert_bayes::Dataset| {
        KertBn::build_discrete(&env_knowledge(), train, DiscreteKertOptions::default())
            .expect("builds")
    };
    // Phase 1: 4 rebuild cycles of the slow regime.
    let feed = |env: &mut Environment,
                cycles: usize,
                seed: u64,
                window: &mut ReconstructionWindow,
                cumulative: &mut CumulativeUpdater,
                windowed_model: &mut Option<KertBn>,
                cumulative_model: &mut Option<KertBn>| {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..cycles * alpha {
            let batch = env.system.run(1, &mut rng).to_dataset(None);
            if let Some(train) = window.push_interval(&batch).expect("schema fixed") {
                *windowed_model = Some(fit(&train));
            }
            if let Some(train) = cumulative.push_interval(&batch).expect("schema fixed") {
                *cumulative_model = Some(fit(&train));
            }
        }
    };
    feed(
        &mut env,
        4,
        seed,
        &mut window,
        &mut cumulative,
        &mut windowed_model,
        &mut cumulative_model,
    );
    // The remote site is upgraded.
    env.scale_service(3, 0.5);
    feed(
        &mut env,
        2,
        seed ^ 7,
        &mut window,
        &mut cumulative,
        &mut windowed_model,
        &mut cumulative_model,
    );

    // Probe the new regime.
    let (probe, _) = env.datasets(300, 1, seed ^ 9);
    let actual = kert_linalg::stats::mean(&probe.column(6));
    let mut q_rng = StdRng::seed_from_u64(seed ^ 11);
    let mut predict = |m: &KertBn| {
        query_posterior(
            m.network(),
            m.discretizer(),
            &[],
            m.d_node(),
            McOptions::default(),
            &mut q_rng,
        )
        .expect("inference runs")
        .mean()
    };
    let windowed = windowed_model.expect("six rebuilds happened");
    let cumulative_m = cumulative_model.expect("six rebuilds happened");
    UpdateAblation {
        windowed_error: (predict(&windowed) - actual).abs(),
        cumulative_error: (predict(&cumulative_m) - actual).abs(),
        cumulative_rows: cumulative.accumulated_rows(),
        windowed_rows: schedule.points_per_window(),
    }
}

/// eDiaMoND knowledge (helper kept out of the closure for borrow clarity).
fn env_knowledge() -> kert_workflow::WorkflowKnowledge {
    kert_workflow::derive_structure(
        &kert_workflow::ediamond_workflow(),
        6,
        &kert_workflow::ResourceMap::new(),
    )
    .expect("valid")
}

/// Results of the inference-pruning ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PruningAblation {
    /// Seconds per full-network VE query.
    pub full_secs: f64,
    /// Seconds per barren-pruned VE query.
    pub pruned_secs: f64,
    /// Maximum absolute difference between the two posteriors (exactness).
    pub max_abs_diff: f64,
}

/// Run the §7 inference-pruning ablation: on an 8-service discrete model,
/// query an upstream service's posterior — everything downstream is
/// barren. (The environment is kept small and the bins coarse because the
/// *unpruned* comparator must materialize `D`'s deterministic CPD as a
/// dense factor of `binsⁿ⁺¹` entries — the very exponential object the
/// paper's Eq. 4 construction avoids learning; pruning sidesteps
/// materializing it at all.)
pub fn inference_pruning(seed: u64) -> PruningAblation {
    let n = 8usize;
    let mut env = Environment::random(n, ScenarioOptions::default(), seed);
    let (train, _) = env.datasets(800, 1, seed ^ 3);
    let model = KertBn::build_discrete(
        &env.knowledge,
        &train,
        DiscreteKertOptions {
            bins: 4,
            ..Default::default()
        },
    )
    .expect("builds");

    // Target: a root service (no parents): maximal downstream barrenness.
    let target = model
        .network()
        .dag()
        .roots()
        .into_iter()
        .find(|&r| r < n)
        .expect("some service is a root");
    let evidence = Evidence::new();

    let reps = 5;
    let t0 = Instant::now();
    let mut full = Vec::new();
    for _ in 0..reps {
        full = posterior_marginal(model.network(), target, &evidence).expect("runs");
    }
    let full_secs = t0.elapsed().as_secs_f64() / reps as f64;

    let t1 = Instant::now();
    let mut pruned = Vec::new();
    for _ in 0..reps {
        pruned = posterior_marginal_pruned(model.network(), target, &evidence).expect("runs");
    }
    let pruned_secs = t1.elapsed().as_secs_f64() / reps as f64;

    let max_abs_diff = full
        .iter()
        .zip(pruned.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    PruningAblation {
        full_secs,
        pruned_secs,
        max_abs_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_structure_loses_interpretability_and_accuracy() {
        // §4.2's dismissal, verbatim: "not only is a learning-free NRT-BN
        // even less accurate (than a NRT-BN) by construction, but its use
        // will result in complete loss of model interpretability".
        let r = naive_baseline(77);
        assert_eq!(r.naive_service_edges, 0, "no causal edges survive");
        assert!(r.nrt_service_edges > 0, "K2 recovers causal edges");
        assert!(
            r.nrt_accuracy >= r.naive_accuracy - 0.02 * r.naive_accuracy.abs(),
            "learned NRT {} vs naive {}",
            r.nrt_accuracy,
            r.naive_accuracy
        );
        assert!(r.kert_accuracy.is_finite());
    }

    #[test]
    fn windowed_reconstruction_tracks_change_better_than_cumulative_update() {
        let r = update_vs_reconstruct(101);
        assert!(
            r.windowed_error < r.cumulative_error,
            "windowed {} vs cumulative {}",
            r.windowed_error,
            r.cumulative_error
        );
        assert!(r.cumulative_rows > r.windowed_rows);
    }

    #[test]
    fn pruning_is_exact_and_not_slower() {
        let r = inference_pruning(55);
        assert!(r.max_abs_diff < 1e-9, "pruning must be exact");
        // Pruned path should win clearly on a 17-node network with a
        // barren majority; allow slack for timing noise.
        assert!(
            r.pruned_secs <= r.full_secs,
            "pruned {} vs full {}",
            r.pruned_secs,
            r.full_secs
        );
    }
}
