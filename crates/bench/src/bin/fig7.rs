//! Regenerate Figure 7: pAccel — projected vs observed response-time
//! distribution after accelerating `X₄` to 90%.
//!
//! Usage: `cargo run --release -p kert-bench --bin fig7`

use kert_bench::{dump_json, fig7, table};

fn main() {
    eprintln!(
        "Figure 7: discrete KERT-BN on eDiaMoND, accelerating X4 to {:.0}%…",
        fig7::FACTOR * 100.0
    );
    let r = fig7::run(2026);

    println!("\nFigure 7 — pAccel: response-time densities (D, seconds)");
    let widths = [10, 10, 12, 12];
    table::header(&["d_value", "prior", "projected", "observed"], &widths);
    for (((v, a), b), c) in r
        .grid
        .iter()
        .zip(r.prior_density.iter())
        .zip(r.projected_density.iter())
        .zip(r.observed_density.iter())
    {
        table::row(
            &[
                format!("{v:.3}"),
                format!("{a:.3}"),
                format!("{b:.3}"),
                format!("{c:.3}"),
            ],
            &widths,
        );
    }
    println!(
        "\nprior mean     = {:.4} s\nprojected mean = {:.4} s\nobserved mean  = {:.4} s \
         (after actually accelerating X4)",
        r.prior_mean, r.projected_mean, r.observed_mean
    );
    println!(
        "\nShape check (paper): the projected posterior approximates the observed improved \
         response-time mean; the prior-vs-posterior gap gauges the action's benefit."
    );
    dump_json("fig7", &r);
}
