//! Regenerate Figure 8: relative threshold-violation-probability error
//! (KERT-BN vs NRT-BN with random-order K2 restarts) for the projected
//! response time after accelerating `X₄`.
//!
//! Usage: `cargo run --release -p kert-bench --bin fig8`

use kert_bench::{dump_json, fig8, table};

fn main() {
    eprintln!(
        "Figure 8: discrete KERT-BN vs NRT-BN ({} K2 restarts), {} training points, \
         projecting D after X4 → {:.0}%…",
        fig8::NRT_RESTARTS,
        fig8::TRAIN_SIZE,
        fig8::FACTOR * 100.0
    );
    let points = fig8::run(2026);

    println!("\nFigure 8 — relative threshold-violation error ε (Eq. 5)");
    let widths = [12, 10, 10, 10, 12, 12];
    table::header(
        &[
            "threshold",
            "P_real",
            "P_kert",
            "P_nrt",
            "eps_kert",
            "eps_nrt",
        ],
        &widths,
    );
    for p in &points {
        table::row(
            &[
                format!("{:.3}", p.threshold),
                format!("{:.3}", p.p_real),
                format!("{:.3}", p.p_kert),
                format!("{:.3}", p.p_nrt),
                format!("{:.3}", p.kert_error),
                format!("{:.3}", p.nrt_error),
            ],
            &widths,
        );
    }
    let (kert_err, nrt_err) = fig8::mean_errors(&points);
    println!("\nmean ε: KERT-BN = {kert_err:.3}, NRT-BN = {nrt_err:.3}");
    println!(
        "\nShape check (paper): despite the random-ordering optimization, NRT-BN's ε stays \
         above KERT-BN's across thresholds."
    );
    dump_json("fig8", &points);
}
