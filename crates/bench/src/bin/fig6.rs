//! Regenerate Figure 6: dComp — posterior vs prior distribution of the
//! unobservable `X₄` on the eDiaMoND test-bed.
//!
//! Usage: `cargo run --release -p kert-bench --bin fig6`

use kert_bench::{dump_json, fig6, table};

fn main() {
    eprintln!(
        "Figure 6: discrete KERT-BN on eDiaMoND, {} training points, X4 unobservable…",
        fig6::TRAIN_SIZE
    );
    let r = fig6::run(2026);

    println!("\nFigure 6 — dComp: prior vs posterior distribution of X4 (elapsed time, s)");
    let widths = [12, 10, 12];
    table::header(&["x4_value", "prior", "posterior"], &widths);
    for ((v, p), q) in r.support.iter().zip(r.prior.iter()).zip(r.posterior.iter()) {
        table::row(
            &[format!("{v:.4}"), format!("{p:.3}"), format!("{q:.3}")],
            &widths,
        );
    }
    println!(
        "\nprior mean      = {:.4} s (sd {:.4})\nposterior mean  = {:.4} s (sd {:.4})\nactual mean     = {:.4} s",
        r.prior_mean, r.prior_sd, r.posterior_mean, r.posterior_sd, r.actual_mean
    );
    println!(
        "\nShape check (paper): the posterior shifts from the (stale) prior toward the actual \
         elapsed time and becomes narrower/more deterministic."
    );
    dump_json("fig6", &r);
}
