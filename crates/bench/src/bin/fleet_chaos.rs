//! Run the fleet-scale chaos drill: 10³ agents, sharded collection, a
//! coordinator kill mid-drill, snapshot/warm-restore — with wall-clock
//! collector throughput.
//!
//! Usage: `cargo run --release -p kert-bench --bin fleet_chaos`
//! (`KERT_FLEET_SEED`, `KERT_FLEET_AGENTS`, `KERT_FLEET_EPOCHS` override;
//! `--quick` / `KERT_BENCH_QUICK=1` shrinks the fleet and skips the
//! committed artifacts.)

use kert_bench::{dump_json, env_usize, fleet, table, timing};
use serde::Value;

fn main() {
    let quick = timing::quick_mode();
    let seed = env_usize("KERT_FLEET_SEED", 3) as u64;
    let n_agents = env_usize(
        "KERT_FLEET_AGENTS",
        if quick { 200 } else { fleet::FLEET_AGENTS },
    );
    let epochs = env_usize("KERT_FLEET_EPOCHS", fleet::FLEET_EPOCHS);
    eprintln!(
        "Fleet chaos: {n_agents} agents × {epochs} epochs, {} shards, \
         fault rate {}, coordinator killed at epoch {}, seed {seed}…",
        fleet::FLEET_SHARDS,
        fleet::FLEET_FAULT_RATE,
        fleet::CRASH_EPOCH
    );

    let artifact = fleet::run(seed, n_agents, epochs);
    let r = &artifact.report;

    println!("\nFleet chaos — rung mix and restores per epoch");
    let widths = [6, 6, 6, 6, 9, 8, 18];
    table::header(
        &[
            "epoch",
            "fresh",
            "stale",
            "prior",
            "restored",
            "simwin",
            "fingerprint",
        ],
        &widths,
    );
    for e in &r.epochs {
        table::row(
            &[
                format!("{}", e.epoch),
                format!("{}", e.fresh),
                format!("{}", e.stale),
                format!("{}", e.prior),
                if e.restored {
                    if e.warm { "warm" } else { "cold" }.to_string()
                } else {
                    "-".to_string()
                },
                format!("{}", e.sim_windows_max),
                e.cpd_fingerprint.clone(),
            ],
            &widths,
        );
    }
    println!(
        "\ncrashes {} / warm restores {}; rungs {} fresh, {} stale, {} prior",
        r.coordinator_crashes, r.warm_restores, r.total_fresh, r.total_stale, r.total_prior
    );
    println!(
        "simulated speedup {:.2}× over {} shards; wall {:.1} ms, \
         {:.0} reports/s, {:.0} rows/s",
        r.simulated_speedup,
        r.n_shards,
        artifact.wall_ms,
        artifact.reports_per_sec,
        artifact.rows_per_sec
    );

    if quick {
        eprintln!("(quick mode: committed artifacts left untouched)");
        return;
    }
    dump_json("fleet_chaos", &artifact);
    timing::merge_bench_perf(
        "fleet",
        Value::Map(vec![
            ("n_agents".into(), Value::Num(r.n_agents as f64)),
            ("n_shards".into(), Value::Num(r.n_shards as f64)),
            ("epochs".into(), Value::Num(r.epochs.len() as f64)),
            ("simulated_speedup".into(), Value::Num(r.simulated_speedup)),
            ("wall_ms".into(), Value::Num(artifact.wall_ms)),
            (
                "reports_per_sec".into(),
                Value::Num(artifact.reports_per_sec),
            ),
            ("rows_per_sec".into(), Value::Num(artifact.rows_per_sec)),
        ]),
    );
}
