//! Ablation studies: the design choices the paper argues in prose,
//! measured.
//!
//! Usage: `cargo run --release -p kert-bench --bin ablations`

use kert_bench::{ablations, dump_json, table};

fn main() {
    // ── 1. Learning-free naive baseline (§4.2) ─────────────────────────
    eprintln!("Ablation 1/3: learning-free Naive-BN baseline…");
    let naive = ablations::naive_baseline(2026);
    println!("\nAblation 1 — the naive structure the paper dismissed (discrete, 1200 points)");
    let widths = [22, 14, 16];
    table::header(&["model", "log10 p(test)", "svc-svc edges"], &widths);
    table::row(
        &[
            "KERT-BN".into(),
            format!("{:.1}", naive.kert_accuracy),
            "5 (given)".into(),
        ],
        &widths,
    );
    table::row(
        &[
            "NRT-BN (K2)".into(),
            format!("{:.1}", naive.nrt_accuracy),
            naive.nrt_service_edges.to_string(),
        ],
        &widths,
    );
    table::row(
        &[
            "Naive (learning-free)".into(),
            format!("{:.1}", naive.naive_accuracy),
            naive.naive_service_edges.to_string(),
        ],
        &widths,
    );
    println!(
        "→ the naive shortcut erases every service-to-service edge (the interpretability \
         loss §4.2 calls \"complete\") and does not out-fit the K2-learned NRT-BN. (On the \
         raw-likelihood metric the hard deterministic-leak CPD costs KERT-BN a little — \
         the paper's §5 accuracy comparisons accordingly use the ε metric, Figure 8.)"
    );
    dump_json("ablation_naive", &naive);

    // ── 2. Sequential update vs windowed reconstruction (§2) ───────────
    eprintln!("\nAblation 2/3: cumulative update vs windowed reconstruction…");
    let upd = ablations::update_vs_reconstruct(2026);
    println!("\nAblation 2 — stale data after an environment change (X4 made 2× faster)");
    let widths2 = [26, 16, 14];
    table::header(&["scheme", "|ΔE[D]| (s)", "train rows"], &widths2);
    table::row(
        &[
            "windowed reconstruction".into(),
            format!("{:.4}", upd.windowed_error),
            upd.windowed_rows.to_string(),
        ],
        &widths2,
    );
    table::row(
        &[
            "cumulative update".into(),
            format!("{:.4}", upd.cumulative_error),
            upd.cumulative_rows.to_string(),
        ],
        &widths2,
    );
    println!(
        "→ \"out-of-date information lingers in the updated model and adversely impacts \
         its accuracy\" (§2), quantified."
    );
    dump_json("ablation_update", &upd);

    // ── 3. Barren-node pruning for inference (§7) ──────────────────────
    eprintln!("\nAblation 3/3: barren-node pruning for post-construction inference…");
    let pruning = ablations::inference_pruning(2026);
    println!("\nAblation 3 — probability-assessment cost (8-service discrete model)");
    let widths3 = [22, 14];
    table::header(&["query path", "secs/query"], &widths3);
    table::row(
        &["full VE".into(), format!("{:.6}", pruning.full_secs)],
        &widths3,
    );
    table::row(
        &[
            "barren-pruned VE".into(),
            format!("{:.6}", pruning.pruned_secs),
        ],
        &widths3,
    );
    println!(
        "→ identical posteriors (max |Δ| = {:.2e}) at {:.1}× lower cost — the §7 \
         future-work direction realized.",
        pruning.max_abs_diff,
        pruning.full_secs / pruning.pruned_secs.max(1e-12)
    );
    dump_json("ablation_pruning", &pruning);
}
