//! Run the fault sweep: degraded-mode accuracy vs monitoring fault rate.
//!
//! Usage: `cargo run --release -p kert-bench --bin fault_sweep`
//! (`KERT_FAULT_SEED=n` overrides the seed.)

use kert_bench::{dump_json, env_usize, fault_sweep, table};

fn main() {
    let seed = env_usize("KERT_FAULT_SEED", 2026) as u64;
    eprintln!(
        "Fault sweep: eDiaMoND, {}-row windows, agent {} crashed, rates {:?}, seed {seed}…",
        fault_sweep::WINDOW_ROWS,
        fault_sweep::CRASHED_SERVICE,
        fault_sweep::FAULT_RATES
    );
    let r = fault_sweep::run(seed);

    println!("\nFault sweep — X4 estimate error and model health vs fault rate");
    let widths = [6, 6, 6, 6, 7, 8, 14, 12, 10];
    table::header(
        &[
            "rate",
            "fresh",
            "stale",
            "prior",
            "faults",
            "retries",
            "fallback_err",
            "dcomp_err",
            "log10_lik",
        ],
        &widths,
    );
    for p in &r.points {
        table::row(
            &[
                format!("{:.2}", p.fault_rate),
                format!("{}", p.fresh_nodes),
                format!("{}", p.stale_nodes),
                format!("{}", p.prior_nodes),
                format!("{}", p.total_faults),
                format!("{}", p.total_retries),
                format!("{:.4}", p.x4_fallback_error),
                format!("{:.4}", p.x4_dcomp_error),
                format!("{:.1}", p.accuracy),
            ],
            &widths,
        );
    }
    println!(
        "\nShape check: the resilient rebuild never fails; the dComp-compensated estimate of \
         the crashed service stays below the stale-fallback error at every rate."
    );
    dump_json("fault_sweep", &r);
}
