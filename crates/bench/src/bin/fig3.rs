//! Regenerate Figure 3: KERT-BN vs NRT-BN over training-set size
//! (30 services, continuous models, 100 test points).
//!
//! Usage: `cargo run --release -p kert-bench --bin fig3`
//! Override repetitions with `KERT_REPS`, e.g. `KERT_REPS=2` for a quick
//! pass (the paper uses 10).

use kert_bench::{dump_json, env_usize, fig3, table};

fn main() {
    let reps = env_usize("KERT_REPS", 10);
    let sizes = fig3::TRAIN_SIZES;
    eprintln!(
        "Figure 3: {} services, training sizes {:?}, {} repetitions…",
        fig3::N_SERVICES,
        sizes,
        reps
    );
    let points = fig3::run(&sizes, reps, 2026);

    println!("\nFigure 3 — construction time and data-fitting accuracy vs training size");
    let widths = [10, 12, 12, 14, 14, 10, 10];
    table::header(
        &[
            "train",
            "kert_time",
            "nrt_time",
            "kert_log10L",
            "nrt_log10L",
            "kert_sd",
            "nrt_sd",
        ],
        &widths,
    );
    for p in &points {
        table::row(
            &[
                p.train_size.to_string(),
                table::secs(p.kert_time),
                table::secs(p.nrt_time),
                format!("{:.1}", p.kert_accuracy),
                format!("{:.1}", p.nrt_accuracy),
                format!("{:.1}", p.kert_accuracy_sd),
                format!("{:.1}", p.nrt_accuracy_sd),
            ],
            &widths,
        );
    }
    println!(
        "\nShape check (paper): both times linear in training size; KERT-BN cheaper with a \
         growing gap; KERT-BN accuracy ≥ NRT-BN and stable even at 36 points."
    );
    dump_json("fig3", &points);
}
