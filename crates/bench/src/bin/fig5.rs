//! Regenerate Figure 5: decentralized vs centralized parameter-learning
//! time over environment size (20 random KERT-BNs per size).
//!
//! Usage: `cargo run --release -p kert-bench --bin fig5`
//! `KERT_MODELS` overrides models per size (paper: 20); `KERT_MAX_N` caps
//! the environment size sweep.

use kert_bench::{dump_json, env_usize, fig5, table};

fn main() {
    let models = env_usize("KERT_MODELS", fig5::MODELS_PER_SIZE);
    let max_n = env_usize("KERT_MAX_N", 100);
    let train = env_usize("KERT_TRAIN", fig5::TRAIN_SIZE);
    let counts: Vec<usize> = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    eprintln!(
        "Figure 5: sizes {counts:?}, {models} random KERT-BNs per size, {train} training points…"
    );
    let points = fig5::run(&counts, models, train, 555);

    println!("\nFigure 5 — decentralized vs centralized parameter-learning time");
    let widths = [10, 16, 16, 10];
    table::header(
        &["services", "decentralized", "centralized", "speedup"],
        &widths,
    );
    for p in &points {
        table::row(
            &[
                p.n_services.to_string(),
                table::secs(p.decentralized_time),
                table::secs(p.centralized_time),
                format!(
                    "{:.1}x",
                    p.centralized_time / p.decentralized_time.max(1e-12)
                ),
            ],
            &widths,
        );
    }
    println!(
        "\nShape check (paper): decentralized constantly below centralized, and the advantage \
         grows with the number of services (thus the number of CPDs)."
    );
    dump_json("fig5", &points);
}
