//! Regenerate Figure 4: KERT-BN vs NRT-BN over environment size
//! (10–100 services, 36 training points, continuous models).
//!
//! Usage: `cargo run --release -p kert-bench --bin fig4`
//! `KERT_REPS` overrides repetitions (paper: 10); `KERT_MAX_N` caps the
//! largest environment for quick passes.

use kert_bench::{dump_json, env_usize, fig4, table};

fn main() {
    let reps = env_usize("KERT_REPS", 10);
    let max_n = env_usize("KERT_MAX_N", 100);
    let counts: Vec<usize> = fig4::SERVICE_COUNTS
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    eprintln!(
        "Figure 4: environment sizes {counts:?}, {} training points, {reps} repetitions…",
        fig4::TRAIN_SIZE
    );
    let points = fig4::run(&counts, reps, 4096);

    println!("\nFigure 4 — construction time and accuracy vs environment size (36 points)");
    let widths = [10, 12, 12, 14, 14];
    table::header(
        &[
            "services",
            "kert_time",
            "nrt_time",
            "kert_log10L",
            "nrt_log10L",
        ],
        &widths,
    );
    for p in &points {
        table::row(
            &[
                p.n_services.to_string(),
                table::secs(p.kert_time),
                table::secs(p.nrt_time),
                format!("{:.1}", p.kert_accuracy),
                format!("{:.1}", p.nrt_accuracy),
            ],
            &widths,
        );
    }

    // §4.2's feasibility observation at T_CON = 2 minutes.
    let t_con = 120.0;
    println!(
        "\nFeasibility at T_CON = 2 min: NRT-BN up to {:?} services, KERT-BN up to {:?}.",
        fig4::max_feasible_size(&points, t_con, false),
        fig4::max_feasible_size(&points, t_con, true),
    );
    println!(
        "Shape check (paper): NRT-BN superlinear in services (infeasible beyond ~60 at a \
         2-minute interval on 2007 hardware); KERT-BN flat; KERT-BN at least as accurate."
    );
    dump_json("fig4", &points);
}
