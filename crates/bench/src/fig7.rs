//! Figure 7 — pAccel: projected vs observed response time after
//! accelerating `X₄`.
//!
//! Paper setting (§5.2): with the discrete KERT-BN of the test-bed,
//! compute the posterior response-time distribution given `X₄` reduced to
//! about 90% of its current mean (a local resource action), then compare
//! with the *actual* response-time distribution measured after the action.
//! The projection should approximate the observed improved mean well —
//! much better than the unaccelerated prior does.

use kert_core::posterior::McOptions;
use kert_core::{paccel, DiscreteKertOptions, KertBn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Training points (§5: 1200).
pub const TRAIN_SIZE: usize = 1200;
/// The accelerated service: X₄ = node 3.
pub const ACCELERATED_SERVICE: usize = 3;
/// Acceleration factor (paper: "reduced to about 90% of what it was").
pub const FACTOR: f64 = 0.9;

/// The Figure-7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Grid of response-time values for the plotted densities.
    pub grid: Vec<f64>,
    /// Model prior density of `D` (before acceleration) on the grid.
    pub prior_density: Vec<f64>,
    /// Projected density of `D` given the acceleration, on the grid.
    pub projected_density: Vec<f64>,
    /// Observed density of `D` after actually accelerating, on the grid.
    pub observed_density: Vec<f64>,
    /// Prior mean response time.
    pub prior_mean: f64,
    /// Projected mean response time.
    pub projected_mean: f64,
    /// Observed mean response time after the action.
    pub observed_mean: f64,
}

/// Run the Figure-7 experiment.
pub fn run(seed: u64) -> Fig7Result {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(TRAIN_SIZE, 1, seed);
    let model = KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default())
        .expect("discrete KERT-BN builds");

    // What-if projection: X₄ at 90% of its current mean.
    let x4_mean = kert_linalg::stats::mean(&train.column(ACCELERATED_SERVICE));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ac1);
    let outcome = paccel(
        model.network(),
        model.discretizer(),
        model.d_node(),
        ACCELERATED_SERVICE,
        FACTOR * x4_mean,
        McOptions::default(),
        &mut rng,
    )
    .expect("pAccel runs on the discrete model");

    // Ground truth: actually perform the resource action and measure.
    env.scale_service(ACCELERATED_SERVICE, FACTOR);
    let (after, _) = env.datasets(TRAIN_SIZE, 1, seed ^ 0x0b5e);
    let observed: Vec<f64> = after.column(model.d_node());
    let observed_mean = kert_linalg::stats::mean(&observed);

    // Common plotting grid covering all three distributions.
    let d_train = train.column(model.d_node());
    let (lo1, hi1) = kert_linalg::stats::min_max(&d_train);
    let (lo2, hi2) = kert_linalg::stats::min_max(&observed);
    let (lo, hi) = (lo1.min(lo2), hi1.max(hi2));
    let bins = 24;
    let (grid, prior_density) = outcome.prior_d.density_on_grid(lo, hi, bins);
    let (_, projected_density) = outcome.projected_d.density_on_grid(lo, hi, bins);
    let observed_density = empirical_density(&observed, lo, hi, bins);

    Fig7Result {
        grid,
        prior_density,
        projected_density,
        observed_density,
        prior_mean: outcome.prior_d.mean(),
        projected_mean: outcome.projected_d.mean(),
        observed_mean,
    }
}

/// Normalized histogram of samples on an equal-width grid.
pub fn empirical_density(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    let width = (hi - lo) / bins as f64;
    let mut mass = vec![0.0; bins];
    for &v in samples {
        if v < lo || v > hi {
            continue;
        }
        let b = (((v - lo) / width) as usize).min(bins - 1);
        mass[b] += 1.0;
    }
    let z: f64 = mass.iter().sum();
    if z > 0.0 {
        for m in &mut mass {
            *m /= z;
        }
    }
    mass
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_approximates_the_observed_accelerated_mean() {
        let r = run(77);
        // Figure 7's claim: the posterior approximates the actual improved
        // response-time mean better than the prior.
        assert!(
            (r.projected_mean - r.observed_mean).abs() < (r.prior_mean - r.observed_mean).abs(),
            "projected {} vs observed {} (prior {})",
            r.projected_mean,
            r.observed_mean,
            r.prior_mean
        );
        // Acceleration helps: projection predicts an improvement.
        assert!(r.projected_mean <= r.prior_mean);
        // Densities are normalized.
        for d in [&r.prior_density, &r.projected_density, &r.observed_density] {
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_density_bins_and_normalizes() {
        let d = empirical_density(&[0.5, 1.5, 1.6, 9.0], 0.0, 2.0, 2);
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 2.0 / 3.0).abs() < 1e-12);
    }
}
