//! A minimal, dependency-free micro-benchmark harness.
//!
//! The offline build vendors every external crate, so criterion is out;
//! this module provides the small slice of it the kernel benchmarks need:
//! warm-up, batch-size calibration, a median over repeated samples, and a
//! merged `BENCH_perf.json` at the workspace root so before/after numbers
//! from separate bench binaries land in one committed artifact.
//!
//! Medians (not means) because micro-benchmarks on a shared host see
//! one-sided noise — scheduler preemption only ever makes a sample slower.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// True when the bench binary runs as a CI smoke test: `--quick` on the
/// command line (cargo forwards arguments after `--` to the binary) or
/// `KERT_BENCH_QUICK=1`. Quick mode shrinks calibration targets and sample
/// counts so every bench executes in milliseconds, and skips the
/// `BENCH_perf.json` merge — smoke numbers would be garbage and must never
/// overwrite the committed medians.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("KERT_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// One benchmark's result: median nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (also the JSON key).
    pub name: String,
    /// Median per-iteration time across samples, in nanoseconds.
    pub median_ns: f64,
    /// Iterations per timed sample (calibrated).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Time `f`, returning the median per-iteration nanoseconds.
///
/// Calibration doubles the batch size until one batch costs ≥ 2 ms (so the
/// `Instant` overhead vanishes), then takes `KERT_BENCH_SAMPLES` samples
/// (default 11). The closure's result is `black_box`ed to keep the
/// optimizer honest.
pub fn bench<T, F: FnMut() -> T>(name: &str, mut f: F) -> BenchResult {
    let (batch_target_ns, default_samples) = if quick_mode() {
        (50_000u128, 3)
    } else {
        (2_000_000u128, 11)
    };
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= batch_target_ns || iters >= 1 << 22 {
            break;
        }
        // Jump straight toward the target batch once we have an estimate.
        let per_iter = (elapsed / iters as u128).max(1);
        iters = ((batch_target_ns + batch_target_ns / 4) / per_iter)
            .clamp(iters as u128 * 2, 1 << 22) as u64;
    }
    let n_samples = crate::env_usize("KERT_BENCH_SAMPLES", default_samples).max(3);
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let result = BenchResult {
        name: name.to_string(),
        median_ns,
        iters_per_sample: iters,
        samples: n_samples,
    };
    println!(
        "{:<44} {:>14}   ({} iters × {} samples)",
        result.name,
        format_ns(median_ns),
        iters,
        n_samples
    );
    result
}

/// Human-readable nanoseconds.
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Path of the committed benchmark artifact (workspace root).
fn bench_perf_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_perf.json")
}

/// Merge one section of results into `BENCH_perf.json`.
///
/// Each bench binary owns a top-level key (`"inference"`, `"learning"`,
/// `"construction"`) and replaces only its own section, so running the
/// binaries in any order or subset keeps the others' numbers. The host
/// core count is recorded every time: the decentralized-vs-centralized
/// comparison only shows a wall-clock win with real parallel hardware.
pub fn merge_bench_perf(section: &str, entries: serde::Value) {
    use serde::Value;

    if quick_mode() {
        eprintln!("(quick mode: section {section:?} not merged into BENCH_perf.json)");
        return;
    }
    let path = bench_perf_path();
    let mut root: Vec<(String, Value)> = match std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::value_from_str(&s).ok())
    {
        Some(Value::Map(m)) => m,
        _ => Vec::new(),
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut set = |key: &str, value: Value| {
        if let Some(slot) = root.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            root.push((key.to_string(), value));
        }
    };
    set("host_cores", Value::Num(cores as f64));
    set(section, entries);
    match serde_json::to_string_pretty(&Value::Map(root)) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(merged section {section:?} into {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize bench results: {e}"),
    }
}

/// Host-core-independent speedup of running `node_times` in parallel
/// (one node per machine, latency = the slowest) instead of sequentially
/// (latency = the sum): `Σ node_times / max(node_times)`.
///
/// This is the quantity the paper's decentralized-learning claim is about —
/// each agent learns its own CPD on its own host. A wall-clock comparison
/// of the worker pool on the benchmark host measures the host's core
/// count plus thread overhead, not the architecture; on a 1-core CI box it
/// even reads below 1×. Report both, labeled.
pub fn simulated_speedup(node_times: &[Duration]) -> f64 {
    let max = node_times.iter().max().copied().unwrap_or_default();
    if max.is_zero() {
        return 1.0;
    }
    let sum: Duration = node_times.iter().sum();
    sum.as_secs_f64() / max.as_secs_f64()
}

/// Convenience: a `(median_ns, speedup-vs-before)` JSON object.
pub fn before_after(before: &BenchResult, after: &BenchResult) -> serde::Value {
    use serde::Value;
    Value::Map(vec![
        ("before_ns".into(), Value::Num(before.median_ns)),
        ("after_ns".into(), Value::Num(after.median_ns)),
        (
            "speedup".into(),
            Value::Num(before.median_ns / after.median_ns),
        ),
    ])
}
