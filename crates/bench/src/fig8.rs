//! Figure 8 — relative threshold-violation error, KERT-BN vs NRT-BN.
//!
//! Paper setting (§5.3): both models are trained on 1200 test-bed points;
//! NRT-BN gets the luxury treatment — K2 re-run with many random orderings
//! (time allows, since the test-bed is small) keeping the best structure.
//! Both then project the response-time distribution after accelerating
//! `X₄`, and are scored on
//! `ε = |P_bn(D > h) − P_real(D > h)| / P_real(D > h)` against the real
//! post-acceleration measurements, across six thresholds.

use kert_core::posterior::shifted_posterior;
use kert_core::violation::{default_thresholds, empirical_violation_probability};
use kert_core::{DiscreteKertOptions, KertBn, NrtBn, NrtOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Training points (§5: 1200).
pub const TRAIN_SIZE: usize = 1200;
/// The accelerated service: X₄ = node 3.
pub const ACCELERATED_SERVICE: usize = 3;
/// Acceleration factor.
pub const FACTOR: f64 = 0.9;
/// Number of thresholds (paper: six).
pub const N_THRESHOLDS: usize = 6;
/// K2 random-ordering restarts for the optimized NRT-BN.
pub const NRT_RESTARTS: usize = 10;
/// States per variable. Finer than the core default: violation
/// probabilities are tail integrals, where discretization error dominates;
/// 1200 training points support 10 bins comfortably.
pub const BINS: usize = 10;

/// One threshold's errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Point {
    /// The response-time threshold `h`.
    pub threshold: f64,
    /// Real `P(D > h)` after the acceleration.
    pub p_real: f64,
    /// KERT-BN's projected `P(D > h)`.
    pub p_kert: f64,
    /// NRT-BN's projected `P(D > h)`.
    pub p_nrt: f64,
    /// ε for KERT-BN.
    pub kert_error: f64,
    /// ε for NRT-BN.
    pub nrt_error: f64,
}

/// Run the Figure-8 experiment.
pub fn run(seed: u64) -> Vec<Fig8Point> {
    let mut env = Environment::ediamond(ScenarioOptions::default());
    let (train, _) = env.datasets(TRAIN_SIZE, 1, seed);

    let kert = KertBn::build_discrete(
        &env.knowledge,
        &train,
        DiscreteKertOptions {
            bins: BINS,
            ..Default::default()
        },
    )
    .expect("discrete KERT-BN builds");
    let mut nrt_rng = StdRng::seed_from_u64(seed ^ 0x41);
    let nrt = NrtBn::build_discrete(
        &train,
        NrtOptions {
            restarts: NRT_RESTARTS,
            bins: BINS,
            ..Default::default()
        },
        &mut nrt_rng,
    )
    .expect("discrete NRT-BN builds");

    // Projected D given the acceleration, from each model: the what-if is a
    // *distribution shift* of X₄ (every request gets faster), so project
    // with X₄'s scaled empirical distribution rather than conditioning at a
    // single point — point evidence would collapse X₄'s variability and
    // squeeze both projections far below the real spread.
    let accelerated_x4: Vec<f64> = train
        .column(ACCELERATED_SERVICE)
        .iter()
        .map(|&v| FACTOR * v)
        .collect();
    let d_node = kert.d_node();
    let kert_post = shifted_posterior(
        kert.network(),
        kert.discretizer()
            .expect("discrete KERT-BN has a discretizer"),
        ACCELERATED_SERVICE,
        &accelerated_x4,
        d_node,
    )
    .expect("KERT-BN posterior");
    let nrt_post = shifted_posterior(
        nrt.network(),
        nrt.discretizer()
            .expect("discrete NRT-BN has a discretizer"),
        ACCELERATED_SERVICE,
        &accelerated_x4,
        d_node,
    )
    .expect("NRT-BN posterior");

    // Real distribution after actually accelerating.
    env.scale_service(ACCELERATED_SERVICE, FACTOR);
    let (after, _) = env.datasets(TRAIN_SIZE, 1, seed ^ 0x43);
    let real_d = after.column(d_node);

    // Thresholds spanning the central mass of the real distribution.
    let thresholds = default_thresholds(&real_d, N_THRESHOLDS, 0.15, 0.85);
    thresholds
        .into_iter()
        .map(|h| {
            let p_real = empirical_violation_probability(&real_d, h).max(1e-6);
            let p_kert = kert_post.exceedance(h);
            let p_nrt = nrt_post.exceedance(h);
            Fig8Point {
                threshold: h,
                p_real,
                p_kert,
                p_nrt,
                kert_error: (p_kert - p_real).abs() / p_real,
                nrt_error: (p_nrt - p_real).abs() / p_real,
            }
        })
        .collect()
}

/// Mean ε across thresholds (summary statistic for assertions).
pub fn mean_errors(points: &[Fig8Point]) -> (f64, f64) {
    let n = points.len().max(1) as f64;
    (
        points.iter().map(|p| p.kert_error).sum::<f64>() / n,
        points.iter().map(|p| p.nrt_error).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kert_violation_error_matches_luxury_nrt_without_search() {
        let points = run(2024);
        assert_eq!(points.len(), N_THRESHOLDS);
        let (kert_err, nrt_err) = mean_errors(&points);
        // The paper's claim: the generated model is as accurate as the
        // exhaustively searched one at a fraction of the construction cost
        // (KERT does zero score evaluations; NRT runs K2 ten times). With
        // the distribution-shift projection both land within a few percent
        // of the real violation probabilities; require KERT to stay in that
        // regime and within 25% of NRT's error, rather than demanding it
        // win a coin-flip-sized gap.
        assert!(
            kert_err < 0.10,
            "mean ε: kert {kert_err} not in the accurate regime"
        );
        assert!(
            kert_err < nrt_err * 1.25 + 0.01,
            "mean ε: kert {kert_err} vs nrt {nrt_err}"
        );
        for p in &points {
            assert!(p.p_real > 0.0 && p.p_real <= 1.0);
            assert!(p.kert_error.is_finite() && p.nrt_error.is_finite());
        }
    }
}
