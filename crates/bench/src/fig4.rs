//! Figure 4 — KERT-BN vs NRT-BN over environment size.
//!
//! Paper setting: 10–100 simulated services, training sets of 36 points
//! (`α = 12`, `T_CON` = 2 min — the fast-reconstruction regime), 10
//! repetitions. The headline: NRT-BN's construction time grows
//! superlinearly with the node count (the K2 predecessor scan), making it
//! infeasible at short construction intervals beyond ~60 services, while
//! KERT-BN stays flat; KERT-BN is also more accurate at this tiny training
//! size for every environment size.

use serde::{Deserialize, Serialize};

use crate::fig3;

/// Paper parameters for this figure.
pub const TRAIN_SIZE: usize = 36;
/// Environment sizes swept in the paper.
pub const SERVICE_COUNTS: [usize; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

/// One point of the Figure-4 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Number of services in the environment.
    pub n_services: usize,
    /// Mean KERT-BN construction time (s).
    pub kert_time: f64,
    /// Mean NRT-BN construction time (s).
    pub nrt_time: f64,
    /// Mean KERT-BN accuracy, `log₁₀ p(test | model)`.
    pub kert_accuracy: f64,
    /// Mean NRT-BN accuracy.
    pub nrt_accuracy: f64,
}

/// Run the Figure-4 experiment.
pub fn run(service_counts: &[usize], reps: usize, base_seed: u64) -> Vec<Fig4Point> {
    service_counts
        .iter()
        .map(|&n| {
            let pts = fig3::run_sized(n, &[TRAIN_SIZE], reps, base_seed ^ (n as u64) << 8);
            let p = &pts[0];
            Fig4Point {
                n_services: n,
                kert_time: p.kert_time,
                nrt_time: p.nrt_time,
                kert_accuracy: p.kert_accuracy,
                nrt_accuracy: p.nrt_accuracy,
            }
        })
        .collect()
}

/// Feasibility check from §4.2: the largest environment size at which a
/// model can still be rebuilt within `t_con` seconds.
pub fn max_feasible_size(points: &[Fig4Point], t_con: f64, kert: bool) -> Option<usize> {
    points
        .iter()
        .filter(|p| (if kert { p.kert_time } else { p.nrt_time }) <= t_con)
        .map(|p| p.n_services)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrt_time_grows_much_faster_than_kert_time() {
        // Scaled-down Figure 4: sizes 8 and 32; the NRT/KERT time ratio
        // must grow with environment size (superlinear vs flat).
        let points = run(&[8, 32], 2, 11);
        let ratio_small = points[0].nrt_time / points[0].kert_time.max(1e-9);
        let ratio_large = points[1].nrt_time / points[1].kert_time.max(1e-9);
        assert!(
            ratio_large > ratio_small,
            "ratio should grow: {ratio_small} -> {ratio_large}"
        );
        // And KERT must stay cheap in absolute terms at both sizes.
        for p in &points {
            assert!(p.kert_time < p.nrt_time);
        }
    }

    #[test]
    fn kert_is_more_accurate_at_tiny_training_sets() {
        let points = run(&[10], 3, 13);
        assert!(
            points[0].kert_accuracy >= points[0].nrt_accuracy,
            "kert {} vs nrt {}",
            points[0].kert_accuracy,
            points[0].nrt_accuracy
        );
    }

    #[test]
    fn feasibility_helper() {
        let pts = vec![
            Fig4Point {
                n_services: 10,
                kert_time: 0.1,
                nrt_time: 1.0,
                kert_accuracy: 0.0,
                nrt_accuracy: 0.0,
            },
            Fig4Point {
                n_services: 20,
                kert_time: 0.1,
                nrt_time: 5.0,
                kert_accuracy: 0.0,
                nrt_accuracy: 0.0,
            },
        ];
        assert_eq!(max_feasible_size(&pts, 2.0, false), Some(10));
        assert_eq!(max_feasible_size(&pts, 2.0, true), Some(20));
        assert_eq!(max_feasible_size(&pts, 0.01, false), None);
    }
}
