//! Fault sweep — degraded-mode accuracy vs fault rate.
//!
//! The robustness experiment the paper's §5.1 motivates but never runs:
//! keep the autonomic loop alive while the monitoring plane fails. Setup,
//! on the eDiaMoND test-bed:
//!
//! 1. **Bootstrap** under an *old* regime (the remote image locator `X₄`
//!    40% slower): a healthy window seeds the server's CPD cache and a
//!    clean model supplies the response-CPD noise σ.
//! 2. **The environment improves** (resource action on the remote site) —
//!    the cached `X₄` CPD is now obsolete.
//! 3. **Faults strike**: `X₄`'s agent crashes outright, and every other
//!    agent drops / corrupts / truncates / delays its report with
//!    probability scaled by the sweep's fault rate.
//! 4. The server **rebuilds resiliently**: fresh fits where reports
//!    arrive, the stale cache where they don't — construction always
//!    succeeds, with [`kert_core::KertBn::health`] recording the damage.
//!
//! The question per fault rate: how far off is the degraded model's own
//! estimate of `X₄` (the stale-CPD marginal), and how much of that error
//! does dComp recover by conditioning on the healthy observables and the
//! server-measured response time?

use kert_agents::CpdCache;
use kert_agents::FaultyFleet;
use kert_core::autonomic::compensate_degraded;
use kert_core::posterior::McOptions;
use kert_core::{query_posterior, ContinuousKertOptions, KertBn, ResilientKertOptions};
use kert_sim::monitor::agents_from_edges;
use kert_sim::{FaultInjector, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Fault rates swept (per-attempt drop probability of the healthy agents;
/// corruption/truncation/delay scale with it).
pub const FAULT_RATES: &[f64] = &[0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
/// Rows per construction window.
pub const WINDOW_ROWS: usize = 300;
/// Rows of clean evaluation data per point.
pub const EVAL_ROWS: usize = 500;
/// The service whose agent crashes: X₄ = `image_locator_remote` = node 3.
pub const CRASHED_SERVICE: usize = 3;
/// How much slower X₄ was in the bootstrap (stale) regime.
pub const STALE_FACTOR: f64 = 1.4;

/// One point of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepPoint {
    /// The injected fault rate.
    pub fault_rate: f64,
    /// Nodes whose CPD was freshly fit this window.
    pub fresh_nodes: usize,
    /// Nodes that fell back to the stale cache.
    pub stale_nodes: usize,
    /// Nodes that fell all the way to the prior.
    pub prior_nodes: usize,
    /// Fault events observed across all report paths.
    pub total_faults: usize,
    /// Retransmissions spent collecting reports.
    pub total_retries: usize,
    /// Rows dropped by reconciliation (NaN/outlier poisoning).
    pub rows_dropped: usize,
    /// Actual current mean elapsed time of the crashed service.
    pub x4_actual_mean: f64,
    /// |model marginal − actual|: the fallback-only estimate, resting on
    /// the obsolete stale CPD.
    pub x4_fallback_error: f64,
    /// |dComp posterior mean − actual|: the compensated estimate from
    /// healthy observables + response time.
    pub x4_dcomp_error: f64,
    /// Model accuracy `log₁₀ p(clean test | model)` — degrades with rate.
    pub accuracy: f64,
}

/// The committed sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepResult {
    /// Master seed of the run.
    pub seed: u64,
    /// One point per fault rate.
    pub points: Vec<FaultSweepPoint>,
}

/// The per-agent fault plan at a sweep rate: the crashed agent never
/// reports; every other agent is lossy in all four modes.
fn sweep_plans(rate: f64) -> Vec<FaultPlan> {
    (0..6)
        .map(|agent| {
            if agent == CRASHED_SERVICE {
                FaultPlan::crash_at(0)
            } else {
                FaultPlan {
                    drop_prob: rate,
                    corrupt_prob: rate * 0.5,
                    truncate_prob: rate * 0.5,
                    truncate_keep: 0.5,
                    delay_prob: rate * 0.5,
                    delay_windows: 1,
                    ..FaultPlan::healthy()
                }
            }
        })
        .collect()
}

/// Run one sweep point.
fn run_point(rate: f64, seed: u64) -> FaultSweepPoint {
    // Old regime: the remote locator is slower.
    let mut env = Environment::ediamond(ScenarioOptions::default());
    env.scale_service(CRASHED_SERVICE, STALE_FACTOR);
    let mut sim_rng = StdRng::seed_from_u64(seed);
    let old_trace = env.system.run(WINDOW_ROWS, &mut sim_rng);

    // Bootstrap: a clean build supplies σ; a healthy resilient pass on the
    // old window seeds the cache (all nodes fresh, old-regime parameters).
    let boot = KertBn::build_continuous(
        &env.knowledge,
        &old_trace.to_dataset(None),
        ContinuousKertOptions::default(),
    )
    .expect("bootstrap build on clean data");
    let options = ResilientKertOptions {
        noise_sigma: boot.noise_sigma().unwrap_or(1e-3),
        ..Default::default()
    };
    let agents = agents_from_edges(6, &env.knowledge.upstream_edges);
    let mut cache = CpdCache::new(6);
    let boot_windows = old_trace.windows(WINDOW_ROWS);
    let healthy = FaultInjector::healthy(6);
    let mut boot_fleet = FaultyFleet::new(&agents, &boot_windows, &healthy);
    let seeded = KertBn::build_continuous_resilient(
        &env.knowledge,
        &mut boot_fleet,
        0,
        &mut cache,
        &options,
    )
    .expect("healthy resilient bootstrap");
    assert!(!seeded.is_degraded(), "bootstrap must be all-fresh");

    // The environment improves; the cached X4 CPD is now obsolete.
    env.scale_service(CRASHED_SERVICE, 1.0 / STALE_FACTOR);
    let fault_trace = env.system.run(WINDOW_ROWS, &mut sim_rng);
    let eval = env.system.run(EVAL_ROWS, &mut sim_rng).to_dataset(None);

    // Faulty rebuild on the current window.
    let fault_windows = fault_trace.windows(WINDOW_ROWS);
    let injector =
        FaultInjector::new(seed ^ 0xfa17, sweep_plans(rate)).expect("sweep plans are in range");
    let mut fleet = FaultyFleet::new(&agents, &fault_windows, &injector);
    let model =
        KertBn::build_continuous_resilient(&env.knowledge, &mut fleet, 0, &mut cache, &options)
            .expect("resilient build always succeeds");

    let health = model.health();
    let (fresh_nodes, stale_nodes, prior_nodes) = health.source_counts();
    let total_retries = health.nodes.iter().map(|h| h.retries).sum();
    let rows_dropped = health.nodes.iter().map(|h| h.rows_dropped).sum();

    // Fallback-only estimate: the degraded model's own X4 marginal.
    let x4_actual_mean = kert_linalg::stats::mean(&eval.column(CRASHED_SERVICE));
    let mc = McOptions::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let marginal = query_posterior(
        model.network(),
        model.discretizer(),
        &[],
        CRASHED_SERVICE,
        mc,
        &mut rng,
    )
    .expect("marginal query");
    let x4_fallback_error = (marginal.mean() - x4_actual_mean).abs();

    // Compensated estimate: dComp from the healthy observables (current
    // measurement means) plus the server-measured response time.
    let observed: Vec<(usize, f64)> = (0..7)
        .filter(|&c| c != CRASHED_SERVICE)
        .map(|c| (c, kert_linalg::stats::mean(&eval.column(c))))
        .collect();
    let comps = compensate_degraded(&model, &observed, mc, &mut rng).expect("compensation query");
    let x4_dcomp_error = comps
        .iter()
        .find(|c| c.service == CRASHED_SERVICE)
        .map(|c| (c.estimate() - x4_actual_mean).abs())
        .unwrap_or(x4_fallback_error);

    FaultSweepPoint {
        fault_rate: rate,
        fresh_nodes,
        stale_nodes,
        prior_nodes,
        total_faults: health.total_faults(),
        total_retries,
        rows_dropped,
        x4_actual_mean,
        x4_fallback_error,
        x4_dcomp_error,
        accuracy: model.accuracy(&eval).expect("accuracy on clean data"),
    }
}

/// Run the sweep at the given rates.
pub fn run_rates(rates: &[f64], seed: u64) -> FaultSweepResult {
    FaultSweepResult {
        seed,
        points: rates.iter().map(|&rate| run_point(rate, seed)).collect(),
    }
}

/// Run the full committed sweep.
pub fn run(seed: u64) -> FaultSweepResult {
    run_rates(FAULT_RATES, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcomp_recovers_the_crashed_node_better_than_the_stale_fallback() {
        // Two ends of the sweep, small eval: the compensated estimate must
        // beat the fallback-only marginal at both.
        let r = run_rates(&[0.0, 0.8], 2026);
        for p in &r.points {
            assert_eq!(p.stale_nodes + p.prior_nodes + p.fresh_nodes, 6);
            assert!(
                p.stale_nodes + p.prior_nodes >= 1,
                "the crashed node must be degraded at rate {}",
                p.fault_rate
            );
            assert!(
                p.x4_dcomp_error < p.x4_fallback_error,
                "rate {}: dComp error {} vs fallback error {}",
                p.fault_rate,
                p.x4_dcomp_error,
                p.x4_fallback_error
            );
            assert!(p.accuracy.is_finite());
        }
        // Higher fault rate → no more fresh nodes than the clean end.
        assert!(r.points[1].fresh_nodes <= r.points[0].fresh_nodes);
        assert!(r.points[1].total_faults > r.points[0].total_faults);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = run_rates(&[0.6], 7);
        let b = run_rates(&[0.6], 7);
        assert_eq!(a.points[0].fresh_nodes, b.points[0].fresh_nodes);
        assert_eq!(a.points[0].total_faults, b.points[0].total_faults);
        assert_eq!(
            a.points[0].x4_dcomp_error.to_bits(),
            b.points[0].x4_dcomp_error.to_bits()
        );
        assert_eq!(
            a.points[0].accuracy.to_bits(),
            b.points[0].accuracy.to_bits()
        );
    }
}
