//! Figure 6 — dComp: posterior vs prior of an unobservable service.
//!
//! Paper setting (§5.1): the eDiaMoND test-bed, discrete KERT-BN trained on
//! 1200 points (`K = 10, α = 120`). `X₄` (the remote image locator) is
//! unobservable; its *prior* comes from historical measurements that have
//! gone stale (the environment changed since). dComp conditions on the
//! current measurement means of the observable services and the response
//! time, and the posterior should (a) shift toward the actual current
//! elapsed time and (b) narrow.
//!
//! The staleness is reproduced faithfully: the model is trained on data
//! from an *older* configuration in which `X₄` was slower; the probe
//! observations come from the current (improved) system.

use kert_core::posterior::McOptions;
use kert_core::{dcomp, DiscreteKertOptions, KertBn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Training points (§5: `K · α = 1200`).
pub const TRAIN_SIZE: usize = 1200;
/// The unobservable service: X₄ = `image_locator_remote` = node 3.
pub const HIDDEN_SERVICE: usize = 3;

/// The Figure-6 result: prior and posterior distributions of `X₄`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Bin representative values (elapsed-time midpoints).
    pub support: Vec<f64>,
    /// Prior probability of each bin.
    pub prior: Vec<f64>,
    /// Posterior probability of each bin.
    pub posterior: Vec<f64>,
    /// Prior mean.
    pub prior_mean: f64,
    /// Posterior mean.
    pub posterior_mean: f64,
    /// Actual current mean elapsed time of the hidden service.
    pub actual_mean: f64,
    /// Prior std-dev.
    pub prior_sd: f64,
    /// Posterior std-dev.
    pub posterior_sd: f64,
}

/// Run the Figure-6 experiment.
pub fn run(seed: u64) -> Fig6Result {
    // Stale training data: the remote locator used to be 40% slower.
    let mut env = Environment::ediamond(ScenarioOptions::default());
    env.scale_service(HIDDEN_SERVICE, 1.4);
    let (train, _) = env.datasets(TRAIN_SIZE, 1, seed);
    let model = KertBn::build_discrete(&env.knowledge, &train, DiscreteKertOptions::default())
        .expect("discrete KERT-BN builds");

    // The environment then improved (resource action on the remote site).
    env.scale_service(HIDDEN_SERVICE, 1.0 / 1.4);
    let (current, _) = env.datasets(300, 1, seed ^ 0xbeef);

    // Observables: every node except the hidden one, at current means.
    let observed: Vec<(usize, f64)> = (0..7)
        .filter(|&c| c != HIDDEN_SERVICE)
        .map(|c| (c, kert_linalg::stats::mean(&current.column(c))))
        .collect();
    let actual_mean = kert_linalg::stats::mean(&current.column(HIDDEN_SERVICE));

    let mut rng = StdRng::seed_from_u64(seed ^ 0x600d);
    let outcome = dcomp(
        model.network(),
        model.discretizer(),
        &observed,
        HIDDEN_SERVICE,
        McOptions::default(),
        &mut rng,
    )
    .expect("dComp runs on the discrete model");

    let (support, prior, posterior) = match (&outcome.prior, &outcome.posterior) {
        (
            kert_core::Posterior::Discrete {
                support,
                probs: prior,
                ..
            },
            kert_core::Posterior::Discrete { probs: post, .. },
        ) => (support.clone(), prior.clone(), post.clone()),
        _ => unreachable!("discrete model yields discrete posteriors"),
    };
    Fig6Result {
        prior_mean: outcome.prior.mean(),
        posterior_mean: outcome.posterior.mean(),
        prior_sd: outcome.prior.std_dev(),
        posterior_sd: outcome.posterior.std_dev(),
        actual_mean,
        support,
        prior,
        posterior,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posterior_shifts_toward_actual_and_narrows() {
        let r = run(2026);
        // Figure 6's two visual claims.
        assert!(
            (r.posterior_mean - r.actual_mean).abs() < (r.prior_mean - r.actual_mean).abs(),
            "posterior {} should be closer to actual {} than prior {}",
            r.posterior_mean,
            r.actual_mean,
            r.prior_mean
        );
        assert!(
            r.posterior_sd < r.prior_sd,
            "posterior sd {} should be below prior sd {}",
            r.posterior_sd,
            r.prior_sd
        );
        // Distributions are proper.
        assert!((r.prior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((r.posterior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
