//! Figure 5 — decentralized vs centralized parameter learning.
//!
//! Paper setting: for each environment size, 20 randomly generated
//! KERT-BNs have their parameters learned; the decentralized learning time
//! is the *maximum* of the per-CPD learning times (each CPD is computed in
//! parallel on its service's monitoring agent), compared against the
//! centralized time (all CPDs sequentially on the management server).
//! Accuracy is not compared — both produce the same parameters.

use kert_agents::runtime::{centralized_learn, slice_local_datasets, LearnOptions};
use kert_bayes::{Dag, Variable};
use serde::{Deserialize, Serialize};

use crate::scenario::{Environment, ScenarioOptions};

/// Models learned per environment size in the paper.
pub const MODELS_PER_SIZE: usize = 20;
/// Training points used per learning task (the paper's largest §4 window).
pub const TRAIN_SIZE: usize = 1080;

/// One point of the Figure-5 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Number of services.
    pub n_services: usize,
    /// Mean decentralized learning time (s): max over per-node times.
    pub decentralized_time: f64,
    /// Mean centralized learning time (s): sum over per-node times.
    pub centralized_time: f64,
}

/// Run the Figure-5 experiment.
///
/// Methodology follows §4.3 exactly: per-CPD learning times are measured
/// (sequentially, to avoid scheduler interference), then aggregated as
/// `max` (decentralized — the agents run on separate machines) and `sum`
/// (centralized).
pub fn run(
    service_counts: &[usize],
    models_per_size: usize,
    train_size: usize,
    base_seed: u64,
) -> Vec<Fig5Point> {
    service_counts
        .iter()
        .map(|&n| {
            let mut dec = Vec::with_capacity(models_per_size);
            let mut cen = Vec::with_capacity(models_per_size);
            for m in 0..models_per_size {
                let seed = base_seed ^ ((n as u64) << 20) ^ m as u64;
                let (d, c) = one_model(n, train_size, seed);
                dec.push(d);
                cen.push(c);
            }
            Fig5Point {
                n_services: n,
                decentralized_time: kert_linalg::stats::mean(&dec),
                centralized_time: kert_linalg::stats::mean(&cen),
            }
        })
        .collect()
}

/// Learn one random KERT-BN's parameters; returns
/// `(decentralized_seconds, centralized_seconds)`.
pub fn one_model(n_services: usize, train_size: usize, seed: u64) -> (f64, f64) {
    let mut env = Environment::random(n_services, ScenarioOptions::default(), seed);
    let (train, _) = env.datasets(train_size, 1, seed ^ 0x55aa);

    // Learn only the service CPDs (D's CPD is knowledge-generated and free).
    let service_cols: Vec<usize> = (0..n_services).collect();
    let service_data = train.project(&service_cols).expect("columns exist");
    let mut dag = Dag::new(n_services);
    for &(from, to) in &env.knowledge.upstream_edges {
        dag.add_edge(from, to).expect("knowledge edges are acyclic");
    }
    let variables: Vec<Variable> = (0..n_services)
        .map(|i| Variable::continuous(format!("X{}", i + 1)))
        .collect();
    let locals = slice_local_datasets(&dag, &service_data).expect("layout matches");
    let res = centralized_learn(&variables, &locals, LearnOptions::default())
        .expect("learning succeeds on simulated data");
    let dec = res
        .node_times
        .iter()
        .copied()
        .max()
        .unwrap_or_default()
        .as_secs_f64();
    let cen = res.centralized_time.as_secs_f64();
    (dec, cen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decentralized_beats_centralized_and_the_gap_widens() {
        // Per-model speedups (sum/max over the *same* measured node times),
        // aggregated by median: wall-clock per-node fits are noisy when the
        // whole workspace test suite competes for cores, and a single
        // inflated node time caps the max-based speedup.
        let median_speedup = |n: usize| {
            let mut speedups: Vec<f64> = (0..5)
                .map(|m| {
                    let (dec, cen) = one_model(n, 800, 1000 + m);
                    cen / dec.max(1e-12)
                })
                .collect();
            speedups.sort_by(|a, b| a.total_cmp(b));
            speedups[2]
        };
        let speedup_small = median_speedup(6);
        let speedup_large = median_speedup(36);
        // Decentralized wins at both sizes (max ≤ sum holds identically;
        // meaningfully so in the median)…
        assert!(speedup_small > 1.0, "{speedup_small}");
        assert!(speedup_large > 1.0, "{speedup_large}");
        // …and the advantage grows with the number of CPDs, with slack for
        // scheduler noise (6× more nodes should be well beyond 1.2×).
        assert!(
            speedup_large > 1.2 * speedup_small.min(3.0),
            "{speedup_small} -> {speedup_large}"
        );
    }
}
