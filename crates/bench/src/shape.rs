//! Machine-checked *shape* claims over the committed `results/*.json`.
//!
//! Every figure verdict quoted in `EXPERIMENTS.md` corresponds to one gate
//! function here: it reloads the committed artifact and re-asserts the
//! qualitative claim (direction of a win, growth order, posterior shift…)
//! as data, so a regenerated results file that silently flips a conclusion
//! fails a test instead of only changing a plot. The gates return
//! `Result<(), String>` so the conformance crate can surface every failing
//! claim with context; the `#[test]` wrappers live in
//! `crates/conformance/tests/figures.rs` (this crate cannot dev-depend on
//! the conformance crate without a cycle).
//!
//! Thresholds are deliberately looser than the committed values — they gate
//! the *claim*, not the exact noise realization of one benchmark run.

use serde::Deserialize;

use crate::ablations::{NaiveAblation, PruningAblation, UpdateAblation};
use crate::fault_sweep::FaultSweepResult;
use crate::fig3::Fig3Point;
use crate::fig4::Fig4Point;
use crate::fig5::Fig5Point;
use crate::fig6::Fig6Result;
use crate::fig7::Fig7Result;
use crate::fig8::Fig8Point;
use crate::fleet::FleetChaosArtifact;

/// Load a committed artifact from `results/<name>.json` at the repo root.
pub fn load_committed<T: Deserialize>(name: &str) -> Result<T, String> {
    let path = format!("{}/../../results/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn check(ok: bool, claim: impl FnOnce() -> String) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(claim())
    }
}

/// Figure 3's claims: KERT-BN beats NRT-BN on accuracy at *every* training
/// size, and its construction-time advantage is at least an order of
/// magnitude throughout (committed run: 30–56×).
pub fn fig3_gate() -> Result<(), String> {
    let points: Vec<Fig3Point> = load_committed("fig3")?;
    check(points.len() >= 5, || {
        format!("fig3: expected a full size sweep, found {}", points.len())
    })?;
    for p in &points {
        check(p.kert_accuracy > p.nrt_accuracy, || {
            format!(
                "fig3 @ {} rows: KERT accuracy {} must beat NRT {}",
                p.train_size, p.kert_accuracy, p.nrt_accuracy
            )
        })?;
        let ratio = p.nrt_time / p.kert_time.max(1e-12);
        check(ratio > 10.0, || {
            format!(
                "fig3 @ {} rows: NRT/KERT time ratio {ratio:.1} below 10×",
                p.train_size
            )
        })?;
    }
    Ok(())
}

/// Figure 4's claim: NRT-BN construction time grows superlinearly with the
/// node count while KERT-BN's stays near-linear — NRT's end-to-end growth
/// over the 10→100 sweep must dwarf KERT's (committed run: 131× vs 11.7×),
/// and KERT must win accuracy at every size in the tiny-training regime.
pub fn fig4_gate() -> Result<(), String> {
    let points: Vec<Fig4Point> = load_committed("fig4")?;
    check(points.len() >= 4, || {
        format!("fig4: expected a full size sweep, found {}", points.len())
    })?;
    let first = points.first().expect("nonempty");
    let last = points.last().expect("nonempty");
    let size_growth = last.n_services as f64 / first.n_services as f64;
    let nrt_growth = last.nrt_time / first.nrt_time.max(1e-12);
    let kert_growth = last.kert_time / first.kert_time.max(1e-12);
    check(nrt_growth > size_growth, || {
        format!(
            "fig4: NRT time growth {nrt_growth:.1}× must be superlinear \
             over the {size_growth:.0}× size sweep"
        )
    })?;
    check(nrt_growth > 3.0 * kert_growth, || {
        format!("fig4: NRT growth {nrt_growth:.1}× must dwarf KERT's {kert_growth:.1}×")
    })?;
    for p in &points {
        check(p.kert_accuracy > p.nrt_accuracy, || {
            format!(
                "fig4 @ {} services: KERT accuracy {} must beat NRT {}",
                p.n_services, p.kert_accuracy, p.nrt_accuracy
            )
        })?;
    }
    Ok(())
}

/// Figure 5's claim: decentralized learning (max over per-agent times) is
/// faster than centralized (sum) at every environment size.
pub fn fig5_gate() -> Result<(), String> {
    let points: Vec<Fig5Point> = load_committed("fig5")?;
    check(points.len() >= 4, || {
        format!("fig5: expected a full size sweep, found {}", points.len())
    })?;
    for p in &points {
        check(p.decentralized_time < p.centralized_time, || {
            format!(
                "fig5 @ {} services: decentralized {} must beat centralized {}",
                p.n_services, p.decentralized_time, p.centralized_time
            )
        })?;
    }
    Ok(())
}

/// Figure 6's claims: dComp's posterior of the hidden service (a) shifts
/// toward the actual current mean, (b) narrows sharply, and (c) is a
/// proper, strongly-peaked distribution (committed run: 0.965 mass in the
/// bin holding the actual mean).
pub fn fig6_gate() -> Result<(), String> {
    let r: Fig6Result = load_committed("fig6")?;
    check(
        (r.posterior_mean - r.actual_mean).abs() < (r.prior_mean - r.actual_mean).abs(),
        || {
            format!(
                "fig6: posterior mean {} must be closer to actual {} than prior {}",
                r.posterior_mean, r.actual_mean, r.prior_mean
            )
        },
    )?;
    check(r.posterior_sd < 0.5 * r.prior_sd, || {
        format!(
            "fig6: posterior sd {} must narrow well below prior sd {}",
            r.posterior_sd, r.prior_sd
        )
    })?;
    for (label, dist) in [("prior", &r.prior), ("posterior", &r.posterior)] {
        let total: f64 = dist.iter().sum();
        check((total - 1.0).abs() < 1e-9, || {
            format!("fig6: {label} sums to {total}, not 1")
        })?;
    }
    let peak = r.posterior.iter().cloned().fold(0.0, f64::max);
    check(peak > 0.5, || {
        format!("fig6: posterior should concentrate (peak {peak} ≤ 0.5)")
    })
}

/// Figure 7's claims: the pAccel projection predicts an improvement and
/// tracks the observed post-acceleration mean better than the prior does.
pub fn fig7_gate() -> Result<(), String> {
    let r: Fig7Result = load_committed("fig7")?;
    check(r.projected_mean < r.prior_mean, || {
        format!(
            "fig7: projection {} must predict an improvement over prior {}",
            r.projected_mean, r.prior_mean
        )
    })?;
    check(
        (r.projected_mean - r.observed_mean).abs() < (r.prior_mean - r.observed_mean).abs(),
        || {
            format!(
                "fig7: projection {} must track observed {} better than prior {}",
                r.projected_mean, r.observed_mean, r.prior_mean
            )
        },
    )?;
    for (label, d) in [
        ("prior", &r.prior_density),
        ("projected", &r.projected_density),
        ("observed", &r.observed_density),
    ] {
        let total: f64 = d.iter().sum();
        check((total - 1.0).abs() < 1e-9, || {
            format!("fig7: {label} density sums to {total}, not 1")
        })?;
    }
    Ok(())
}

/// Figure 8's claim: the knowledge-generated KERT-BN matches the
/// exhaustively-searched NRT-BN on mean relative violation error
/// (committed run: 0.494 vs 0.554). Gated on the *mean* across thresholds
/// — individual thresholds trade places run to run.
pub fn fig8_gate() -> Result<(), String> {
    let points: Vec<Fig8Point> = load_committed("fig8")?;
    check(points.len() == crate::fig8::N_THRESHOLDS, || {
        format!(
            "fig8: expected {} thresholds, found {}",
            crate::fig8::N_THRESHOLDS,
            points.len()
        )
    })?;
    let (kert_err, nrt_err) = crate::fig8::mean_errors(&points);
    check(kert_err <= nrt_err * 1.05, || {
        format!("fig8: KERT mean ε {kert_err:.3} must match or beat NRT's {nrt_err:.3}")
    })?;
    for p in &points {
        check(
            p.p_real > 0.0 && p.kert_error.is_finite() && p.nrt_error.is_finite(),
            || format!("fig8 @ h={}: degenerate errors", p.threshold),
        )?;
    }
    Ok(())
}

/// Fault-sweep claims: the self-healing pipeline never falls all the way
/// to a prior-only CPD at any injected fault rate, and dComp compensation
/// for the crashed agent beats the stale-cache fallback by orders of
/// magnitude at the clean end of the sweep (committed run: 1.2e-4 vs
/// 0.41).
pub fn fault_sweep_gate() -> Result<(), String> {
    let r: FaultSweepResult = load_committed("fault_sweep")?;
    check(r.points.len() >= 4, || {
        format!(
            "fault_sweep: expected a rate sweep, found {}",
            r.points.len()
        )
    })?;
    for p in &r.points {
        check(p.prior_nodes == 0, || {
            format!(
                "fault_sweep @ rate {}: {} nodes fell to the prior",
                p.fault_rate, p.prior_nodes
            )
        })?;
        check(p.x4_dcomp_error < p.x4_fallback_error, || {
            format!(
                "fault_sweep @ rate {}: dComp error {} must beat fallback {}",
                p.fault_rate, p.x4_dcomp_error, p.x4_fallback_error
            )
        })?;
    }
    let clean = &r.points[0];
    check(
        clean.x4_dcomp_error < 0.01 * clean.x4_fallback_error,
        || {
            format!(
                "fault_sweep @ rate 0: dComp error {} should be ≫ 100× below fallback {}",
                clean.x4_dcomp_error, clean.x4_fallback_error
            )
        },
    )
}

/// Fleet-chaos claims (the fleet-resilience gate): the committed drill ran
/// at 10³-agent scale, the coordinator kill fired and came back warm,
/// no node ever fell to the prior rung, sharded collection shows a real
/// simulated speedup, and the deterministic fingerprints are coherent.
/// Wall-clock throughput is host noise — gated only as positive.
pub fn fleet_chaos_gate() -> Result<(), String> {
    let a: FleetChaosArtifact = load_committed("fleet_chaos")?;
    let r = &a.report;
    check(r.n_agents >= 1000, || {
        format!(
            "fleet_chaos: {} agents is below the 10³ scale claim",
            r.n_agents
        )
    })?;
    check(!r.epochs.is_empty(), || {
        "fleet_chaos: no epochs".to_string()
    })?;
    check(r.coordinator_crashes >= 1, || {
        "fleet_chaos: the coordinator kill never fired".to_string()
    })?;
    check(r.warm_restores == r.coordinator_crashes, || {
        format!(
            "fleet_chaos: {} crashes but only {} warm restores — a restart came back cold",
            r.coordinator_crashes, r.warm_restores
        )
    })?;
    check(r.total_prior == 0, || {
        format!(
            "fleet_chaos: {} prior-rung fallbacks (warm restore must keep the run stale-or-better)",
            r.total_prior
        )
    })?;
    check(r.total_fresh > r.total_stale, || {
        format!(
            "fleet_chaos: mostly-stale run ({} fresh vs {} stale) — the drill is too faulty to gate",
            r.total_fresh, r.total_stale
        )
    })?;
    check(r.simulated_speedup > 1.5, || {
        format!(
            "fleet_chaos: simulated speedup {:.2}× over {} shards shows no parallel win",
            r.simulated_speedup, r.n_shards
        )
    })?;
    for e in &r.epochs {
        check(e.cpd_fingerprint.len() == 16, || {
            format!(
                "fleet_chaos epoch {}: fingerprint {:?} is not fnv1a64 hex",
                e.epoch, e.cpd_fingerprint
            )
        })?;
    }
    check(
        r.epochs.last().map(|e| e.cpd_fingerprint.as_str()) == Some(r.final_fingerprint.as_str()),
        || "fleet_chaos: final fingerprint does not match the last epoch".to_string(),
    )?;
    check(
        a.wall_ms > 0.0 && a.reports_per_sec > 0.0 && a.rows_per_sec > 0.0,
        || "fleet_chaos: non-positive throughput".to_string(),
    )
}

/// Naive-ablation claims (§4.2's dismissal): the learning-free structure
/// keeps zero service-to-service edges while K2 recovers some, and the
/// learned NRT-BN is at least as accurate as the naive one.
pub fn ablation_naive_gate() -> Result<(), String> {
    let r: NaiveAblation = load_committed("ablation_naive")?;
    check(r.naive_service_edges == 0, || {
        format!(
            "ablation_naive: naive model has {} service edges, expected 0",
            r.naive_service_edges
        )
    })?;
    check(r.nrt_service_edges > 0, || {
        "ablation_naive: K2 recovered no service edges".to_string()
    })?;
    check(
        r.nrt_accuracy >= r.naive_accuracy - 0.02 * r.naive_accuracy.abs(),
        || {
            format!(
                "ablation_naive: learned NRT {} must not trail naive {}",
                r.nrt_accuracy, r.naive_accuracy
            )
        },
    )?;
    check(r.kert_accuracy.is_finite(), || {
        "ablation_naive: KERT accuracy not finite".to_string()
    })
}

/// Update-ablation claims (§2): windowed reconstruction tracks the regime
/// change better than the cumulative updater, which drags extra rows.
pub fn ablation_update_gate() -> Result<(), String> {
    let r: UpdateAblation = load_committed("ablation_update")?;
    check(r.windowed_error < r.cumulative_error, || {
        format!(
            "ablation_update: windowed error {} must beat cumulative {}",
            r.windowed_error, r.cumulative_error
        )
    })?;
    check(r.cumulative_rows > r.windowed_rows, || {
        format!(
            "ablation_update: cumulative rows {} should exceed window {}",
            r.cumulative_rows, r.windowed_rows
        )
    })
}

/// Pruning-ablation claims (§7): barren-node pruning is exact (identical
/// posteriors to machine precision) and not slower.
pub fn ablation_pruning_gate() -> Result<(), String> {
    let r: PruningAblation = load_committed("ablation_pruning")?;
    check(r.max_abs_diff < 1e-9, || {
        format!(
            "ablation_pruning: pruning must be exact, max |Δ| = {}",
            r.max_abs_diff
        )
    })?;
    check(r.pruned_secs <= r.full_secs, || {
        format!(
            "ablation_pruning: pruned {}s must not exceed full {}s",
            r.pruned_secs, r.full_secs
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed artifacts themselves must satisfy every gate — this is
    /// the in-crate smoke test; the conformance crate re-runs the gates as
    /// individually named figure tests.
    #[test]
    fn all_committed_artifacts_pass_their_gates() {
        for (name, gate) in [
            ("fig3", fig3_gate as fn() -> Result<(), String>),
            ("fig4", fig4_gate),
            ("fig5", fig5_gate),
            ("fig6", fig6_gate),
            ("fig7", fig7_gate),
            ("fig8", fig8_gate),
            ("fault_sweep", fault_sweep_gate),
            ("fleet_chaos", fleet_chaos_gate),
            ("ablation_naive", ablation_naive_gate),
            ("ablation_update", ablation_update_gate),
            ("ablation_pruning", ablation_pruning_gate),
        ] {
            if let Err(e) = gate() {
                panic!("{name} gate failed: {e}");
            }
        }
    }

    #[test]
    fn missing_artifacts_error_cleanly() {
        let r: Result<Vec<Fig3Point>, String> = load_committed("no_such_figure");
        assert!(r.is_err());
    }
}
