//! Fleet-scale chaos benchmark — collector throughput and resilience
//! accounting at 10³ agents.
//!
//! This is the committed-artifact companion of `kertctl fleet chaos`: the
//! same seeded drill (sharded epoch collection, coordinator kill at a
//! fixed epoch, snapshot/warm-restore), run under the standard gate
//! configuration, with wall-clock throughput measured around it. The
//! deterministic core (`report`) is byte-stable for a fixed seed; the
//! throughput fields are host-dependent and gated only loosely (> 0).
//!
//! Committed as `results/fleet_chaos.json` (shape-gated by
//! [`crate::shape::fleet_chaos_gate`]) and merged as the `fleet` section
//! of `BENCH_perf.json`.

use std::time::Instant;

use kert_agents::{
    run_fleet_chaos, ChaosOptions, FleetChaosReport, ResilientOptions, RetryPolicy, ShardConfig,
};
use kert_sim::CoordinatorFaultPlan;
use serde::{Deserialize, Serialize};

/// Fleet size of the committed run (the 10³-agent scale claim).
pub const FLEET_AGENTS: usize = 1000;
/// Epochs per drill.
pub const FLEET_EPOCHS: usize = 4;
/// Rows per agent report per window.
pub const FLEET_ROWS: usize = 32;
/// Shards of the committed run.
pub const FLEET_SHARDS: usize = 8;
/// Per-attempt fault rate of the drill.
pub const FLEET_FAULT_RATE: f64 = 0.1;
/// Retries per report — high enough that a window-0 report is effectively
/// never lost (P ≈ rate⁶ per agent), so the committed run has zero
/// prior-rung fallbacks.
pub const FLEET_RETRIES: usize = 5;
/// Epoch at which the coordinator is killed mid-drill.
pub const CRASH_EPOCH: u64 = 2;

/// The committed artifact: deterministic drill outcome + host throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetChaosArtifact {
    /// Master seed of the drill.
    pub seed: u64,
    /// Per-attempt fault rate.
    pub fault_rate: f64,
    /// Retries per report collection.
    pub retries: usize,
    /// Coordinator kill epoch.
    pub crash_epoch: u64,
    /// The deterministic drill record (seed-stable byte for byte).
    pub report: FleetChaosReport,
    /// Wall-clock time of the whole drill, milliseconds (host-dependent).
    pub wall_ms: f64,
    /// Collector throughput: delivery attempts served per second.
    pub reports_per_sec: f64,
    /// Measurement-row throughput through the collector.
    pub rows_per_sec: f64,
}

/// The gate configuration as [`ChaosOptions`].
pub fn gate_options(seed: u64, n_agents: usize, epochs: usize) -> ChaosOptions {
    ChaosOptions {
        n_agents,
        rows_per_window: FLEET_ROWS,
        epochs,
        seed,
        shards: ShardConfig {
            n_shards: FLEET_SHARDS,
            align_rows: false,
            ..ShardConfig::default()
        },
        resilient: ResilientOptions {
            retry: RetryPolicy {
                max_retries: FLEET_RETRIES,
                ..RetryPolicy::default()
            },
            ..ResilientOptions::default()
        },
        fault_rate: FLEET_FAULT_RATE,
        cold_fraction: 0.0,
        partition_prob: 0.0,
        coordinator: Some(CoordinatorFaultPlan::kill_at(CRASH_EPOCH)),
        snapshot_path: None, // set per run below
    }
}

/// Run the drill and measure throughput around it.
pub fn run(seed: u64, n_agents: usize, epochs: usize) -> FleetChaosArtifact {
    let dir = std::env::temp_dir().join(format!("kert_bench_fleet_{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    let options = ChaosOptions {
        snapshot_path: Some(dir.join("coordinator.snap")),
        ..gate_options(seed, n_agents, epochs)
    };

    let start = Instant::now();
    let report = run_fleet_chaos(&options).expect("chaos drill must complete");
    let wall = start.elapsed();
    std::fs::remove_dir_all(&dir).ok();

    let secs = wall.as_secs_f64().max(1e-9);
    FleetChaosArtifact {
        seed,
        fault_rate: FLEET_FAULT_RATE,
        retries: FLEET_RETRIES,
        crash_epoch: CRASH_EPOCH,
        wall_ms: wall.as_secs_f64() * 1e3,
        reports_per_sec: report.fetches as f64 / secs,
        rows_per_sec: report.rows_generated as f64 / secs,
        report,
    }
}
