//! # kert-bench — the experiment harness
//!
//! One module per evaluation artifact of the paper (Figures 3–8), each
//! exposing a pure function that runs the experiment and returns its data
//! series, plus a `fig*` binary that prints the series as a table and dumps
//! JSON under `results/`. Kernel micro-benchmarks (hand-rolled harness in
//! [`timing`]; the offline build has no criterion) live in `benches/` and
//! merge their medians into the committed `BENCH_perf.json`.
//!
//! The paper reports wall-clock seconds on 2007 hardware; absolute numbers
//! here differ, but every *shape* claim is asserted by the integration
//! tests in `tests/`:
//! * Fig 3 — construction time linear in training size for both models,
//!   KERT-BN cheaper, with better and faster-converging accuracy;
//! * Fig 4 — NRT-BN construction superlinear in environment size, KERT-BN
//!   flat; KERT-BN at least as accurate at 36 points;
//! * Fig 5 — decentralized parameter-learning latency (max over nodes)
//!   below centralized (sum over nodes), gap widening with size;
//! * Fig 6 — dComp posterior closer to actual and narrower than the prior;
//! * Fig 7 — pAccel projection tracking the actually-accelerated system;
//! * Fig 8 — KERT-BN's relative threshold-violation error below NRT-BN's.
//!
//! Beyond the paper's figures, [`fault_sweep`] measures degraded-mode
//! accuracy vs monitoring fault rate: resilient rebuilds always succeed,
//! and dComp compensation recovers the crashed node's estimate relative to
//! the stale-fallback-only model.

pub mod ablations;
pub mod fault_sweep;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod scenario;
pub mod shape;
pub mod table;
pub mod timing;

pub use scenario::{Environment, ScenarioOptions};

/// Write a serializable results object to `results/<name>.json` (best
/// effort — printing the table is the primary output).
pub fn dump_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(results saved to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Read an override from the environment, for quick low-budget runs
/// (e.g. `KERT_REPS=2 cargo run --bin fig3`).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
