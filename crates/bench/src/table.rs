//! Minimal fixed-width table printing for the figure binaries.

/// Print a header row followed by a rule.
pub fn header(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths.iter()) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().saturating_sub(2)));
}

/// Print one data row of already-formatted cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Format seconds with adaptive precision.
pub fn secs(t: f64) -> String {
    if t < 1e-3 {
        format!("{:.1}µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:.2}ms", t * 1e3)
    } else {
        format!("{t:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_picks_sensible_units() {
        assert_eq!(secs(0.0000005), "0.5µs");
        assert_eq!(secs(0.0025), "2.50ms");
        assert_eq!(secs(3.25), "3.25s");
    }
}
