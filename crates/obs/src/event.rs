//! The JSONL event schema.
//!
//! Every line the JSONL exporter writes is one [`TelemetryEvent`] object.
//! The struct is flat on purpose: a fixed field set (no per-event-type
//! shapes) keeps the schema trivially validatable — parse the line, round
//! trip it through `serde`, compare — which is exactly what the CI
//! observability job does.
//!
//! ```json
//! {"seq":42,"kind":"Event","name":"agents.ladder","span_id":0,
//!  "parent_id":17,"elapsed_ns":0,"value":1,
//!  "labels":[["node","3"],["rung","stale"]]}
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// What a [`TelemetryEvent`] line describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A closed span: `span_id`/`parent_id`/`elapsed_ns` are meaningful.
    Span,
    /// A point event: `value` and `labels` carry the payload, `parent_id`
    /// is the span that was open when it fired (0 at top level).
    Event,
}

/// One line of the JSONL stream. Field meanings by [`EventKind`]:
///
/// | field | `Span` | `Event` |
/// |---|---|---|
/// | `seq` | global emission order | global emission order |
/// | `name` | span name | event name |
/// | `span_id` | this span's id | 0 |
/// | `parent_id` | enclosing span (0 = root) | enclosing span (0 = root) |
/// | `elapsed_ns` | wall time inside the span | 0 |
/// | `value` | `elapsed_ns` as f64 | numeric payload |
/// | `labels` | empty | key/value context pairs |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryEvent {
    /// Global emission sequence number (gaps mean dropped lines).
    pub seq: u64,
    /// Span close or point event.
    pub kind: EventKind,
    /// Dot-separated metric-style name (`crate.subsystem.what`).
    pub name: String,
    /// Span id for `Span` lines, 0 otherwise.
    pub span_id: u64,
    /// Id of the enclosing span at emission time (0 = none).
    pub parent_id: u64,
    /// Span duration in nanoseconds (0 for point events).
    pub elapsed_ns: u64,
    /// Numeric payload.
    pub value: f64,
    /// Context pairs, e.g. `[["rung","stale"],["node","3"]]`.
    pub labels: Vec<(String, String)>,
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Stamp a sequence number and write the event as one JSONL line.
pub(crate) fn emit(mut e: TelemetryEvent) {
    e.seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    if let Ok(line) = serde_json::to_string(&e) {
        crate::export::write_line(&line);
    }
}

/// Emit a point event carrying a numeric `value` and string `labels`.
/// No-op (after one relaxed load) unless the JSONL stream is active.
/// Non-finite values are clamped to 0 so every line stays valid JSON.
pub fn event(name: &str, value: f64, labels: &[(&str, &str)]) {
    if !crate::jsonl_enabled() {
        return;
    }
    emit(TelemetryEvent {
        seq: 0,
        kind: EventKind::Event,
        name: name.to_string(),
        span_id: 0,
        parent_id: crate::span::current_span_id(),
        elapsed_ns: 0,
        value: if value.is_finite() { value } else { 0.0 },
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// Like [`event`] but with owned labels, for call sites that only build
/// the label strings when the stream is active.
pub fn event_with(name: &str, value: f64, labels: Vec<(String, String)>) {
    if !crate::jsonl_enabled() {
        return;
    }
    emit(TelemetryEvent {
        seq: 0,
        kind: EventKind::Event,
        name: name.to_string(),
        span_id: 0,
        parent_id: crate::span::current_span_id(),
        elapsed_ns: 0,
        value: if value.is_finite() { value } else { 0.0 },
        labels,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_schema_round_trips() {
        let e = TelemetryEvent {
            seq: 42,
            kind: EventKind::Event,
            name: "agents.ladder".into(),
            span_id: 0,
            parent_id: 17,
            elapsed_ns: 0,
            value: 1.0,
            labels: vec![("rung".into(), "stale".into()), ("node".into(), "3".into())],
        };
        let line = serde_json::to_string(&e).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e);
        // And a span line.
        let s = TelemetryEvent {
            seq: 43,
            kind: EventKind::Span,
            name: "jt.marginal".into(),
            span_id: 18,
            parent_id: 17,
            elapsed_ns: 54_000,
            value: 54_000.0,
            labels: Vec::new(),
        };
        let line = serde_json::to_string(&s).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let line = r#"{"seq":0,"kind":"Bogus","name":"x","span_id":0,"parent_id":0,"elapsed_ns":0,"value":0,"labels":[]}"#;
        assert!(serde_json::from_str::<TelemetryEvent>(line).is_err());
    }
}
