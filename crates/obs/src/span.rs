//! Spans: monotonic-clock timings with parent/child nesting.
//!
//! A span is an RAII guard: [`span`] opens it, dropping it closes it.
//! Nesting is tracked per thread — the guard remembers the previously
//! current span and restores it on close, so `span("a")` containing
//! `span("b")` yields `b.parent_id == a.span_id` with no global
//! coordination beyond one id counter.
//!
//! Closing a span records `elapsed_ns` into the histogram named after the
//! span, and — in JSONL mode — emits a [`crate::TelemetryEvent`] with kind
//! `Span`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::event::{EventKind, TelemetryEvent};
use crate::registry;

/// Process-wide span id allocator; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 at top level).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The id of the innermost open span on this thread (0 at top level);
/// events attach themselves to it as `parent_id`.
pub(crate) fn current_span_id() -> u64 {
    CURRENT_SPAN.get()
}

/// An open span; dropping it closes the span. Inert when telemetry is
/// disabled (one relaxed load, no clock read).
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Option<Instant>,
}

/// Open a span named `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span {
            name,
            id: 0,
            parent: 0,
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.replace(id);
    Span {
        name,
        id,
        parent,
        start: Some(Instant::now()),
    }
}

impl Span {
    /// This span's id (0 when telemetry is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        CURRENT_SPAN.set(self.parent);
        registry::histogram_handle(self.name).record(elapsed_ns);
        if crate::jsonl_enabled() {
            crate::event::emit(TelemetryEvent {
                seq: 0,
                kind: EventKind::Span,
                name: self.name.to_string(),
                span_id: self.id,
                parent_id: self.parent,
                elapsed_ns,
                value: elapsed_ns as f64,
                labels: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn spans_nest_and_feed_histograms() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        static H: crate::Histogram = crate::Histogram::new("test.span.outer");
        let before = H.count();
        {
            let outer = span("test.span.outer");
            assert_ne!(outer.id(), 0);
            assert_eq!(current_span_id(), outer.id());
            {
                let inner = span("test.span.inner");
                assert_eq!(current_span_id(), inner.id());
            }
            // Inner closed: the outer span is current again.
            assert_eq!(current_span_id(), outer.id());
        }
        assert_eq!(current_span_id(), 0);
        assert_eq!(H.count(), before + 1);
        crate::set_mode(ObsMode::Disabled);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Disabled);
        let s = span("test.span.disabled");
        assert_eq!(s.id(), 0);
        assert_eq!(current_span_id(), 0);
    }
}
