//! Spans: monotonic-clock timings with parent/child nesting.
//!
//! A span is an RAII guard: [`span`] opens it, dropping it closes it.
//! Nesting is tracked per thread — the guard remembers the previously
//! current span and restores it on close, so `span("a")` containing
//! `span("b")` yields `b.parent_id == a.span_id` with no global
//! coordination beyond one id counter.
//!
//! Closing a span records `elapsed_ns` into the histogram named after the
//! span, and — in JSONL mode — emits a [`crate::TelemetryEvent`] with kind
//! `Span`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::event::{EventKind, TelemetryEvent};
use crate::registry;
use crate::trace;

/// Process-wide span id allocator; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 at top level).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The id of the innermost open span on this thread (0 at top level);
/// events attach themselves to it as `parent_id`.
pub(crate) fn current_span_id() -> u64 {
    CURRENT_SPAN.get()
}

/// An open span; dropping it closes the span. Inert when telemetry is
/// disabled (one relaxed load, no clock read).
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    name: &'static str,
    id: u64,
    parent: u64,
    /// Mirror span in this thread's installed [`trace::TraceContext`]
    /// (0 when no context is capturing).
    trace_span: u64,
    start: Option<Instant>,
}

/// Open a span named `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span {
            name,
            id: 0,
            parent: 0,
            trace_span: 0,
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.replace(id);
    // One clock read serves both the histogram timing and the captured
    // mirror span's start stamp.
    let now = Instant::now();
    Span {
        name,
        id,
        parent,
        trace_span: trace::capture_open(name, now),
        start: Some(now),
    }
}

impl Span {
    /// This span's id (0 when telemetry is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // Restore the thread's parent pointer (and close the captured
        // trace span) *first*: this drop also runs while unwinding from
        // a panic in the spanned scope, and the recording work below
        // touches the registry mutex — were it to panic, an un-popped
        // stack would attach every later span on this thread to a dead
        // parent. Popping is infallible; do it before anything that
        // is not.
        if self.id == 0 {
            return;
        }
        CURRENT_SPAN.set(self.parent);
        let now = Instant::now();
        trace::capture_close(self.trace_span, now);
        let Some(start) = self.start else { return };
        let elapsed_ns =
            u64::try_from(now.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX);
        registry::histogram_handle(self.name).record(elapsed_ns);
        if crate::jsonl_enabled() {
            crate::event::emit(TelemetryEvent {
                seq: 0,
                kind: EventKind::Span,
                name: self.name.to_string(),
                span_id: self.id,
                parent_id: self.parent,
                elapsed_ns,
                value: elapsed_ns as f64,
                labels: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn spans_nest_and_feed_histograms() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        static H: crate::Histogram = crate::Histogram::new("test.span.outer");
        let before = H.count();
        {
            let outer = span("test.span.outer");
            assert_ne!(outer.id(), 0);
            assert_eq!(current_span_id(), outer.id());
            {
                let inner = span("test.span.inner");
                assert_eq!(current_span_id(), inner.id());
            }
            // Inner closed: the outer span is current again.
            assert_eq!(current_span_id(), outer.id());
        }
        assert_eq!(current_span_id(), 0);
        assert_eq!(H.count(), before + 1);
        crate::set_mode(ObsMode::Disabled);
    }

    /// Regression gate for the parent-stack leak: a panic inside a
    /// spanned scope unwinds through the guard's `Drop`, which must
    /// restore the parent pointer (and pop any captured trace span)
    /// before doing fallible recording work — otherwise every span
    /// opened on this thread afterwards would parent onto a dead id.
    #[test]
    fn panicking_scope_still_pops_the_parent_stack() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        let outer = span("test.span.unwind_outer");
        let outer_id = outer.id();

        let result = std::panic::catch_unwind(|| {
            let _inner = span("test.span.unwind_inner");
            panic!("boom inside a spanned scope");
        });
        assert!(result.is_err(), "the scope must actually have panicked");
        assert_eq!(
            current_span_id(),
            outer_id,
            "unwinding must pop the inner span and restore its parent"
        );

        // Same contract for the captured-trace stack: the mirror span
        // opened in an installed TraceContext must be closed on unwind.
        crate::trace::install(crate::trace::TraceContext::with_virtual_clock(1, 1));
        let result = std::panic::catch_unwind(|| {
            let _inner = span("test.span.unwind_traced");
            panic!("boom under capture");
        });
        assert!(result.is_err());
        let ctx = crate::trace::take().expect("context survives the panic");
        let tree = ctx.finish();
        let captured = tree
            .find("test.span.unwind_traced")
            .expect("the mirror span was captured");
        assert_ne!(
            captured.end_ns, 0,
            "unwinding must close the captured trace span"
        );

        drop(outer);
        assert_eq!(current_span_id(), 0);
        crate::set_mode(ObsMode::Disabled);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Disabled);
        let s = span("test.span.disabled");
        assert_eq!(s.id(), 0);
        assert_eq!(current_span_id(), 0);
    }
}
