//! Point-in-time registry dumps.
//!
//! [`TelemetrySnapshot`] is the serializable form of the whole registry —
//! the struct `kert-bench` embeds into `BENCH_perf.json` so committed perf
//! numbers carry the counters that explain them, and the delta unit tests
//! (e.g. the fallback-ladder determinism test) diff two snapshots around a
//! run.

use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize};

use crate::registry::with_registry;

/// Serializable summary of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram (usually span) name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample seen.
    pub max_ns: u64,
    /// Approximate median (log₂-bucket midpoint).
    pub p50_ns: f64,
    /// Approximate 99th percentile (log₂-bucket midpoint).
    pub p99_ns: f64,
}

/// The whole registry at one instant, in deterministic (sorted-name)
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge (labeled names keep
    /// their `base{k="v"}` form).
    pub gauges: Vec<(String, f64)>,
    /// Summaries of every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Value of a counter (0 when absent — an untouched counter and a
    /// missing one are indistinguishable by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Per-counter difference `self - earlier` (counters are monotonic, so
    /// this is the activity between the two snapshots; counters only
    /// present in `self` count from 0).
    pub fn counters_since(&self, earlier: &TelemetrySnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
            .collect()
    }
}

/// Capture the registry right now.
pub fn snapshot() -> TelemetrySnapshot {
    with_registry(|r| TelemetrySnapshot {
        counters: r
            .counters
            .iter()
            .map(|(n, h)| (n.clone(), h.load(Ordering::Relaxed)))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(n, h)| (n.clone(), f64::from_bits(h.load(Ordering::Relaxed))))
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                count: h.count.load(Ordering::Relaxed),
                sum_ns: h.sum_ns.load(Ordering::Relaxed),
                max_ns: h.max_ns.load(Ordering::Relaxed),
                p50_ns: h.approx_quantile(0.50),
                p99_ns: h.approx_quantile(0.99),
            })
            .collect(),
    })
}

/// Zero every registered counter, gauge, and histogram (handles stay
/// valid; benches use this to start each measured section from a clean
/// registry).
pub fn reset() {
    with_registry(|r| {
        for h in r.counters.values() {
            h.store(0, Ordering::Relaxed);
        }
        for h in r.gauges.values() {
            h.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in r.histograms.values() {
            h.count.store(0, Ordering::Relaxed);
            h.sum_ns.store(0, Ordering::Relaxed);
            h.max_ns.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn snapshot_round_trips_and_diffs() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        static C: crate::Counter = crate::Counter::new("test.snapshot.ticks");
        let before = snapshot();
        C.add(5);
        let after = snapshot();
        let deltas = after.counters_since(&before);
        let tick_delta = deltas
            .iter()
            .find(|(n, _)| n == "test.snapshot.ticks")
            .map(|(_, d)| *d);
        assert_eq!(tick_delta, Some(5));

        let json = serde_json::to_string(&after).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, after);
        crate::set_mode(ObsMode::Disabled);
    }
}
