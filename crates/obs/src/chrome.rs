//! Chrome trace-event JSON export for [`crate::trace::TraceTree`]s.
//!
//! The [trace-event format] is the lingua franca of timeline viewers:
//! `chrome://tracing`, Perfetto, and Speedscope all load it. Each span
//! becomes one complete (`"ph":"X"`) event with the trace id as its
//! `tid`, so every request renders as its own track; cross-trace causal
//! links (a coalesced request pointing at its shared compute span)
//! become flow-event pairs (`"s"`/`"f"`) drawn as arrows between tracks.
//!
//! [`check_chrome_trace`] is the matching minimal validator — the same
//! role [`crate::parse_prometheus`] plays for the metrics exposition —
//! used by `kertctl trace --chrome` and the CI trace-smoke job to gate
//! that exported files are actually loadable.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde::Value;

use crate::trace::TraceTree;

/// Microseconds: the trace-event format's native time unit. Stamps are
/// stored in ns (or virtual ticks); a fixed ÷1000 keeps ordering.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn str_entry(k: &str, v: &str) -> (String, Value) {
    (k.to_string(), Value::Str(v.to_string()))
}

fn num_entry(k: &str, v: f64) -> (String, Value) {
    (k.to_string(), Value::Num(v))
}

/// Render `traces` as one Chrome trace-event JSON document (an object
/// with a `traceEvents` array — the envelope both `chrome://tracing`
/// and Perfetto accept).
pub fn chrome_trace_json(traces: &[TraceTree]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for tree in traces {
        for s in &tree.spans {
            let mut args = vec![
                num_entry("span_id", s.id as f64),
                num_entry("parent_id", s.parent as f64),
            ];
            for (k, v) in &s.labels {
                args.push(str_entry(k, v));
            }
            events.push(Value::Map(vec![
                str_entry("name", &s.name),
                str_entry("cat", "kert"),
                str_entry("ph", "X"),
                num_entry("ts", us(s.start_ns)),
                num_entry("dur", us(s.end_ns.saturating_sub(s.start_ns))),
                num_entry("pid", 1.0),
                num_entry("tid", tree.trace_id as f64),
                ("args".to_string(), Value::Map(args)),
            ]));
        }
    }
    // Flow arrows for cross-trace links whose target is in this export.
    let mut flow_id = 1u64;
    for tree in traces {
        for s in &tree.spans {
            for l in &s.links {
                let Some(target) = traces
                    .iter()
                    .find(|t| t.trace_id == l.trace_id)
                    .and_then(|t| t.spans.iter().find(|ts| ts.id == l.span_id))
                else {
                    continue;
                };
                events.push(Value::Map(vec![
                    str_entry("name", &l.kind),
                    str_entry("cat", "kert.flow"),
                    str_entry("ph", "s"),
                    num_entry("id", flow_id as f64),
                    num_entry("ts", us(target.start_ns)),
                    num_entry("pid", 1.0),
                    num_entry("tid", l.trace_id as f64),
                ]));
                events.push(Value::Map(vec![
                    str_entry("name", &l.kind),
                    str_entry("cat", "kert.flow"),
                    str_entry("ph", "f"),
                    str_entry("bp", "e"),
                    num_entry("id", flow_id as f64),
                    num_entry("ts", us(s.start_ns)),
                    num_entry("pid", 1.0),
                    num_entry("tid", tree.trace_id as f64),
                ]));
                flow_id += 1;
            }
        }
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        str_entry("displayTimeUnit", "ms"),
    ]);
    serde_json::to_string(&doc).expect("a value tree always serializes")
}

/// What [`check_chrome_trace`] counted in a valid document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total trace events.
    pub events: usize,
    /// Complete (`"ph":"X"`) span events.
    pub complete: usize,
    /// Flow (`"s"`/`"t"`/`"f"`) events.
    pub flows: usize,
}

fn field<'v>(event: &'v Value, key: &str, index: usize) -> Result<&'v Value, String> {
    event
        .get(key)
        .ok_or_else(|| format!("event {index}: missing required field {key:?}"))
}

fn num_field(event: &Value, key: &str, index: usize) -> Result<f64, String> {
    match field(event, key, index)? {
        Value::Num(n) if n.is_finite() => Ok(*n),
        other => Err(format!(
            "event {index}: field {key:?} must be a finite number, got {other:?}"
        )),
    }
}

/// Minimal Chrome trace-event validator: accepts a bare event array or
/// the `{"traceEvents": […]}` envelope; every event needs `name`, a
/// known `ph`, finite non-negative `ts`, and `pid`/`tid`; complete
/// events need a non-negative `dur`, flow events an `id`. Returns
/// per-phase counts on success.
pub fn check_chrome_trace(text: &str) -> Result<ChromeStats, String> {
    let doc = serde_json::value_from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        Value::Seq(events) => events,
        Value::Map(_) => match doc.get("traceEvents") {
            Some(Value::Seq(events)) => events,
            Some(other) => {
                return Err(format!("traceEvents must be an array, got {other:?}"));
            }
            None => return Err("top-level object has no traceEvents array".into()),
        },
        other => {
            return Err(format!(
                "expected an event array or {{\"traceEvents\": […]}}, got {other:?}"
            ))
        }
    };
    let mut stats = ChromeStats {
        events: 0,
        complete: 0,
        flows: 0,
    };
    for (i, event) in events.iter().enumerate() {
        if !matches!(event, Value::Map(_)) {
            return Err(format!("event {i}: not a JSON object"));
        }
        match field(event, "name", i)? {
            Value::Str(name) if !name.is_empty() => {}
            other => return Err(format!("event {i}: bad name {other:?}")),
        }
        let ph = match field(event, "ph", i)? {
            Value::Str(ph) => ph.as_str(),
            other => return Err(format!("event {i}: ph must be a string, got {other:?}")),
        };
        if !matches!(
            ph,
            "X" | "B" | "E" | "i" | "I" | "s" | "t" | "f" | "C" | "b" | "e" | "n" | "M"
        ) {
            return Err(format!("event {i}: unknown phase {ph:?}"));
        }
        let ts = num_field(event, "ts", i)?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts {ts}"));
        }
        num_field(event, "pid", i)?;
        num_field(event, "tid", i)?;
        match ph {
            "X" => {
                let dur = num_field(event, "dur", i)?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
                stats.complete += 1;
            }
            "s" | "t" | "f" => {
                field(event, "id", i)?;
                stats.flows += 1;
            }
            _ => {}
        }
        stats.events += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;

    fn linked_pair() -> Vec<TraceTree> {
        let mut leader = TraceContext::with_virtual_clock(1, 9);
        let root = leader.open("kertd.request");
        let compute = leader.open("kertd.propagate");
        leader.close(compute);
        leader.close(root);
        let leader = leader.finish();

        let mut follower = TraceContext::with_virtual_clock(2, 9);
        let root = follower.open("kertd.request");
        let shadow = follower.open("kertd.propagate");
        follower.link(shadow, 1, compute, "coalesced-into");
        follower.close(shadow);
        follower.close(root);
        vec![leader, follower.finish()]
    }

    #[test]
    fn export_validates_and_counts_flows() {
        let traces = linked_pair();
        let json = chrome_trace_json(&traces);
        let stats = check_chrome_trace(&json).expect("own export must validate");
        assert_eq!(stats.complete, 4, "two spans per trace");
        assert_eq!(stats.flows, 2, "one s/f pair for the coalesce link");
        assert_eq!(stats.events, 6);
    }

    #[test]
    fn links_to_absent_traces_are_skipped_not_broken() {
        let mut ctx = TraceContext::with_virtual_clock(5, 1);
        let s = ctx.open("kertd.propagate");
        ctx.link(s, 999, 1, "coalesced-into");
        ctx.close(s);
        let json = chrome_trace_json(&[ctx.finish()]);
        let stats = check_chrome_trace(&json).unwrap();
        assert_eq!((stats.complete, stats.flows), (1, 0));
    }

    #[test]
    fn checker_accepts_bare_arrays_and_rejects_malformed_events() {
        assert!(check_chrome_trace(r#"[]"#).is_ok());
        assert!(
            check_chrome_trace(r#"[{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]"#).is_ok()
        );
        // Not JSON at all.
        assert!(check_chrome_trace("nope").is_err());
        // Wrong envelope.
        assert!(check_chrome_trace(r#"{"events":[]}"#).is_err());
        // Missing dur on a complete event.
        assert!(check_chrome_trace(r#"[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]"#).is_err());
        // Unknown phase.
        assert!(check_chrome_trace(r#"[{"name":"a","ph":"Z","ts":0,"pid":1,"tid":1}]"#).is_err());
        // Flow without an id.
        assert!(check_chrome_trace(r#"[{"name":"a","ph":"s","ts":0,"pid":1,"tid":1}]"#).is_err());
        // Negative timestamp.
        assert!(check_chrome_trace(r#"[{"name":"a","ph":"i","ts":-4,"pid":1,"tid":1}]"#).is_err());
    }
}
