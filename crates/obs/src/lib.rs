//! # kert-obs — spans, counters, and health telemetry for the KERT-BN runtime
//!
//! The paper's premise is autonomic management driven by monitoring agents;
//! this crate makes the reproduction's own runtime observable the same way.
//! It is a dependency-free instrumentation layer (std plus the vendored
//! serde stand-ins for the exporters) that the engine crates — `kert-bayes`,
//! `kert-sim`, `kert-agents`, `kert-core`, `kert-bench` — thread through
//! their hot and failure paths:
//!
//! * **Counters** — monotonically increasing `u64`s (factor products,
//!   junction-tree messages, collection retries, fallback-ladder rungs).
//! * **Gauges** — last-written `f64`s (`ModelHealth` fresh fraction,
//!   per-node degradation state).
//! * **Histograms** — log₂-bucketed nanosecond distributions, fed by spans.
//! * **Spans** — monotonic-clock timings with parent/child nesting via a
//!   thread-local stack; every closed span records into the histogram named
//!   after it and, in JSONL mode, emits a [`TelemetryEvent`].
//! * **Traces** — per-request causal span trees ([`trace::TraceContext`])
//!   that move across threads, capture library spans while installed, and
//!   land in a bounded [`trace::FlightRecorder`]; exportable as Chrome
//!   trace-event JSON ([`chrome_trace_json`]) or JSONL events.
//!
//! ## Cost model
//!
//! Instrumentation must be invisible when nobody is looking. Every
//! recording entry point first reads one relaxed atomic (the global mode);
//! when telemetry is disabled that load-and-branch is the *entire* cost —
//! no allocation, no lock, no clock read. Enabled-mode counters are a
//! relaxed `fetch_add` on a handle cached in a per-call-site `OnceLock`, so
//! the registry mutex is touched once per call site, not per increment.
//!
//! ## Modes
//!
//! The `KERT_OBS` environment variable (read once, overridable with
//! [`set_mode`]) selects:
//!
//! | value | mode | behaviour |
//! |---|---|---|
//! | unset, `0`, `off` | [`ObsMode::Disabled`] | everything is a no-op |
//! | `1`, `on`, `metrics` | [`ObsMode::Metrics`] | counters/gauges/histograms/spans accumulate in the registry |
//! | `jsonl` | [`ObsMode::Jsonl`] | metrics **plus** a JSONL event/span stream (`KERT_OBS_FILE` or stderr) |
//!
//! ## Exporters
//!
//! * [`prometheus_snapshot`] — Prometheus text exposition of the registry.
//! * the JSONL sink — one [`TelemetryEvent`] object per line, schema-stable
//!   (`serde` round-trip tested).
//! * [`TelemetrySnapshot`] — a serializable point-in-time registry dump
//!   that `kert-bench` embeds into `BENCH_perf.json`, so perf numbers ship
//!   with their explaining counters.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod chrome;
pub mod event;
pub mod export;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use chrome::{check_chrome_trace, chrome_trace_json, ChromeStats};
pub use event::{event, event_with, EventKind, TelemetryEvent};
pub use export::{flush, parse_prometheus, prometheus_snapshot, set_sink_path, set_sink_stderr};
pub use registry::{set_gauge, set_gauge_labeled, Counter, Gauge, Histogram};
pub use snapshot::{reset, snapshot, HistogramSnapshot, TelemetrySnapshot};
pub use span::{span, Span};
pub use trace::{trace_events, FlightRecorder, SpanLink, SpanRecord, TraceContext, TraceTree};

/// How much telemetry the process records (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Every instrumentation point is a no-op after one relaxed load.
    Disabled,
    /// Counters, gauges, histograms, and spans accumulate in the registry.
    Metrics,
    /// [`ObsMode::Metrics`] plus the JSONL event/span stream.
    Jsonl,
}

const MODE_DISABLED: u8 = 0;
const MODE_METRICS: u8 = 1;
const MODE_JSONL: u8 = 2;
const MODE_UNINIT: u8 = u8::MAX;

/// Current mode, `MODE_UNINIT` until the first probe reads `KERT_OBS`.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[inline]
pub(crate) fn mode_raw() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m == MODE_UNINIT {
        init_mode_from_env()
    } else {
        m
    }
}

#[cold]
fn init_mode_from_env() -> u8 {
    let m = match std::env::var("KERT_OBS").ok().as_deref() {
        Some("1") | Some("on") | Some("metrics") | Some("counters") => MODE_METRICS,
        Some("jsonl") | Some("json") => MODE_JSONL,
        _ => MODE_DISABLED,
    };
    MODE.store(m, Ordering::Relaxed);
    m
}

/// Is any telemetry being recorded?
#[inline]
pub fn enabled() -> bool {
    mode_raw() >= MODE_METRICS
}

/// Is the JSONL event/span stream active?
#[inline]
pub fn jsonl_enabled() -> bool {
    mode_raw() == MODE_JSONL
}

/// The current mode.
pub fn mode() -> ObsMode {
    match mode_raw() {
        MODE_METRICS => ObsMode::Metrics,
        MODE_JSONL => ObsMode::Jsonl,
        _ => ObsMode::Disabled,
    }
}

/// Override the mode programmatically (benches toggle between disabled and
/// enabled runs; tests force [`ObsMode::Metrics`] regardless of the
/// environment). Takes effect for all subsequent instrumentation calls.
pub fn set_mode(mode: ObsMode) {
    let m = match mode {
        ObsMode::Disabled => MODE_DISABLED,
        ObsMode::Metrics => MODE_METRICS,
        ObsMode::Jsonl => MODE_JSONL,
    };
    MODE.store(m, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole crate shares one global registry, so the unit tests here
    // serialize on a single lock and work with counter *deltas*.
    use std::sync::Mutex;
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    static C_LIB: Counter = Counter::new("test.lib.counter");

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        set_mode(ObsMode::Disabled);
        let before = C_LIB.value();
        C_LIB.incr();
        C_LIB.add(10);
        assert_eq!(C_LIB.value(), before, "disabled counter must not move");
        assert!(!enabled());
        assert!(!jsonl_enabled());
    }

    #[test]
    fn metrics_mode_accumulates() {
        let _g = TEST_LOCK.lock().unwrap();
        set_mode(ObsMode::Metrics);
        let before = C_LIB.value();
        C_LIB.add(3);
        C_LIB.incr();
        assert_eq!(C_LIB.value(), before + 4);
        assert_eq!(mode(), ObsMode::Metrics);
        set_mode(ObsMode::Disabled);
    }
}
