//! Exporters: the JSONL line sink and the Prometheus-style text snapshot.
//!
//! The JSONL sink is a process-global writer. By default the stream goes
//! to stderr; `KERT_OBS_FILE=<path>` (read at first write) or
//! [`set_sink_path`] redirect it to a file. Lines are flushed as they are
//! written — the stream exists for post-mortem and CI validation, not
//! throughput, and event rates are control-period-scale.
//!
//! The Prometheus snapshot renders the whole registry in text exposition
//! format (counters, gauges, and histograms with cumulative `le` buckets).
//! [`parse_prometheus`] is the matching validator used by `kertctl` and
//! the CI observability job.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

use crate::registry::{with_registry, HIST_BUCKETS};

struct SinkState {
    /// Has the sink looked at `KERT_OBS_FILE` yet?
    init: bool,
    /// `Some(file)` = write there; `None` = stderr.
    file: Option<File>,
}

static SINK: Mutex<SinkState> = Mutex::new(SinkState {
    init: false,
    file: None,
});

/// Write one line (plus `\n`) to the active sink, initializing from
/// `KERT_OBS_FILE` on first use. Errors are swallowed: telemetry must
/// never take down the workload it observes.
pub(crate) fn write_line(line: &str) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if !sink.init {
        sink.init = true;
        if let Ok(path) = std::env::var("KERT_OBS_FILE") {
            sink.file = OpenOptions::new().create(true).append(true).open(path).ok();
        }
    }
    match &mut sink.file {
        Some(f) => {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        None => {
            let _ = writeln!(std::io::stderr().lock(), "{line}");
        }
    }
}

/// Redirect the JSONL stream to `path` (truncating any existing file).
pub fn set_sink_path(path: &str) -> std::io::Result<()> {
    let f = File::create(path)?;
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.init = true;
    sink.file = Some(f);
    Ok(())
}

/// Point the JSONL stream (back) at stderr.
pub fn set_sink_stderr() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.init = true;
    sink.file = None;
}

/// Flush the sink (file writes already flush per line; this exists so
/// shutdown paths can be explicit about it).
pub fn flush() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(f) = &mut sink.file {
        let _ = f.flush();
    }
}

/// Map a dotted metric name onto the Prometheus charset:
/// `[a-zA-Z0-9_:]`, everything else becomes `_`.
pub(crate) fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn write_sample(out: &mut String, name: &str, value: f64) {
    out.push_str(name);
    out.push(' ');
    if value.fract() == 0.0 && value.abs() < 1e15 {
        out.push_str(&format!("{}", value as i64));
    } else {
        out.push_str(&format!("{value}"));
    }
    out.push('\n');
}

/// Render the registry in Prometheus text exposition format. Counters and
/// gauges become single samples; histograms expose cumulative
/// `_bucket{le="…"}` samples plus `_sum` and `_count`.
pub fn prometheus_snapshot() -> String {
    let mut out = String::new();
    with_registry(|r| {
        for (name, handle) in &r.counters {
            let n = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {n} counter\n"));
            write_sample(&mut out, &n, handle.load(Ordering::Relaxed) as f64);
        }
        let mut last_base = String::new();
        for (name, handle) in &r.gauges {
            // Labeled gauges store `base{k="v"}` with the base already
            // sanitized; plain gauges keep their dotted name and are
            // sanitized here. One TYPE line per base (series of one base
            // sort adjacently in the BTreeMap).
            let (base, labels) = match name.find('{') {
                Some(i) => (sanitize_metric_name(&name[..i]), &name[i..]),
                None => (sanitize_metric_name(name), ""),
            };
            if base != last_base {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                last_base = base.clone();
            }
            write_sample(
                &mut out,
                &format!("{base}{labels}"),
                f64::from_bits(handle.load(Ordering::Relaxed)),
            );
        }
        for (name, h) in &r.histograms {
            let n = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                let c = bucket.load(Ordering::Relaxed);
                if c == 0 {
                    continue;
                }
                cumulative += c;
                // Bucket i holds ns < 2^i (bucket 0 holds zeros).
                let le = if i >= HIST_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    format!("{}", 1u64 << i)
                };
                write_sample(
                    &mut out,
                    &format!("{n}_bucket{{le=\"{le}\"}}"),
                    cumulative as f64,
                );
            }
            write_sample(
                &mut out,
                &format!("{n}_bucket{{le=\"+Inf\"}}"),
                h.count.load(Ordering::Relaxed) as f64,
            );
            write_sample(
                &mut out,
                &format!("{n}_sum"),
                h.sum_ns.load(Ordering::Relaxed) as f64,
            );
            write_sample(
                &mut out,
                &format!("{n}_count"),
                h.count.load(Ordering::Relaxed) as f64,
            );
        }
    });
    out
}

/// Parse a Prometheus text exposition back into `(name, value)` samples,
/// validating metric-name charset, label-block quoting, and numeric
/// values. The inverse check for [`prometheus_snapshot`]; used by the CI
/// observability job.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample value in {line:?}", lineno + 1))?;
        let value: f64 = value.parse().or_else(|_| match value {
            "+Inf" => Ok(f64::INFINITY),
            "-Inf" => Ok(f64::NEG_INFINITY),
            _ => Err(format!("line {}: bad value {value:?}", lineno + 1)),
        })?;
        validate_sample_name(name).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        samples.push((name.to_string(), value));
    }
    Ok(samples)
}

fn validate_sample_name(name: &str) -> Result<(), String> {
    let (base, labels) = match name.find('{') {
        Some(i) => (&name[..i], Some(&name[i..])),
        None => (name, None),
    };
    if base.is_empty()
        || !base
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || base.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("bad metric name {base:?}"));
    }
    if let Some(block) = labels {
        let inner = block
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| format!("unterminated label block in {name:?}"))?;
        for pair in inner.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("label {pair:?} is not k=\"v\""))?;
            if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("bad label name {k:?}"));
            }
            if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                return Err(format!("label value {v:?} is not quoted"));
            }
            validate_label_value(&v[1..v.len() - 1])
                .map_err(|e| format!("label value {v:?}: {e}"))?;
        }
    }
    Ok(())
}

/// Validate the escaping inside a quoted label value: only `\\`, `\"`,
/// and `\n` escapes are legal, and raw quotes/newlines must not appear
/// unescaped (they would have broken the quoting that
/// [`crate::set_gauge_labeled`] produces).
fn validate_label_value(inner: &str) -> Result<(), String> {
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('\\') | Some('"') | Some('n') => {}
                Some(other) => return Err(format!("unknown escape \\{other}")),
                None => return Err("dangling backslash".into()),
            },
            '"' => return Err("unescaped quote".into()),
            '\n' => return Err("unescaped newline".into()),
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn snapshot_parses_back() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        static C: crate::Counter = crate::Counter::new("test.export.requests");
        static H: crate::Histogram = crate::Histogram::new("test.export.latency");
        C.add(7);
        H.record(1_500);
        crate::set_gauge_labeled("test.export.health", &[("node", "1")], 0.5);
        let text = prometheus_snapshot();
        let samples = parse_prometheus(&text).expect("own snapshot must parse");
        assert!(samples
            .iter()
            .any(|(n, v)| n == "test_export_requests" && *v >= 7.0));
        assert!(samples
            .iter()
            .any(|(n, _)| n == "test_export_health{node=\"1\"}"));
        assert!(samples
            .iter()
            .any(|(n, _)| n.starts_with("test_export_latency_bucket")));
        crate::set_mode(ObsMode::Disabled);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("no_value_here\n").is_err());
        assert!(parse_prometheus("bad-name 1\n").is_err());
        assert!(parse_prometheus("name{k=unquoted} 1\n").is_err());
        assert!(parse_prometheus("ok_name 1\n# comment\n\n").is_ok());
    }

    #[test]
    fn hostile_label_values_are_escaped_and_parse_back() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        crate::set_gauge_labeled("test.export.escapes", &[("path", "a\\b\"c\nd")], 1.0);
        let text = prometheus_snapshot();
        let samples = parse_prometheus(&text).expect("escaped snapshot must parse");
        let sample = samples
            .iter()
            .find(|(n, _)| n.starts_with("test_export_escapes{"))
            .expect("labeled gauge exported");
        // Backslash, quote, and newline survive as exposition escapes
        // instead of being flattened to `_`.
        assert_eq!(sample.0, "test_export_escapes{path=\"a\\\\b\\\"c\\nd\"}");
        crate::set_mode(ObsMode::Disabled);
    }

    #[test]
    fn parser_rejects_unescaped_label_values() {
        // Raw quote inside the quoted value.
        assert!(parse_prometheus("g{k=\"a\"b\"} 1\n").is_err());
        // Unknown escape sequence.
        assert!(parse_prometheus("g{k=\"a\\qb\"} 1\n").is_err());
        // Dangling backslash.
        assert!(parse_prometheus("g{k=\"a\\\"} 1\n").is_err());
        // Properly escaped forms pass.
        assert!(parse_prometheus("g{k=\"a\\\\b\\\"c\\nd\"} 1\n").is_ok());
    }
}
