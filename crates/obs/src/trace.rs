//! Causal request tracing: per-request span trees and a flight recorder.
//!
//! [`crate::span`] gives each *thread* a stack of timed scopes feeding
//! histograms; this module gives each *request* a causal tree it can
//! carry across threads. A [`TraceContext`] owns one request's tree:
//! span ids are **trace-local** (a counter starting at 1, not the
//! process-global span id), so two runs of the same request sequence
//! produce bitwise-identical trees — the property the conformance drill
//! gates. Parent links come from a per-context stack of open spans;
//! cross-tree causality (a coalesced request pointing at the micro-batch
//! leader's compute span) is an explicit [`SpanLink`].
//!
//! ## Clocks
//!
//! Timestamps come from the context's [clock](TraceContext::new): the
//! monotonic clock (nanoseconds since the first trace in the process)
//! for live serving, or a **virtual clock** — a seeded splitmix64 walk
//! that advances by a deterministic pseudo-duration per stamp — for
//! replayable drills. Virtual contexts never read the wall clock, so a
//! seeded drill is reproducible down to every `start_ns`/`end_ns`.
//!
//! ## Capturing library spans
//!
//! While a context is [installed](install) on a thread, every
//! [`crate::span`] opened on that thread (junction-tree propagation,
//! serve-layer evidence entry, …) is *also* recorded into the context,
//! nested under its innermost open span. The capture hook only runs when
//! telemetry is enabled, so the disabled-mode cost model — one relaxed
//! atomic load per instrumentation point — is unchanged.
//!
//! ## Flight recorder
//!
//! [`FlightRecorder`] is a bounded ring of the last N completed trees.
//! It is lock-light by construction: spans accumulate in the context
//! (no shared state), and the ring mutex is taken exactly **once per
//! request**, at [`FlightRecorder::record`] — never per span.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::event::{EventKind, TelemetryEvent};

/// Default flight-recorder capacity (complete traces, not spans).
pub const DEFAULT_FLIGHT_CAP: usize = 2048;

/// A causal pointer from one span to a span in (usually) another trace —
/// e.g. a coalesced request's propagate span linking to the micro-batch
/// leader's shared compute span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanLink {
    /// Trace the target span belongs to.
    pub trace_id: u64,
    /// Target span id within that trace.
    pub span_id: u64,
    /// Edge meaning, e.g. `"coalesced-into"`.
    pub kind: String,
}

/// One closed (or still-open: `end_ns == 0`) span inside a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace-local id, 1-based in open order.
    pub id: u64,
    /// Enclosing span's trace-local id (0 = root).
    pub parent: u64,
    /// Span name (`kertd.propagate`, `jt.marginal`, …). A `Cow` so the
    /// capture hook — which only ever sees `&'static` names from
    /// [`crate::span`] call sites — records without allocating.
    pub name: Cow<'static, str>,
    /// Open stamp (clock-dependent: ns or virtual ticks).
    pub start_ns: u64,
    /// Close stamp; 0 while the span is open.
    pub end_ns: u64,
    /// Key/value annotations (verb, group size, queue depth, …).
    pub labels: Vec<(String, String)>,
    /// Cross-trace causal edges.
    pub links: Vec<SpanLink>,
}

/// One request's completed span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTree {
    /// Request identity (daemon-assigned or carried in on the wire).
    pub trace_id: u64,
    /// Spans in open order; parents always precede children.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// First span named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Duration of the first span named `name` (0 if absent).
    pub fn span_ns(&self, name: &str) -> u64 {
        self.find(name)
            .map(|s| s.end_ns.saturating_sub(s.start_ns))
            .unwrap_or(0)
    }
}

/// Process-wide trace epoch: all monotonic-clock contexts stamp
/// nanoseconds since the first stamp anywhere in the process, so spans
/// from different threads and traces share one timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn monotonic_ns() -> u64 {
    monotonic_ns_at(Instant::now())
}

/// Epoch-relative stamp for an `Instant` the caller already read — the
/// capture hook reuses [`crate::span`]'s own clock read instead of
/// paying a second one per mirror span.
fn monotonic_ns_at(at: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(|| at);
    u64::try_from(at.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// splitmix64: the standard 64-bit finalizer — deterministic, seedable,
/// and good enough to make virtual-clock ticks look duration-like.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug, Clone)]
enum TraceClock {
    /// Nanoseconds since the process trace epoch.
    Monotonic,
    /// Seeded deterministic walk: each stamp advances the cursor by a
    /// pseudo-duration derived from the generator state. Never touches
    /// the wall clock.
    Virtual { state: u64, now: u64 },
}

impl TraceClock {
    /// Next stamp. A monotonic clock reuses an already-read `at` instead
    /// of paying a second clock read; a virtual clock ignores `at`
    /// entirely (determinism is its whole point).
    fn stamp_at(&mut self, at: Option<Instant>) -> u64 {
        match self {
            TraceClock::Monotonic => match at {
                Some(at) => monotonic_ns_at(at),
                None => monotonic_ns(),
            },
            TraceClock::Virtual { state, now } => {
                *state = splitmix64(*state);
                *now += (*state % 997) + 1;
                *now
            }
        }
    }
}

/// One request's in-flight trace: an arena of spans plus the stack of
/// currently open ones. Owned, `Send`, and cheap to move between the
/// connection thread, the admission queue, and a worker.
#[derive(Debug)]
pub struct TraceContext {
    trace_id: u64,
    clock: TraceClock,
    spans: Vec<SpanRecord>,
    /// Indices into `spans` of the currently open scopes, innermost last.
    stack: Vec<usize>,
    next_id: u64,
}

impl TraceContext {
    /// A live context on the shared monotonic clock.
    pub fn new(trace_id: u64) -> Self {
        TraceContext::with_clock(trace_id, TraceClock::Monotonic)
    }

    /// A deterministic context: all stamps come from a seeded virtual
    /// clock, so identical operation sequences yield identical trees.
    pub fn with_virtual_clock(trace_id: u64, seed: u64) -> Self {
        TraceContext::with_clock(
            trace_id,
            TraceClock::Virtual {
                state: splitmix64(seed ^ trace_id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                now: 0,
            },
        )
    }

    fn with_clock(trace_id: u64, clock: TraceClock) -> Self {
        TraceContext {
            trace_id,
            clock,
            spans: Vec::with_capacity(8),
            stack: Vec::with_capacity(4),
            next_id: 1,
        }
    }

    /// This trace's identity.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Spans recorded so far (open and closed).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Open a span under the innermost open span (root if none).
    /// Returns its trace-local id.
    pub fn open(&mut self, name: &str) -> u64 {
        self.open_with(Cow::Owned(name.to_string()), None)
    }

    /// The allocation-free open the capture hook uses: a `'static` name
    /// and (optionally) an already-read clock instant.
    fn open_with(&mut self, name: Cow<'static, str>, at: Option<Instant>) -> u64 {
        let start_ns = self.clock.stamp_at(at);
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.stack.last().map(|&ix| self.spans[ix].id).unwrap_or(0);
        self.stack.push(self.spans.len());
        self.spans.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            end_ns: 0,
            labels: Vec::new(),
            links: Vec::new(),
        });
        id
    }

    /// Close span `id`. Any still-open spans nested inside it are closed
    /// with the same stamp (defensive: a leaked inner guard must not
    /// corrupt the stack). Unknown or already-closed ids are a no-op,
    /// as is `id == 0`.
    pub fn close(&mut self, id: u64) {
        self.close_at(id, None);
    }

    fn close_at(&mut self, id: u64, at: Option<Instant>) {
        if id == 0 {
            return;
        }
        let Some(pos) = self.stack.iter().rposition(|&ix| self.spans[ix].id == id) else {
            return;
        };
        let stamp = self.clock.stamp_at(at);
        // Pop in place rather than `split_off`: closing a span is on the
        // capture hot path and must not allocate.
        while self.stack.len() > pos {
            let ix = self.stack.pop().expect("len > pos >= 0");
            self.spans[ix].end_ns = stamp;
        }
    }

    /// Attach a label to span `id` (no-op for unknown ids).
    pub fn label(&mut self, id: u64, key: &str, value: &str) {
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            s.labels.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach a cross-trace causal link to span `id`.
    pub fn link(&mut self, id: u64, trace_id: u64, span_id: u64, kind: &str) {
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            s.links.push(SpanLink {
                trace_id,
                span_id,
                kind: kind.to_string(),
            });
        }
    }

    /// Close every still-open span and yield the finished tree.
    pub fn finish(mut self) -> TraceTree {
        if let Some(&root_ix) = self.stack.first() {
            let root_id = self.spans[root_ix].id;
            self.close(root_id);
        }
        TraceTree {
            trace_id: self.trace_id,
            spans: self.spans,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local capture hook
// ---------------------------------------------------------------------------

thread_local! {
    /// The context capturing this thread's [`crate::span`]s, if any.
    static ACTIVE: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// Install `ctx` as this thread's capturing context: until [`take`],
/// every enabled [`crate::span`] opened on this thread is also recorded
/// into it. Returns the previously installed context, if any.
pub fn install(mut ctx: TraceContext) -> Option<TraceContext> {
    // An installed context is about to absorb a burst of mirror spans
    // (a propagation can fire dozens); pre-size the arena so the burst
    // doesn't pay repeated reallocation copies of full `SpanRecord`s.
    let want = 96usize.saturating_sub(ctx.spans.len());
    ctx.spans.reserve(want);
    ACTIVE.with(|a| a.borrow_mut().replace(ctx))
}

/// Remove and return this thread's capturing context.
pub fn take() -> Option<TraceContext> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Is a capturing context installed on this thread?
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Run `f` against the installed context, if any.
pub fn with_active<R>(f: impl FnOnce(&mut TraceContext) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
}

/// Capture hook for [`crate::span`]: open a mirror span in the installed
/// context, reusing the span's own clock read (`at`) and its `'static`
/// name, so a capture allocates nothing and never touches the clock
/// again. Returns 0 when no context is installed. `try_borrow` keeps the
/// hook inert (rather than aborting) if it ever re-enters.
pub(crate) fn capture_open(name: &'static str, at: Instant) -> u64 {
    ACTIVE.with(|a| match a.try_borrow_mut() {
        Ok(mut guard) => guard
            .as_mut()
            .map(|c| c.open_with(Cow::Borrowed(name), Some(at)))
            .unwrap_or(0),
        Err(_) => 0,
    })
}

/// Close a span previously opened by [`capture_open`]. Runs from `Drop`
/// during unwinding, so it must never panic: borrow failures and missing
/// contexts are silently ignored.
pub(crate) fn capture_close(id: u64, at: Instant) {
    if id == 0 {
        return;
    }
    ACTIVE.with(|a| {
        if let Ok(mut guard) = a.try_borrow_mut() {
            if let Some(c) = guard.as_mut() {
                c.close_at(id, Some(at));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// A bounded ring of the most recent completed traces. One short mutex
/// acquisition per completed request; spans themselves are buffered in
/// the per-request [`TraceContext`] with no shared state.
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<TraceTree>>,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` traces (`cap` is clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            recorded: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Push a completed trace, evicting the oldest when full.
    pub fn record(&self, tree: TraceTree) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(tree);
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The most recent `limit` traces in arrival order (`limit == 0`
    /// means everything held).
    pub fn snapshot(&self, limit: usize) -> Vec<TraceTree> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let take = if limit == 0 {
            ring.len()
        } else {
            limit.min(ring.len())
        };
        ring.iter().skip(ring.len() - take).cloned().collect()
    }

    /// Drop every held trace (the total-recorded count is preserved).
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Flatten a trace into JSONL [`TelemetryEvent`]s — one `Span`-kind
/// event per span, with the trace id, start stamp, and causal links
/// carried as labels so the flat schema stays unchanged.
pub fn trace_events(tree: &TraceTree) -> Vec<TelemetryEvent> {
    tree.spans
        .iter()
        .map(|s| {
            let elapsed_ns = s.end_ns.saturating_sub(s.start_ns);
            let mut labels = vec![
                ("trace_id".to_string(), tree.trace_id.to_string()),
                ("start_ns".to_string(), s.start_ns.to_string()),
            ];
            labels.extend(s.labels.iter().cloned());
            for l in &s.links {
                labels.push((
                    format!("link_{}", l.kind),
                    format!("{}:{}", l.trace_id, l.span_id),
                ));
            }
            TelemetryEvent {
                seq: 0,
                kind: EventKind::Span,
                name: s.name.to_string(),
                span_id: s.id,
                parent_id: s.parent,
                elapsed_ns,
                value: elapsed_ns as f64,
                labels,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_trace_local_and_parents_nest() {
        let mut ctx = TraceContext::new(7);
        let a = ctx.open("a");
        let b = ctx.open("b");
        let c = ctx.open("c");
        assert_eq!((a, b, c), (1, 2, 3));
        ctx.close(c);
        let d = ctx.open("d");
        ctx.close(d);
        ctx.close(b);
        ctx.close(a);
        let tree = ctx.finish();
        assert_eq!(tree.trace_id, 7);
        let parents: Vec<(u64, u64)> = tree.spans.iter().map(|s| (s.id, s.parent)).collect();
        assert_eq!(parents, vec![(1, 0), (2, 1), (3, 2), (4, 2)]);
        assert!(tree.spans.iter().all(|s| s.end_ns >= s.start_ns));
    }

    #[test]
    fn close_is_defensive_about_leaked_inner_spans() {
        let mut ctx = TraceContext::new(1);
        let outer = ctx.open("outer");
        let _leaked = ctx.open("leaked");
        // Closing the outer span also closes the leaked inner one.
        ctx.close(outer);
        // Closing twice (or a bogus id) is a no-op.
        ctx.close(outer);
        ctx.close(999);
        let tree = ctx.finish();
        assert_eq!(tree.spans.len(), 2);
        assert!(tree.spans.iter().all(|s| s.end_ns != 0));
    }

    #[test]
    fn virtual_clock_is_bitwise_deterministic() {
        let run = |seed: u64| {
            let mut ctx = TraceContext::with_virtual_clock(42, seed);
            let root = ctx.open("root");
            ctx.label(root, "verb", "posterior");
            let child = ctx.open("child");
            ctx.link(child, 41, 3, "coalesced-into");
            ctx.close(child);
            ctx.close(root);
            serde_json::to_string(&ctx.finish()).unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds must give different stamps");
    }

    #[test]
    fn install_capture_take_round_trip() {
        let mut ctx = TraceContext::with_virtual_clock(9, 1);
        let root = ctx.open("root");
        assert!(install(ctx).is_none());
        assert!(is_active());
        let captured = capture_open("inner.work", Instant::now());
        assert_ne!(captured, 0);
        capture_close(captured, Instant::now());
        let mut ctx = take().expect("context still installed");
        assert!(!is_active());
        ctx.close(root);
        let tree = ctx.finish();
        let inner = tree.find("inner.work").expect("captured span recorded");
        assert_eq!(inner.parent, root);
        // With nothing installed the hook is a no-op returning 0.
        assert_eq!(capture_open("ignored", Instant::now()), 0);
        capture_close(17, Instant::now());
    }

    #[test]
    fn flight_recorder_bounds_and_snapshots() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(TraceTree {
                trace_id: i,
                spans: Vec::new(),
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total_recorded(), 5);
        let ids: Vec<u64> = rec.snapshot(0).iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        let ids: Vec<u64> = rec.snapshot(2).iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 4]);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.total_recorded(), 5);
    }

    #[test]
    fn trace_trees_round_trip_through_serde() {
        let mut ctx = TraceContext::with_virtual_clock(3, 11);
        let a = ctx.open("a");
        ctx.label(a, "k", "v");
        ctx.link(a, 2, 1, "coalesced-into");
        ctx.close(a);
        let tree = ctx.finish();
        let json = serde_json::to_string(&tree).unwrap();
        let back: TraceTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn trace_events_flatten_spans_with_context_labels() {
        let mut ctx = TraceContext::with_virtual_clock(4, 2);
        let a = ctx.open("kertd.request");
        let b = ctx.open("kertd.propagate");
        ctx.link(b, 9, 2, "coalesced-into");
        ctx.close(b);
        ctx.close(a);
        let events = trace_events(&ctx.finish());
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.labels.iter().any(|(k, v)| k == "trace_id" && v == "4")));
        assert!(events[1]
            .labels
            .iter()
            .any(|(k, v)| k == "link_coalesced-into" && v == "9:2"));
    }
}
