//! The global metric registry: counters, gauges, and histograms.
//!
//! The registry itself is a mutex-guarded set of name → handle maps, but
//! the mutex is only taken on *registration* (first touch of a name) and on
//! *export* (snapshot / Prometheus render). Recording goes through
//! `&'static` atomic handles — leaked once per distinct metric name — so a
//! hot loop bumping a counter performs one relaxed load (the mode gate),
//! one `OnceLock` read, and one relaxed `fetch_add`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets per histogram: bucket `i` holds samples whose
/// highest set bit is `i-1` (i.e. `2^(i-1) ≤ ns < 2^i`), bucket 0 holds
/// zeros. 48 buckets cover ~78 hours in nanoseconds.
pub(crate) const HIST_BUCKETS: usize = 48;

/// Shared storage behind a [`Histogram`] handle.
pub(crate) struct HistogramCore {
    pub(crate) count: AtomicU64,
    pub(crate) sum_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
    pub(crate) buckets: Vec<AtomicU64>,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let idx = (u64::BITS - ns.leading_zeros()) as usize;
        self.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate quantile from the log₂ buckets: the geometric midpoint
    /// of the bucket containing the `q`-th sample. Zero when empty.
    pub(crate) fn approx_quantile(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                return 1.5 * lo; // midpoint of [2^(i-1), 2^i)
            }
        }
        self.max_ns.load(Ordering::Relaxed) as f64
    }
}

/// Name → handle maps; `BTreeMap` so every export walks in a deterministic
/// order.
pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<String, &'static AtomicU64>,
    pub(crate) gauges: BTreeMap<String, &'static AtomicU64>,
    pub(crate) histograms: BTreeMap<String, &'static HistogramCore>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

pub(crate) fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    // The registry mutex guards only name→handle maps; no user code runs
    // under it, so poisoning is impossible in practice — recover regardless.
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

fn counter_handle(name: &str) -> &'static AtomicU64 {
    with_registry(|r| {
        if let Some(h) = r.counters.get(name) {
            return *h;
        }
        let h: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        r.counters.insert(name.to_string(), h);
        h
    })
}

fn gauge_handle(name: &str) -> &'static AtomicU64 {
    with_registry(|r| {
        if let Some(h) = r.gauges.get(name) {
            return *h;
        }
        let h: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0f64.to_bits())));
        r.gauges.insert(name.to_string(), h);
        h
    })
}

pub(crate) fn histogram_handle(name: &str) -> &'static HistogramCore {
    with_registry(|r| {
        if let Some(h) = r.histograms.get(name) {
            return *h;
        }
        let h: &'static HistogramCore = Box::leak(Box::new(HistogramCore::new()));
        r.histograms.insert(name.to_string(), h);
        h
    })
}

/// A named monotonic counter. Declare one `static` per call site; the
/// registry handle is resolved on first enabled increment and cached, so
/// two statics with the same name share one underlying cell.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// A counter handle for `name` (no registration until first use).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n`. One relaxed load when telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| counter_handle(self.name))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 if the counter was never touched while enabled).
    pub fn value(&self) -> u64 {
        match self.cell.get() {
            Some(h) => h.load(Ordering::Relaxed),
            None => with_registry(|r| {
                r.counters
                    .get(self.name)
                    .map(|h| h.load(Ordering::Relaxed))
                    .unwrap_or(0)
            }),
        }
    }
}

/// A named last-value gauge storing an `f64` (as bits in an `AtomicU64`).
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Gauge {
    /// A gauge handle for `name` (no registration until first use).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Overwrite the gauge. Non-finite values are dropped (the exporters
    /// emit plain JSON/Prometheus numbers, which have no NaN).
    #[inline]
    pub fn set(&self, value: f64) {
        if !crate::enabled() || !value.is_finite() {
            return;
        }
        self.cell
            .get_or_init(|| gauge_handle(self.name))
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0 if never set while enabled).
    pub fn value(&self) -> f64 {
        match self.cell.get() {
            Some(h) => f64::from_bits(h.load(Ordering::Relaxed)),
            None => with_registry(|r| {
                r.gauges
                    .get(self.name)
                    .map(|h| f64::from_bits(h.load(Ordering::Relaxed)))
                    .unwrap_or(0.0)
            }),
        }
    }
}

/// Set a dynamically named gauge (e.g. built per window). Prefer the
/// `static` [`Gauge`] handle for fixed names — this takes the registry
/// mutex on every call.
pub fn set_gauge(name: &str, value: f64) {
    if !crate::enabled() || !value.is_finite() {
        return;
    }
    gauge_handle(name).store(value.to_bits(), Ordering::Relaxed);
}

/// Set a gauge with Prometheus-style labels: `base{k="v",…}`. The base
/// name is sanitized for exposition up front, so the stored key renders
/// and parses as-is.
pub fn set_gauge_labeled(base: &str, labels: &[(&str, &str)], value: f64) {
    if !crate::enabled() || !value.is_finite() {
        return;
    }
    let mut name = crate::export::sanitize_metric_name(base);
    name.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            name.push(',');
        }
        name.push_str(&crate::export::sanitize_metric_name(k));
        name.push_str("=\"");
        // Escape per the exposition format (backslash, quote, newline)
        // so the value round-trips instead of being mangled.
        for c in v.chars() {
            match c {
                '\\' => name.push_str("\\\\"),
                '"' => name.push_str("\\\""),
                '\n' => name.push_str("\\n"),
                c => name.push(c),
            }
        }
        name.push('"');
    }
    name.push('}');
    set_gauge(&name, value);
}

/// A named nanosecond histogram. Spans feed these automatically; declare a
/// `static` handle to record non-span durations or sizes.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramCore>,
}

impl Histogram {
    /// A histogram handle for `name` (no registration until first use).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Record one sample. One relaxed load when telemetry is disabled.
    #[inline]
    pub fn record(&self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| histogram_handle(self.name))
            .record(ns);
    }

    /// Total recorded samples (0 if never touched while enabled).
    pub fn count(&self) -> u64 {
        match self.cell.get() {
            Some(h) => h.count.load(Ordering::Relaxed),
            None => with_registry(|r| {
                r.histograms
                    .get(self.name)
                    .map(|h| h.count.load(Ordering::Relaxed))
                    .unwrap_or(0)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        let core = HistogramCore::new();
        for ns in [0u64, 1, 2, 3, 1000, 1_000_000] {
            core.record(ns);
        }
        assert_eq!(core.count.load(Ordering::Relaxed), 6);
        assert_eq!(core.sum_ns.load(Ordering::Relaxed), 1_001_006);
        assert_eq!(core.max_ns.load(Ordering::Relaxed), 1_000_000);
        // p0..p16 land in the low buckets; p99 must land near the max.
        assert!(core.approx_quantile(0.99) > 500_000.0);
        assert!(core.approx_quantile(0.01) < 2.0);
        crate::set_mode(ObsMode::Disabled);
    }

    #[test]
    fn same_name_shares_one_cell() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        static A: Counter = Counter::new("test.registry.shared");
        static B: Counter = Counter::new("test.registry.shared");
        let before = A.value();
        A.add(2);
        B.add(3);
        assert_eq!(A.value(), before + 5);
        assert_eq!(B.value(), before + 5);
        crate::set_mode(ObsMode::Disabled);
    }

    #[test]
    fn labeled_gauge_renders_prometheus_shape() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_mode(ObsMode::Metrics);
        set_gauge_labeled("test.registry.node_source", &[("node", "3")], 2.0);
        let snap = crate::snapshot();
        let got = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "test_registry_node_source{node=\"3\"}");
        assert_eq!(got.map(|(_, v)| *v), Some(2.0));
        crate::set_mode(ObsMode::Disabled);
    }
}
