//! NRT-BN — the Naive Response Time Bayesian Network baseline.
//!
//! Everything is learned from data: the structure by the K2 algorithm
//! (random node orderings; optionally many restarts as in §5.3) and then
//! every CPD by maximum likelihood. This is the "pure statistical learning"
//! school the paper contrasts against: no knowledge needed, but the
//! structure search costs `O(n²)` family-score evaluations per ordering and
//! the response node's CPD must be learned like any other — both costs
//! KERT-BN avoids.

use std::time::Instant;

use kert_bayes::discretize::{BinStrategy, Discretizer};
use kert_bayes::learn::k2::{k2_search, k2_with_random_restarts, K2Options, K2Result};
use kert_bayes::learn::mle::{fit_all_parameters, ParamOptions};
use kert_bayes::learn::score::FamilyScore;
use kert_bayes::{BayesianNetwork, Dataset, Variable};
use rand::Rng;

use crate::report::BuildReport;
use crate::{CoreError, Result};

/// Options for NRT-BN construction.
#[derive(Debug, Clone, Copy)]
pub struct NrtOptions {
    /// Maximum parents per node in the K2 search.
    pub max_parents: usize,
    /// K2 restarts with fresh random orderings (≥ 1). §4 uses one ordering;
    /// §5.3 runs "repeatedly with different random orderings".
    pub restarts: usize,
    /// Discretization for the discrete variant.
    pub bins: usize,
    /// Binning strategy for the discrete variant.
    pub strategy: BinStrategy,
    /// CPT smoothing.
    pub params: ParamOptions,
}

impl Default for NrtOptions {
    fn default() -> Self {
        NrtOptions {
            max_parents: 3,
            restarts: 1,
            bins: 5,
            strategy: BinStrategy::EqualFrequency,
            params: ParamOptions::default(),
        }
    }
}

/// A constructed NRT-BN.
#[derive(Debug)]
pub struct NrtBn {
    network: BayesianNetwork,
    d_node: usize,
    discretizer: Option<Discretizer>,
    report: BuildReport,
}

impl NrtBn {
    /// Build a continuous NRT-BN from a dataset with columns `X₁…X_n, D`:
    /// K2 with the Gaussian-BIC family score, then linear-Gaussian fits.
    pub fn build_continuous<R: Rng + ?Sized>(
        train: &Dataset,
        options: NrtOptions,
        rng: &mut R,
    ) -> Result<Self> {
        if train.columns() < 2 || train.is_empty() {
            return Err(CoreError::BadRequest(
                "need a non-empty dataset with at least two columns".into(),
            ));
        }
        let n_nodes = train.columns();
        let variables: Vec<Variable> = train
            .names()
            .iter()
            .map(|n| Variable::continuous(n.clone()))
            .collect();
        let cards = vec![0usize; n_nodes];

        let structure_start = Instant::now();
        let k2 = run_k2(
            train,
            &cards,
            K2Options {
                score: FamilyScore::GaussianBic,
                max_parents: options.max_parents,
            },
            options.restarts,
            rng,
        )?;
        let structure_time = structure_start.elapsed();

        let param_start = Instant::now();
        let cpds = fit_all_parameters(&variables, &k2.dag, train, options.params)?;
        let parameter_time = param_start.elapsed();

        let network = BayesianNetwork::new(variables, k2.dag, cpds)?;
        Ok(NrtBn {
            network,
            d_node: n_nodes - 1,
            discretizer: None,
            report: BuildReport {
                structure_time,
                parameter_time,
                score_evaluations: k2.evaluations,
                node_parameter_times: Vec::new(),
            },
        })
    }

    /// Build a discrete NRT-BN: discretize, K2 with the Cooper–Herskovits
    /// score, then CPT fits.
    pub fn build_discrete<R: Rng + ?Sized>(
        train: &Dataset,
        options: NrtOptions,
        rng: &mut R,
    ) -> Result<Self> {
        if train.columns() < 2 || train.is_empty() {
            return Err(CoreError::BadRequest(
                "need a non-empty dataset with at least two columns".into(),
            ));
        }
        let n_nodes = train.columns();

        let param_prep_start = Instant::now();
        let discretizer = Discretizer::fit(train, options.bins, options.strategy)?;
        let states = discretizer.transform(train)?;
        let discretize_time = param_prep_start.elapsed();

        let variables: Vec<Variable> = train
            .names()
            .iter()
            .map(|n| Variable::discrete(n.clone(), options.bins))
            .collect();
        let cards = vec![options.bins; n_nodes];

        let structure_start = Instant::now();
        let k2 = run_k2(
            &states,
            &cards,
            K2Options {
                score: FamilyScore::K2,
                max_parents: options.max_parents,
            },
            options.restarts,
            rng,
        )?;
        let structure_time = structure_start.elapsed();

        let param_start = Instant::now();
        let cpds = fit_all_parameters(&variables, &k2.dag, &states, options.params)?;
        let parameter_time = param_start.elapsed() + discretize_time;

        let network = BayesianNetwork::new(variables, k2.dag, cpds)?;
        Ok(NrtBn {
            network,
            d_node: n_nodes - 1,
            discretizer: Some(discretizer),
            report: BuildReport {
                structure_time,
                parameter_time,
                score_evaluations: k2.evaluations,
                node_parameter_times: Vec::new(),
            },
        })
    }

    /// Build a *learning-free* discrete NRT-BN with the classic Naive-Bayes
    /// structure: the response node (last column) is the sole parent of
    /// every service node, no structure search at all.
    ///
    /// §4.2 of the paper considers exactly this shortcut to close NRT-BN's
    /// cost gap and "quickly dismisses" it: it is less accurate by
    /// construction and destroys the model's interpretability (the
    /// service-to-service causal edges). It is implemented here so the
    /// dismissal can be reproduced quantitatively (see the ablation bench).
    pub fn build_naive_discrete(train: &Dataset, options: NrtOptions) -> Result<Self> {
        if train.columns() < 2 || train.is_empty() {
            return Err(CoreError::BadRequest(
                "need a non-empty dataset with at least two columns".into(),
            ));
        }
        let n_nodes = train.columns();
        let d_node = n_nodes - 1;

        let param_prep_start = Instant::now();
        let discretizer = Discretizer::fit(train, options.bins, options.strategy)?;
        let states = discretizer.transform(train)?;
        let discretize_time = param_prep_start.elapsed();

        let variables: Vec<Variable> = train
            .names()
            .iter()
            .map(|n| Variable::discrete(n.clone(), options.bins))
            .collect();

        // "Structure learning": a fixed star — effectively free.
        let structure_start = Instant::now();
        let mut dag = kert_bayes::Dag::new(n_nodes);
        for i in 0..d_node {
            dag.add_edge(d_node, i)?;
        }
        let structure_time = structure_start.elapsed();

        let param_start = Instant::now();
        let cpds = fit_all_parameters(&variables, &dag, &states, options.params)?;
        let parameter_time = param_start.elapsed() + discretize_time;

        let network = BayesianNetwork::new(variables, dag, cpds)?;
        Ok(NrtBn {
            network,
            d_node,
            discretizer: Some(discretizer),
            report: BuildReport {
                structure_time,
                parameter_time,
                score_evaluations: 0,
                node_parameter_times: Vec::new(),
            },
        })
    }

    /// Reassemble a model from persisted parts.
    pub(crate) fn from_parts(
        network: BayesianNetwork,
        d_node: usize,
        discretizer: Option<Discretizer>,
    ) -> Self {
        NrtBn {
            network,
            d_node,
            discretizer,
            report: BuildReport::default(),
        }
    }

    /// The learned network.
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// Index of the response-time node (last column).
    pub fn d_node(&self) -> usize {
        self.d_node
    }

    /// The discretizer, for discrete models.
    pub fn discretizer(&self) -> Option<&Discretizer> {
        self.discretizer.as_ref()
    }

    /// Construction cost breakdown.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// Data-fitting accuracy `log₁₀ p(test | model)`.
    pub fn accuracy(&self, test: &Dataset) -> Result<f64> {
        match &self.discretizer {
            Some(disc) => {
                let states = disc.transform(test)?;
                Ok(self.network.log10_likelihood(&states)?)
            }
            None => Ok(self.network.log10_likelihood(test)?),
        }
    }
}

fn run_k2<R: Rng + ?Sized>(
    data: &Dataset,
    cards: &[usize],
    options: K2Options,
    restarts: usize,
    rng: &mut R,
) -> Result<K2Result> {
    if restarts <= 1 {
        // Single random ordering — §4's setting.
        use rand::seq::SliceRandom;
        let mut ordering: Vec<usize> = (0..data.columns()).collect();
        ordering.shuffle(rng);
        Ok(k2_search(&ordering, data, cards, options)?)
    } else {
        Ok(k2_with_random_restarts(
            data, cards, options, restarts, rng,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::ediamond_workflow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ediamond_dataset(rows: usize, seed: u64) -> Dataset {
        let wf = ediamond_workflow();
        let stations = (0..6)
            .map(|_| ServiceConfig::single(Dist::Exponential { mean: 0.05 }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.4 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sys.run(rows, &mut rng).to_dataset(None)
    }

    #[test]
    fn continuous_nrt_builds_and_scores() {
        let data = ediamond_dataset(600, 10);
        let (train, test) = data.split_at(400);
        let mut rng = StdRng::seed_from_u64(1);
        let model = NrtBn::build_continuous(&train, NrtOptions::default(), &mut rng).unwrap();
        assert_eq!(model.network().len(), 7);
        assert!(model.report().score_evaluations > 0);
        assert!(model.accuracy(&test).unwrap().is_finite());
    }

    #[test]
    fn discrete_nrt_builds_and_scores() {
        let data = ediamond_dataset(600, 11);
        let (train, test) = data.split_at(450);
        let mut rng = StdRng::seed_from_u64(2);
        let model = NrtBn::build_discrete(&train, NrtOptions::default(), &mut rng).unwrap();
        assert!(model.discretizer().is_some());
        let acc = model.accuracy(&test).unwrap();
        assert!(acc.is_finite() && acc < 0.0);
    }

    #[test]
    fn restarts_improve_or_match_single_run_accuracy() {
        let data = ediamond_dataset(500, 12);
        let (train, test) = data.split_at(400);
        let single = NrtBn::build_discrete(
            &train,
            NrtOptions {
                restarts: 1,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        let multi = NrtBn::build_discrete(
            &train,
            NrtOptions {
                restarts: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        // More restarts must cost more evaluations…
        assert!(multi.report().score_evaluations > single.report().score_evaluations);
        // …and the better-scoring structure should not fit much worse.
        let acc_single = single.accuracy(&test).unwrap();
        let acc_multi = multi.accuracy(&test).unwrap();
        assert!(acc_multi > acc_single - 0.1 * acc_single.abs());
    }

    #[test]
    fn structure_learning_dominates_construction() {
        // The cost asymmetry the paper's Figure 4 rests on.
        let data = ediamond_dataset(400, 13);
        let mut rng = StdRng::seed_from_u64(4);
        let model = NrtBn::build_continuous(&data, NrtOptions::default(), &mut rng).unwrap();
        assert!(model.report().structure_time >= model.report().parameter_time / 4);
    }

    #[test]
    fn naive_baseline_is_free_but_uninterpretable() {
        let data = ediamond_dataset(600, 14);
        let (train, test) = data.split_at(500);
        let naive = NrtBn::build_naive_discrete(&train, NrtOptions::default()).unwrap();
        // Learning-free: no score evaluations at all.
        assert_eq!(naive.report().score_evaluations, 0);
        // Structure: D is the sole parent of every service node — no
        // service-to-service edges survive (the interpretability loss the
        // paper calls out).
        for i in 0..6 {
            assert_eq!(naive.network().dag().parents(i), &[6]);
        }
        assert!(naive.network().dag().parents(6).is_empty());
        assert!(naive.accuracy(&test).unwrap().is_finite());
    }

    #[test]
    fn naive_baseline_is_no_more_accurate_than_learned_nrt() {
        // The quantitative half of §4.2's dismissal, on a decent window.
        let data = ediamond_dataset(1_000, 15);
        let (train, test) = data.split_at(800);
        let naive = NrtBn::build_naive_discrete(&train, NrtOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let learned = NrtBn::build_discrete(&train, NrtOptions::default(), &mut rng).unwrap();
        let acc_naive = naive.accuracy(&test).unwrap();
        let acc_learned = learned.accuracy(&test).unwrap();
        assert!(
            acc_learned >= acc_naive - 0.02 * acc_naive.abs(),
            "learned {acc_learned} vs naive {acc_naive}"
        );
    }

    #[test]
    fn degenerate_datasets_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty = Dataset::new(vec!["a".into(), "b".into()]);
        assert!(NrtBn::build_continuous(&empty, NrtOptions::default(), &mut rng).is_err());
        let one_col = Dataset::from_rows(vec!["a".into()], vec![vec![1.0]]).unwrap();
        assert!(NrtBn::build_discrete(&one_col, NrtOptions::default(), &mut rng).is_err());
    }
}
