//! Streaming sliding-window refresh (incremental `T_CON` reconstruction).
//!
//! The paper's autonomic loop rebuilds the KERT every control period from a
//! sliding window `W = K·T_CON`. The conventional path relearns every
//! parameter from the full window; this module keeps a
//! [`StreamingLearner`] over the window's *sufficient statistics* so each
//! reconstruction costs `O(delta)` — the rows that entered or left since
//! the last period — instead of `O(window)`:
//!
//! * [`StreamingWindow`] owns the raw row buffer, evicts overflow rows,
//!   and keeps the learner's statistics in lock-step (for discrete models
//!   rows are binned through the *model's* discretizer, so streamed CPTs
//!   stay comparable with the deployed network).
//! * [`KertBn::refresh_from_window`] swaps refreshed CPDs into an
//!   uncompiled model in place.
//! * [`crate::CompiledKert::refresh_cpds`] recalibrates a compiled engine,
//!   rebuilding only the junction-tree cliques whose CPDs moved past a
//!   caller-chosen threshold (PR 4's subtree invalidation does the rest).
//!
//! The equivalence contract — streaming CPTs bitwise-equal batch relearn,
//! linear-Gaussian CPDs within 1e-9 — is enforced by
//! `crates/conformance/tests/streaming.rs`.

use kert_bayes::cpd::Cpd;
use kert_bayes::discretize::Discretizer;
use kert_bayes::learn::incremental::{cpd_movement, StreamingLearner};
use kert_bayes::learn::mle::ParamOptions;
use kert_bayes::Dataset;

use crate::kert::{learned_subdag, KertBn};
use crate::{CoreError, Result};

static OBS_WINDOW_ROWS: kert_obs::Counter = kert_obs::Counter::new("core.stream.rows");
static OBS_REFRESHES: kert_obs::Counter = kert_obs::Counter::new("core.stream.refreshes");
static OBS_CPDS_MOVED: kert_obs::Counter = kert_obs::Counter::new("core.stream.cpds_moved");

/// One refreshed CPD with how far it moved from the reference model.
#[derive(Debug, Clone)]
pub struct CpdUpdate {
    /// Learned node index.
    pub node: usize,
    /// Freshly fitted CPD over the current window.
    pub cpd: Cpd,
    /// Max absolute parameter change vs the reference model
    /// ([`kert_bayes::learn::incremental::cpd_movement`]).
    pub movement: f64,
}

/// The product of one streaming refresh: a fitted CPD per learned node,
/// each tagged with its movement. Apply to an uncompiled model via
/// [`KertBn::refresh_from_window`] or to a compiled engine via
/// [`crate::CompiledKert::refresh_cpds`].
#[derive(Debug, Clone)]
pub struct RefreshOutcome {
    /// One entry per learned node, ascending node order.
    pub updates: Vec<CpdUpdate>,
}

impl RefreshOutcome {
    /// Largest movement across all learned nodes.
    pub fn max_movement(&self) -> f64 {
        self.updates.iter().map(|u| u.movement).fold(0.0, f64::max)
    }

    /// Updates that moved strictly past `threshold`.
    pub fn moved(&self, threshold: f64) -> Vec<&CpdUpdate> {
        self.updates
            .iter()
            .filter(|u| u.movement > threshold)
            .collect()
    }
}

/// Summary of an in-place model refresh.
#[derive(Debug, Clone, Copy)]
pub struct RefreshSummary {
    /// Learned nodes whose parameters changed at all.
    pub nodes_moved: usize,
    /// Largest parameter movement.
    pub max_movement: f64,
    /// Rows in the window the refreshed parameters describe.
    pub window_rows: usize,
}

/// A sliding window of raw monitoring rows with incrementally maintained
/// learning statistics.
///
/// Rows use the full trace layout the model was built from
/// (`X₁…X_n, [R₁…R_k,] D`). The `D` column rides along for the buffer but
/// is not learned — the response CPD is knowledge-generated (Eq. 4) and
/// never refreshed. Overflow beyond `capacity` evicts oldest-first, and
/// every insert/evict costs `O(Σ family size)`, independent of how many
/// rows the window holds.
#[derive(Debug, Clone)]
pub struct StreamingWindow {
    /// Flat ring buffer of raw rows, `columns` values per slot; the slot
    /// of the oldest row is `head`. It grows to `capacity·columns` once
    /// and the per-row hot path never allocates after that.
    buf: Vec<f64>,
    head: usize,
    len: usize,
    capacity: usize,
    learner: StreamingLearner,
    /// Clone of the model's discretizer: discrete models learn over
    /// *states*, and comparability with the deployed network requires the
    /// original bin edges, not a refit.
    discretizer: Option<Discretizer>,
    learned_nodes: usize,
    columns: usize,
    /// Reused buffers for the learned-node projections of the incoming and
    /// outgoing rows, so the per-row hot path never allocates.
    scratch: Vec<f64>,
    scratch_old: Vec<f64>,
}

impl StreamingWindow {
    /// An empty window for `model` holding at most `capacity` rows.
    /// `params` must match the smoothing options the model was built with
    /// for the bitwise-equivalence contract to hold.
    pub fn new(model: &KertBn, capacity: usize, params: ParamOptions) -> Result<Self> {
        if capacity == 0 {
            return Err(CoreError::BadRequest("window capacity must be ≥ 1".into()));
        }
        let m = model.d_node();
        let variables = &model.network().variables()[..m];
        let dag = learned_subdag(model.network().dag(), m);
        let learner = StreamingLearner::new(variables, &dag, params)?;
        Ok(StreamingWindow {
            buf: Vec::new(),
            head: 0,
            len: 0,
            capacity,
            learner,
            discretizer: model.discretizer().cloned(),
            learned_nodes: m,
            columns: model.network().len(),
            scratch: Vec::with_capacity(m),
            scratch_old: Vec::with_capacity(m),
        })
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Start offset (in `buf`) of the window row at logical index `r`.
    fn slot_start(&self, r: usize) -> usize {
        ((self.head + r) % self.capacity) * self.columns
    }

    /// Maximum rows before oldest-first eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Gram refactorizations taken by the Gaussian fallback (telemetry).
    pub fn refactorizations(&self) -> u64 {
        self.learner.refactorizations()
    }

    /// The current window contents as a dataset (training layout), for
    /// differential testing against the batch path.
    pub fn to_dataset(&self, names: Vec<String>) -> Result<Dataset> {
        let mut out = Dataset::new(names);
        for r in 0..self.len {
            let start = self.slot_start(r);
            out.push_row(self.buf[start..start + self.columns].to_vec())
                .map_err(CoreError::from)?;
        }
        Ok(out)
    }

    /// Project a raw row onto the learned nodes into the reused scratch
    /// buffer, binning through the model's discretizer for discrete models.
    fn fill_learned_row(
        buf: &mut Vec<f64>,
        discretizer: &Option<Discretizer>,
        learned_nodes: usize,
        row: &[f64],
    ) {
        buf.clear();
        match discretizer {
            Some(disc) => {
                buf.extend((0..learned_nodes).map(|i| disc.column(i).state(row[i]) as f64))
            }
            None => buf.extend_from_slice(&row[..learned_nodes]),
        }
    }

    /// Append one raw row, evicting the oldest row if the window is full.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.columns {
            return Err(CoreError::BadRequest(format!(
                "row has {} values, model expects {}",
                row.len(),
                self.columns
            )));
        }
        if self.len == self.capacity {
            // At capacity the incoming row replaces the oldest in place
            // through the learner's fused slide; both rows are validated
            // before any statistic moves, so a rejected row leaves the
            // window untouched.
            let start = self.head * self.columns;
            let mut new_buf = std::mem::take(&mut self.scratch);
            let mut old_buf = std::mem::take(&mut self.scratch_old);
            Self::fill_learned_row(&mut new_buf, &self.discretizer, self.learned_nodes, row);
            Self::fill_learned_row(
                &mut old_buf,
                &self.discretizer,
                self.learned_nodes,
                &self.buf[start..start + self.columns],
            );
            let outcome = self.learner.replace_row(&old_buf, &new_buf);
            self.scratch = new_buf;
            self.scratch_old = old_buf;
            outcome?;
            self.buf[start..start + self.columns].copy_from_slice(row);
            self.head = (self.head + 1) % self.capacity;
        } else {
            let mut new_buf = std::mem::take(&mut self.scratch);
            Self::fill_learned_row(&mut new_buf, &self.discretizer, self.learned_nodes, row);
            let outcome = self.learner.insert_row(&new_buf);
            self.scratch = new_buf;
            outcome?;
            let start = self.slot_start(self.len);
            if start == self.buf.len() {
                self.buf.extend_from_slice(row);
            } else {
                self.buf[start..start + self.columns].copy_from_slice(row);
            }
            self.len += 1;
        }
        OBS_WINDOW_ROWS.incr();
        Ok(())
    }

    /// Append every row of `data` (training layout), sliding the window.
    pub fn extend(&mut self, data: &Dataset) -> Result<()> {
        for r in 0..data.rows() {
            self.push_row(data.row(r))?;
        }
        Ok(())
    }

    /// Evict the `k` oldest rows (saturating at the window size).
    pub fn evict_oldest(&mut self, k: usize) -> Result<usize> {
        let mut evicted = 0;
        for _ in 0..k {
            if self.len == 0 {
                break;
            }
            let start = self.head * self.columns;
            let mut scratch = std::mem::take(&mut self.scratch);
            Self::fill_learned_row(
                &mut scratch,
                &self.discretizer,
                self.learned_nodes,
                &self.buf[start..start + self.columns],
            );
            let outcome = self.learner.evict_row(&scratch);
            self.scratch = scratch;
            outcome?;
            self.head = (self.head + 1) % self.capacity;
            self.len -= 1;
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Rebuild every learned node's CPD from the window statistics and tag
    /// each with its movement relative to `model`'s current parameters.
    /// Cost is per-family table size — independent of the window length.
    pub fn refresh_outcome(&mut self, model: &KertBn) -> Result<RefreshOutcome> {
        if model.d_node() != self.learned_nodes || model.network().len() != self.columns {
            return Err(CoreError::BadRequest(
                "window was built for a different model shape".into(),
            ));
        }
        OBS_REFRESHES.incr();
        let _span = kert_obs::span("core.stream.refresh");
        let cpds = self.learner.fit_all()?;
        let updates = cpds
            .into_iter()
            .enumerate()
            .map(|(node, cpd)| {
                let movement = cpd_movement(model.network().cpd(node), &cpd);
                CpdUpdate {
                    node,
                    cpd,
                    movement,
                }
            })
            .collect();
        Ok(RefreshOutcome { updates })
    }
}

impl KertBn {
    /// Refresh the learned CPDs in place from a streaming window — the
    /// O(delta) replacement for rebuilding the model every `T_CON`.
    ///
    /// The structure, the discretizer, and the knowledge-generated response
    /// CPD are untouched; only the per-service (and resource) parameters
    /// move. Equivalent to a batch relearn over the window's rows with the
    /// model's original discretizer: bitwise for CPTs, ≤1e-9 for
    /// linear-Gaussian CPDs.
    pub fn refresh_from_window(&mut self, window: &mut StreamingWindow) -> Result<RefreshSummary> {
        let outcome = window.refresh_outcome(self)?;
        let mut nodes_moved = 0;
        let mut max_movement = 0.0f64;
        for update in outcome.updates {
            if update.movement > 0.0 {
                nodes_moved += 1;
                max_movement = max_movement.max(update.movement);
            }
            self.network_mut().set_cpd(update.node, update.cpd)?;
        }
        OBS_CPDS_MOVED.add(nodes_moved as u64);
        self.mark_refreshed(window.len());
        Ok(RefreshSummary {
            nodes_moved,
            max_movement,
            window_rows: window.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::{ContinuousKertOptions, DiscreteKertOptions};
    use kert_bayes::learn::mle::fit_all_parameters;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ediamond_data(rows: usize, seed: u64) -> (kert_workflow::WorkflowKnowledge, Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let stations = (0..6)
            .map(|i| {
                ServiceConfig::single(Dist::Exponential {
                    mean: 0.04 + 0.01 * i as f64,
                })
            })
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.4 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    /// Batch reference: relearn the learned nodes over `window` with the
    /// model's variables/structure (and discretizer, when present).
    fn batch_cpds(model: &KertBn, window: &Dataset) -> Vec<Cpd> {
        let m = model.d_node();
        let vars = &model.network().variables()[..m];
        let dag = learned_subdag(model.network().dag(), m);
        let learned = match model.discretizer() {
            Some(disc) => disc
                .transform(window)
                .unwrap()
                .project(&(0..m).collect::<Vec<_>>())
                .unwrap(),
            None => window.project(&(0..m).collect::<Vec<_>>()).unwrap(),
        };
        fit_all_parameters(vars, &dag, &learned, ParamOptions::default()).unwrap()
    }

    #[test]
    fn continuous_refresh_tracks_batch_within_1e9() {
        let (knowledge, data) = ediamond_data(700, 11);
        let (train, rest) = data.split_at(500);
        let mut model =
            KertBn::build_continuous(&knowledge, &train, ContinuousKertOptions::default()).unwrap();
        let mut window = StreamingWindow::new(&model, 500, ParamOptions::default()).unwrap();
        window.extend(&train).unwrap();
        // Slide by 200: the oldest 200 training rows fall out.
        window.extend(&rest).unwrap();
        assert_eq!(window.len(), 500);
        let summary = model.refresh_from_window(&mut window).unwrap();
        assert!(summary.nodes_moved > 0, "sliding must move parameters");

        let current = window.to_dataset(train.names().to_vec()).unwrap();
        let batch = batch_cpds(&model, &current);
        for (node, b) in batch.iter().enumerate() {
            let m = cpd_movement(model.network().cpd(node), b);
            assert!(m <= 1e-9, "node {node} differs from batch by {m}");
        }
    }

    #[test]
    fn discrete_refresh_is_bitwise_equal_to_batch() {
        let (knowledge, data) = ediamond_data(900, 12);
        let (train, rest) = data.split_at(600);
        let mut model =
            KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();
        let mut window = StreamingWindow::new(&model, 600, ParamOptions::default()).unwrap();
        window.extend(&train).unwrap();
        window.extend(&rest).unwrap();
        model.refresh_from_window(&mut window).unwrap();

        let current = window.to_dataset(train.names().to_vec()).unwrap();
        let batch = batch_cpds(&model, &current);
        for (node, b) in batch.iter().enumerate() {
            let (Cpd::Tabular(got), Cpd::Tabular(want)) = (model.network().cpd(node), b) else {
                panic!("expected tabular CPDs");
            };
            assert_eq!(
                got.table(),
                want.table(),
                "node {node} CPT not bitwise equal"
            );
        }
    }

    #[test]
    fn compiled_refresh_matches_recompiled_model() {
        let (knowledge, data) = ediamond_data(900, 13);
        let (train, rest) = data.split_at(600);
        let model =
            KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();
        let mut window = StreamingWindow::new(&model, 600, ParamOptions::default()).unwrap();
        window.extend(&train).unwrap();
        window.extend(&rest).unwrap();
        let outcome = window.refresh_outcome(&model).unwrap();

        let mut compiled = model.compile().unwrap();
        // Warm the caches so the refresh exercises invalidation.
        compiled
            .set_evidence(&[(0, train.get(0, 0)), (2, train.get(0, 2))])
            .unwrap();
        let _ = compiled.posterior(model.d_node()).unwrap();
        let dirty = compiled.refresh_cpds(&outcome, 0.0).unwrap();
        assert!(dirty > 0, "sliding 300 rows must dirty at least one clique");

        // Reference: apply the same updates to a copy of the model and
        // recompile from scratch.
        let mut model2 =
            KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();
        let mut window2 = StreamingWindow::new(&model2, 600, ParamOptions::default()).unwrap();
        window2.extend(&train).unwrap();
        window2.extend(&rest).unwrap();
        model2.refresh_from_window(&mut window2).unwrap();
        let mut compiled2 = model2.compile().unwrap();
        compiled2
            .set_evidence(&[(0, train.get(0, 0)), (2, train.get(0, 2))])
            .unwrap();

        for target in [1usize, 3, model.d_node()] {
            let a = compiled.posterior(target).unwrap();
            let b = compiled2.posterior(target).unwrap();
            let (
                crate::Posterior::Discrete { probs: pa, .. },
                crate::Posterior::Discrete { probs: pb, .. },
            ) = (&a, &b)
            else {
                panic!("expected discrete posteriors");
            };
            assert_eq!(pa, pb, "target {target} posterior not bitwise equal");
        }
    }

    #[test]
    fn compiled_refresh_skips_below_threshold() {
        let (knowledge, data) = ediamond_data(400, 14);
        let mut model =
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap();
        let mut window = StreamingWindow::new(&model, 400, ParamOptions::default()).unwrap();
        window.extend(&data).unwrap();
        // First refresh may move parameters by ~1 ulp: the decentralized
        // build path renormalizes fitted tables a second time when
        // re-expressing local CPDs with network indices.
        model.refresh_from_window(&mut window).unwrap();
        // With the model synced to the window, movement is exactly zero.
        let outcome = window.refresh_outcome(&model).unwrap();
        assert_eq!(outcome.max_movement(), 0.0);
        let mut compiled = model.compile().unwrap();
        assert_eq!(compiled.refresh_cpds(&outcome, 0.0).unwrap(), 0);
        // An absurdly high threshold also refreshes nothing.
        let outcome2 = window.refresh_outcome(&model).unwrap();
        assert_eq!(compiled.refresh_cpds(&outcome2, 1e9).unwrap(), 0);
    }

    #[test]
    fn window_rejects_bad_shapes() {
        let (knowledge, data) = ediamond_data(100, 15);
        let model =
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap();
        assert!(StreamingWindow::new(&model, 0, ParamOptions::default()).is_err());
        let mut window = StreamingWindow::new(&model, 50, ParamOptions::default()).unwrap();
        assert!(window.push_row(&[1.0, 2.0]).is_err());
        window.extend(&data).unwrap();
        assert_eq!(window.len(), 50, "capacity must cap the window");
    }
}
