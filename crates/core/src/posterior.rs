//! Unified posterior queries over any constructed response-time model.
//!
//! Both paper applications (dComp, pAccel) reduce to one operation: the
//! posterior distribution of one node given point observations of others.
//! Three inference engines serve it, picked automatically:
//!
//! * **discrete** networks → exact variable elimination (the §5 path);
//! * **linear continuous** networks → exact joint-Gaussian conditioning;
//! * **nonlinear continuous** networks (`max` in the response CPD) →
//!   likelihood weighting — the case Matlab BNT could not handle.

use kert_bayes::discretize::Discretizer;
use kert_bayes::infer::gibbs::{gibbs_posterior_chains, GibbsOptions};
use kert_bayes::infer::sampling::{likelihood_weighting, LwOptions};
use kert_bayes::infer::ve;
use kert_bayes::joint;
use kert_bayes::BayesianNetwork;
use rand::Rng;

use crate::{CoreError, Result};

/// A one-dimensional posterior in whichever form inference produced.
#[derive(Debug, Clone)]
pub enum Posterior {
    /// Exact Gaussian posterior (linear continuous networks).
    Gaussian {
        /// Posterior mean.
        mean: f64,
        /// Posterior variance.
        variance: f64,
    },
    /// Exact discrete posterior over bin representatives.
    Discrete {
        /// Representative value of each state (within-bin training means).
        support: Vec<f64>,
        /// Probability of each state (sums to 1).
        probs: Vec<f64>,
        /// Value interval covered by each state, when the producing
        /// discretizer is known. Enables within-bin interpolation for tail
        /// probabilities instead of the all-or-nothing midpoint rule.
        bounds: Option<Vec<(f64, f64)>>,
    },
    /// Weighted Monte-Carlo posterior (nonlinear continuous networks).
    Samples {
        /// Sample values of the target node, ascending.
        values: Vec<f64>,
        /// Normalized weights aligned with `values` (sum to 1).
        weights: Vec<f64>,
    },
}

impl Posterior {
    /// Posterior mean.
    pub fn mean(&self) -> f64 {
        match self {
            Posterior::Gaussian { mean, .. } => *mean,
            Posterior::Discrete { support, probs, .. } => {
                support.iter().zip(probs.iter()).map(|(&v, &p)| v * p).sum()
            }
            Posterior::Samples { values, weights } => values
                .iter()
                .zip(weights.iter())
                .map(|(&v, &w)| v * w)
                .sum(),
        }
    }

    /// Posterior variance.
    pub fn variance(&self) -> f64 {
        match self {
            Posterior::Gaussian { variance, .. } => *variance,
            Posterior::Discrete { support, probs, .. } => {
                let m = self.mean();
                support
                    .iter()
                    .zip(probs.iter())
                    .map(|(&v, &p)| p * (v - m) * (v - m))
                    .sum()
            }
            Posterior::Samples { values, weights } => {
                let m = self.mean();
                values
                    .iter()
                    .zip(weights.iter())
                    .map(|(&v, &w)| w * (v - m) * (v - m))
                    .sum()
            }
        }
    }

    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().max(0.0).sqrt()
    }

    /// `P(target > threshold)` under the posterior. Discrete posteriors
    /// with known bin bounds spread each bin's mass uniformly over its
    /// interval and integrate the part above the threshold; without bounds
    /// they fall back to the midpoint rule (a bin counts if its
    /// representative exceeds the threshold), whose error is a whole bin's
    /// mass in the worst case.
    pub fn exceedance(&self, threshold: f64) -> f64 {
        match self {
            Posterior::Gaussian { mean, variance } => {
                let sd = variance.max(0.0).sqrt();
                if sd <= 0.0 {
                    return if *mean > threshold { 1.0 } else { 0.0 };
                }
                let z = (threshold - mean) / (sd * std::f64::consts::SQRT_2);
                0.5 * kert_linalg::mvn::erfc(z)
            }
            Posterior::Discrete {
                support: _,
                probs,
                bounds: Some(bounds),
            } => bounds
                .iter()
                .zip(probs.iter())
                .map(|(&(lo, hi), &p)| {
                    if threshold <= lo {
                        p
                    } else if threshold >= hi {
                        0.0
                    } else {
                        p * (hi - threshold) / (hi - lo)
                    }
                })
                .sum::<f64>()
                .max(0.0),
            Posterior::Discrete {
                support,
                probs,
                bounds: None,
            } => support
                .iter()
                .zip(probs.iter())
                .filter(|(&v, _)| v > threshold)
                .map(|(_, &p)| p)
                .sum(),
            Posterior::Samples { values, weights } => values
                .iter()
                .zip(weights.iter())
                .filter(|(&v, _)| v > threshold)
                .map(|(_, &w)| w)
                .sum(),
        }
    }

    /// Probability mass over `bins` equal-width intervals between `lo` and
    /// `hi` — a plotting aid (Figures 6–7 draw distributions).
    pub fn density_on_grid(&self, lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(bins >= 1 && hi > lo);
        let width = (hi - lo) / bins as f64;
        let centers: Vec<f64> = (0..bins).map(|b| lo + width * (b as f64 + 0.5)).collect();
        let mut mass = vec![0.0; bins];
        let clamp_bin = |v: f64| -> Option<usize> {
            if v < lo || v > hi {
                return None;
            }
            Some((((v - lo) / width) as usize).min(bins - 1))
        };
        match self {
            Posterior::Gaussian { mean, variance } => {
                let sd = variance.max(1e-300).sqrt();
                for (c, m) in centers.iter().zip(mass.iter_mut()) {
                    let z = (c - mean) / sd;
                    *m = (-0.5 * z * z).exp();
                }
                let z: f64 = mass.iter().sum();
                if z > 0.0 {
                    for m in &mut mass {
                        *m /= z;
                    }
                }
            }
            Posterior::Discrete { support, probs, .. } => {
                for (&v, &p) in support.iter().zip(probs.iter()) {
                    if let Some(b) = clamp_bin(v) {
                        mass[b] += p;
                    }
                }
            }
            Posterior::Samples { values, weights } => {
                for (&v, &w) in values.iter().zip(weights.iter()) {
                    if let Some(b) = clamp_bin(v) {
                        mass[b] += w;
                    }
                }
            }
        }
        (centers, mass)
    }
}

/// Interventional posterior for discrete models: the marginal of `target`
/// after the *distribution* of `service` is replaced by the empirical
/// distribution of `shifted_values` (binned through the model's own
/// discretizer):
///
/// ```text
/// P(target) = Σ_s w_s · P(target | service = s),   w_s = #{v ∈ shifted : bin(v) = s} / #shifted
/// ```
///
/// Point conditioning (`query_posterior` with one observed value) answers
/// "what if we *observe* the service at exactly v" and collapses the
/// service's variability, which makes projected response-time distributions
/// far too narrow. This query answers the what-if actually posed by pAccel —
/// "what if the service's elapsed time followed this new distribution" —
/// and keeps the variance.
pub fn shifted_posterior(
    network: &BayesianNetwork,
    discretizer: &Discretizer,
    service: usize,
    shifted_values: &[f64],
    target: usize,
) -> Result<Posterior> {
    if target >= network.len() {
        return Err(CoreError::BadRequest(format!("no node {target}")));
    }
    if service >= network.len() {
        return Err(CoreError::BadRequest(format!("no service node {service}")));
    }
    if service == target {
        return Err(CoreError::BadRequest(format!(
            "node {service} is both target and shifted service"
        )));
    }
    if shifted_values.is_empty() {
        return Err(CoreError::BadRequest(
            "no values for the shifted service distribution".into(),
        ));
    }
    let service_bins = discretizer.column(service).bins();
    let mut weights = vec![0.0f64; service_bins];
    for &v in shifted_values {
        weights[discretizer.column(service).state(v)] += 1.0;
    }
    let total = shifted_values.len() as f64;

    let column = discretizer.column(target);
    let mut probs = vec![0.0f64; column.bins()];
    for (s, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        let mut ev = ve::Evidence::new();
        ev.insert(service, s);
        let conditional = ve::posterior_marginal(network, target, &ev)?;
        for (p, &c) in probs.iter_mut().zip(conditional.iter()) {
            *p += (w / total) * c;
        }
    }
    let support = column.midpoints.clone();
    let bounds = (0..column.bins()).map(|s| column.bounds(s)).collect();
    Ok(Posterior::Discrete {
        support,
        probs,
        bounds: Some(bounds),
    })
}

/// Monte-Carlo budget for the likelihood-weighting fallback.
#[derive(Debug, Clone, Copy)]
pub struct McOptions {
    /// Number of weighted samples.
    pub samples: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions { samples: 20_000 }
    }
}

/// Explicit inference-engine selection for [`query_posterior_via`].
///
/// [`query_posterior`] picks the engine automatically from the model
/// family; the conformance layer instead needs to drive *every* fast path
/// through the same public entry point the autonomic loop uses, so each
/// engine can be pinned and compared against the matching oracle.
#[derive(Debug, Clone, Copy)]
pub enum Engine {
    /// The automatic dispatch of [`query_posterior`].
    Auto,
    /// Exact variable elimination over the full factor set with the given
    /// ordering heuristic (discrete models only).
    VariableElimination(ve::EliminationHeuristic),
    /// Exact variable elimination with barren-node pruning (discrete
    /// models only).
    PrunedVariableElimination(ve::EliminationHeuristic),
    /// The pre-optimization greedy-ordering VE over the naive factor
    /// kernels (discrete models only).
    NaiveVariableElimination,
    /// Compiled junction-tree propagation (discrete models only): moralize,
    /// triangulate with min-fill, calibrate by Shafer-Shenoy message
    /// passing, read the marginal off the target's home clique. Exact, and
    /// the batched engine behind [`crate::compiled::CompiledKert`].
    JunctionTree,
    /// Multi-chain Gibbs sampling (discrete models only); deterministic
    /// per `base_seed`.
    Gibbs {
        /// Per-chain sweep budget.
        options: GibbsOptions,
        /// Number of independent chains pooled.
        chains: usize,
        /// Master seed the chain seeds are spread from.
        base_seed: u64,
    },
    /// Exact joint-Gaussian conditioning (linear continuous models only).
    GaussianConditioning,
    /// Likelihood weighting (continuous models).
    LikelihoodWeighting,
}

pub(crate) fn check_query(
    network: &BayesianNetwork,
    evidence: &[(usize, f64)],
    target: usize,
) -> Result<()> {
    if target >= network.len() {
        return Err(CoreError::BadRequest(format!("no node {target}")));
    }
    for &(node, _) in evidence {
        if node >= network.len() {
            return Err(CoreError::BadRequest(format!("no evidence node {node}")));
        }
        if node == target {
            return Err(CoreError::BadRequest(format!(
                "node {node} is both target and evidence"
            )));
        }
    }
    Ok(())
}

/// Bin raw evidence values through the model's discretizer.
fn binned_evidence(disc: &Discretizer, evidence: &[(usize, f64)]) -> ve::Evidence {
    let mut ev = ve::Evidence::new();
    for &(node, value) in evidence {
        ev.insert(node, disc.column(node).state(value));
    }
    ev
}

/// Wrap a VE/Gibbs probability vector as a [`Posterior::Discrete`] over
/// the target's bin representatives.
pub(crate) fn discrete_posterior(disc: &Discretizer, target: usize, probs: Vec<f64>) -> Posterior {
    let column = disc.column(target);
    let support = column.midpoints.clone();
    let bounds = (0..column.bins()).map(|s| column.bounds(s)).collect();
    Posterior::Discrete {
        support,
        probs,
        bounds: Some(bounds),
    }
}

/// [`query_posterior`] with the inference engine pinned instead of chosen
/// automatically. Engines that do not apply to the model family (e.g. VE
/// on a continuous model) return `BadRequest`.
pub fn query_posterior_via<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    discretizer: Option<&Discretizer>,
    evidence: &[(usize, f64)],
    target: usize,
    engine: Engine,
    mc: McOptions,
    rng: &mut R,
) -> Result<Posterior> {
    check_query(network, evidence, target)?;
    fn need_disc(d: Option<&Discretizer>) -> Result<&Discretizer> {
        d.ok_or_else(|| {
            CoreError::BadRequest("discrete engine requires a discretized model".into())
        })
    }
    match engine {
        Engine::Auto => query_posterior(network, discretizer, evidence, target, mc, rng),
        Engine::VariableElimination(h) => {
            let disc = need_disc(discretizer)?;
            let ev = binned_evidence(disc, evidence);
            let probs = ve::posterior_marginal_with(network, target, &ev, h)?;
            Ok(discrete_posterior(disc, target, probs))
        }
        Engine::PrunedVariableElimination(h) => {
            let disc = need_disc(discretizer)?;
            let ev = binned_evidence(disc, evidence);
            let probs = ve::posterior_marginal_pruned_with(network, target, &ev, h)?;
            Ok(discrete_posterior(disc, target, probs))
        }
        Engine::NaiveVariableElimination => {
            let disc = need_disc(discretizer)?;
            let ev = binned_evidence(disc, evidence);
            let probs = ve::naive::posterior_marginal(network, target, &ev)?;
            Ok(discrete_posterior(disc, target, probs))
        }
        Engine::JunctionTree => {
            let disc = need_disc(discretizer)?;
            let ev = binned_evidence(disc, evidence);
            let tree = kert_bayes::compile::JunctionTree::compile(network)?;
            let mut state = tree.new_state();
            // Deterministic entry order regardless of HashMap iteration.
            let mut pins: Vec<(usize, usize)> = ev.iter().map(|(&n, &s)| (n, s)).collect();
            pins.sort_unstable();
            for (node, s) in pins {
                tree.set_evidence(&mut state, node, s)?;
            }
            let probs = tree.marginal(&mut state, target)?;
            Ok(discrete_posterior(disc, target, probs))
        }
        Engine::Gibbs {
            options,
            chains,
            base_seed,
        } => {
            let disc = need_disc(discretizer)?;
            let ev = binned_evidence(disc, evidence);
            let probs = gibbs_posterior_chains(network, target, &ev, options, chains, base_seed)?;
            Ok(discrete_posterior(disc, target, probs))
        }
        Engine::GaussianConditioning => {
            if !joint::is_linear_gaussian(network) {
                return Err(CoreError::BadRequest(
                    "Gaussian conditioning requires a linear-Gaussian model".into(),
                ));
            }
            let mvn = joint::to_joint_gaussian(network)?;
            if evidence.is_empty() {
                return Ok(Posterior::Gaussian {
                    mean: mvn.mean()[target],
                    variance: mvn.cov().get(target, target),
                });
            }
            let idx: Vec<usize> = evidence.iter().map(|&(n, _)| n).collect();
            let vals: Vec<f64> = evidence.iter().map(|&(_, v)| v).collect();
            let cond = mvn.condition(&idx, &vals)?;
            let mean = cond
                .mean_of(target)
                .ok_or_else(|| CoreError::BadRequest(format!("target {target} was observed")))?;
            let variance = cond.variance_of(target).expect("checked above");
            Ok(Posterior::Gaussian { mean, variance })
        }
        Engine::LikelihoodWeighting => {
            if discretizer.is_some() {
                return Err(CoreError::BadRequest(
                    "likelihood weighting runs on continuous models".into(),
                ));
            }
            lw_posterior(network, evidence, target, mc, rng)
        }
    }
}

fn lw_posterior<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    evidence: &[(usize, f64)],
    target: usize,
    mc: McOptions,
    rng: &mut R,
) -> Result<Posterior> {
    let ev: std::collections::HashMap<usize, f64> = evidence.iter().copied().collect();
    let samples = likelihood_weighting(
        network,
        &ev,
        LwOptions {
            samples: mc.samples,
        },
        rng,
    )?;
    let total = samples.total_weight();
    if total <= 0.0 {
        return Err(CoreError::BadRequest(
            "evidence has zero likelihood under the model; check the observed values".into(),
        ));
    }
    // Extract the target column with normalized weights, sorted by value.
    let mut pairs: Vec<(f64, f64)> = samples
        .iter_node(target)
        .map(|(v, w)| (v, w / total))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (values, weights) = pairs.into_iter().unzip();
    Ok(Posterior::Samples { values, weights })
}

/// Posterior of `target` given point observations `evidence` (raw
/// measurement values; discrete models bin them internally).
pub fn query_posterior<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    discretizer: Option<&Discretizer>,
    evidence: &[(usize, f64)],
    target: usize,
    mc: McOptions,
    rng: &mut R,
) -> Result<Posterior> {
    check_query(network, evidence, target)?;

    if let Some(disc) = discretizer {
        // Discrete path: exact variable elimination.
        let ev = binned_evidence(disc, evidence);
        let probs = ve::posterior_marginal(network, target, &ev)?;
        return Ok(discrete_posterior(disc, target, probs));
    }

    if joint::is_linear_gaussian(network) {
        // Exact Gaussian conditioning.
        let mvn = joint::to_joint_gaussian(network)?;
        if evidence.is_empty() {
            return Ok(Posterior::Gaussian {
                mean: mvn.mean()[target],
                variance: mvn.cov().get(target, target),
            });
        }
        let idx: Vec<usize> = evidence.iter().map(|&(n, _)| n).collect();
        let vals: Vec<f64> = evidence.iter().map(|&(_, v)| v).collect();
        let cond = mvn.condition(&idx, &vals)?;
        let mean = cond
            .mean_of(target)
            .ok_or_else(|| CoreError::BadRequest(format!("target {target} was observed")))?;
        let variance = cond.variance_of(target).expect("checked above");
        return Ok(Posterior::Gaussian { mean, variance });
    }

    // Nonlinear continuous: likelihood weighting.
    lw_posterior(network, evidence, target, mc, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::cpd::{Cpd, DetNoise, DeterministicCpd, LinearGaussianCpd};
    use kert_bayes::{Dag, Expr, Variable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_chain() -> BayesianNetwork {
        let vars = vec![Variable::continuous("a"), Variable::continuous("b")];
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1).unwrap();
        BayesianNetwork::new(
            vars,
            dag,
            vec![
                Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.0, 1.0)),
                Cpd::LinearGaussian(
                    LinearGaussianCpd::new(1, vec![0], 0.0, vec![1.0], 1.0).unwrap(),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn linear_path_matches_textbook_posterior() {
        let bn = linear_chain();
        let mut rng = StdRng::seed_from_u64(1);
        let post =
            query_posterior(&bn, None, &[(1, 2.0)], 0, McOptions::default(), &mut rng).unwrap();
        // Posterior: N(1, 0.5).
        assert!((post.mean() - 1.0).abs() < 1e-9);
        assert!((post.variance() - 0.5).abs() < 1e-6);
        assert!(matches!(post, Posterior::Gaussian { .. }));
    }

    #[test]
    fn nonlinear_path_uses_sampling() {
        let vars = vec![
            Variable::continuous("a"),
            Variable::continuous("b"),
            Variable::continuous("d"),
        ];
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 2).unwrap();
        let det = DeterministicCpd::from_network_expr(
            2,
            &Expr::Max(vec![Expr::Var(0), Expr::Var(1)]),
            DetNoise::Gaussian { sigma: 0.2 },
        )
        .unwrap();
        let bn = BayesianNetwork::new(
            vars,
            dag,
            vec![
                Cpd::LinearGaussian(LinearGaussianCpd::root(0, 3.0, 0.5)),
                Cpd::LinearGaussian(LinearGaussianCpd::root(1, 3.0, 0.5)),
                Cpd::Deterministic(det),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let post =
            query_posterior(&bn, None, &[], 2, McOptions { samples: 30_000 }, &mut rng).unwrap();
        assert!(matches!(post, Posterior::Samples { .. }));
        // E[max(A,B)] for two N(3, 0.5): 3 + σ/√π ≈ 3.399.
        let expect = 3.0 + (0.5f64).sqrt() / std::f64::consts::PI.sqrt();
        assert!((post.mean() - expect).abs() < 0.05, "{}", post.mean());
        // Exceedance decreasing in threshold.
        assert!(post.exceedance(2.0) > post.exceedance(4.0));
    }

    #[test]
    fn evidence_validation() {
        let bn = linear_chain();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(
            query_posterior(&bn, None, &[(0, 1.0)], 0, McOptions::default(), &mut rng).is_err()
        );
        assert!(
            query_posterior(&bn, None, &[(9, 1.0)], 0, McOptions::default(), &mut rng).is_err()
        );
        assert!(query_posterior(&bn, None, &[], 9, McOptions::default(), &mut rng).is_err());
    }

    #[test]
    fn posterior_moments_and_exceedance_consistency() {
        let g = Posterior::Gaussian {
            mean: 10.0,
            variance: 4.0,
        };
        kert_conformance::assert_close!(g.mean(), 10.0);
        kert_conformance::assert_close!(g.std_dev(), 2.0);
        assert!((g.exceedance(10.0) - 0.5).abs() < 1e-7);

        let d = Posterior::Discrete {
            support: vec![1.0, 3.0, 5.0],
            probs: vec![0.2, 0.5, 0.3],
            bounds: None,
        };
        assert!((d.mean() - (0.2 + 1.5 + 1.5)).abs() < 1e-12);
        assert!((d.exceedance(2.0) - 0.8).abs() < 1e-12);
        assert!((d.exceedance(5.0) - 0.0).abs() < 1e-12);

        // With bin bounds, tail mass interpolates within the straddled bin.
        let db = Posterior::Discrete {
            support: vec![1.0, 3.0, 5.0],
            probs: vec![0.2, 0.5, 0.3],
            bounds: Some(vec![(0.0, 2.0), (2.0, 4.0), (4.0, 6.0)]),
        };
        assert!((db.exceedance(0.0) - 1.0).abs() < 1e-12);
        // Threshold 3 splits the middle bin in half: 0.25 + 0.3.
        assert!((db.exceedance(3.0) - 0.55).abs() < 1e-12);
        assert!((db.exceedance(6.0) - 0.0).abs() < 1e-12);

        let s = Posterior::Samples {
            values: vec![1.0, 2.0, 3.0],
            weights: vec![0.25, 0.5, 0.25],
        };
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.variance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_grid_sums_to_captured_mass() {
        let d = Posterior::Discrete {
            support: vec![1.0, 3.0, 5.0],
            probs: vec![0.2, 0.5, 0.3],
            bounds: None,
        };
        let (centers, mass) = d.density_on_grid(0.0, 6.0, 6);
        assert_eq!(centers.len(), 6);
        assert!((mass.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
