//! Model-construction cost accounting.
//!
//! Figures 3–5 of the paper plot *construction time*, split into the two
//! phases the paper analyzes: structure determination (expensive for
//! NRT-BN, free for KERT-BN) and parameter learning (full for NRT-BN,
//! partial and optionally decentralized for KERT-BN).

use std::time::Duration;

/// Cost breakdown of one model construction.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Time to obtain the DAG (K2 search for NRT-BN; knowledge compilation
    /// for KERT-BN — microseconds).
    pub structure_time: Duration,
    /// Effective parameter-learning time: the sequential sum for
    /// centralized learning, the per-node maximum for decentralized
    /// learning (each agent runs on its own machine).
    pub parameter_time: Duration,
    /// Family-score evaluations performed during structure search (0 for
    /// KERT-BN) — the `O(n²)` driver behind Figure 4's superlinear curve.
    pub score_evaluations: usize,
    /// Per-node parameter-learning times (empty when not tracked).
    pub node_parameter_times: Vec<Duration>,
}

impl BuildReport {
    /// Total effective construction time.
    pub fn total(&self) -> Duration {
        self.structure_time + self.parameter_time
    }

    /// Total in seconds (for plotting).
    pub fn total_secs(&self) -> f64 {
        self.total().as_secs_f64()
    }

    /// Sum of per-node parameter times — what a centralized learner pays
    /// regardless of how `parameter_time` was accounted.
    pub fn centralized_parameter_time(&self) -> Duration {
        self.node_parameter_times.iter().sum()
    }

    /// Max of per-node parameter times — the decentralized fleet latency.
    pub fn decentralized_parameter_time(&self) -> Duration {
        self.node_parameter_times
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = BuildReport {
            structure_time: Duration::from_millis(30),
            parameter_time: Duration::from_millis(70),
            score_evaluations: 12,
            node_parameter_times: vec![
                Duration::from_millis(10),
                Duration::from_millis(40),
                Duration::from_millis(20),
            ],
        };
        assert_eq!(r.total(), Duration::from_millis(100));
        assert!((r.total_secs() - 0.1).abs() < 1e-9);
        assert_eq!(r.centralized_parameter_time(), Duration::from_millis(70));
        assert_eq!(r.decentralized_parameter_time(), Duration::from_millis(40));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = BuildReport::default();
        assert_eq!(r.total(), Duration::ZERO);
        assert_eq!(r.decentralized_parameter_time(), Duration::ZERO);
    }
}
