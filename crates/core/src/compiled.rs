//! Compile-once query engine for discrete KERT-BNs.
//!
//! The autonomic loop asks the *same model* many questions per control
//! period: one dComp posterior per unobservable service, one pAccel
//! projection per acceleration candidate, one violation probability per
//! SLA threshold. Rebuilding the variable-elimination factor stack for
//! every query repeats the moralization/triangulation work each time.
//! [`CompiledKert`] instead compiles the network into a junction tree once
//! ([`kert_bayes::compile::JunctionTree`]) and answers each query by
//! incremental evidence propagation over the calibrated tree, reusing one
//! [`kert_bayes::infer::QueryWorkspace`] so steady-state queries allocate
//! nothing.
//!
//! Build one with [`KertBn::compile`]; the batch entry points in
//! [`crate::dcomp`], [`crate::paccel`] and [`crate::violation`] route
//! through it automatically for discrete models.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kert_bayes::compile::{configured_workers, JtState, JunctionTree};
use kert_bayes::cpd::Cpd;
use kert_bayes::discretize::Discretizer;

use crate::dcomp::DCompOutcome;
use crate::kert::KertBn;
use crate::paccel::PAccelOutcome;
use crate::posterior::{check_query, discrete_posterior, Posterior};
use crate::streaming::RefreshOutcome;
use crate::{CoreError, Result};

// Facade telemetry: evidence churn (full replacements via `set_evidence`)
// and batch sizes per autonomic entry point. Per-message propagation work
// is counted one layer down in `kert_bayes::compile`.
static OBS_COMPILES: kert_obs::Counter = kert_obs::Counter::new("core.compiled.builds");
static OBS_EVIDENCE_SETS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.evidence_sets");
static OBS_EVIDENCE_PINS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.evidence_pins");
static OBS_POSTERIORS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.posteriors");
static OBS_DCOMP_TARGETS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.dcomp_targets");
static OBS_PACCEL_CANDIDATES: kert_obs::Counter =
    kert_obs::Counter::new("core.compiled.paccel_candidates");
static OBS_VIOLATION_THRESHOLDS: kert_obs::Counter =
    kert_obs::Counter::new("core.compiled.violation_thresholds");

/// Bin raw measurement evidence into sorted `(node, state)` pins.
/// Sorting makes entry order deterministic, so permuted evidence slices
/// propagate identically. Shared by [`CompiledKert`] and the serving
/// sessions in [`crate::serve`] — both paths MUST bin and order evidence
/// identically for their results to be bitwise-comparable.
pub(crate) fn bin_evidence(
    model: &KertBn,
    evidence: &[(usize, f64)],
) -> Result<Vec<(usize, usize)>> {
    let disc = model
        .discretizer()
        .expect("discrete model checked at engine construction");
    let mut pins: Vec<(usize, usize)> = evidence
        .iter()
        .map(|&(node, value)| {
            if node >= model.network().len() {
                return Err(CoreError::BadRequest(format!("no evidence node {node}")));
            }
            Ok((node, disc.column(node).state(value)))
        })
        .collect::<Result<_>>()?;
    pins.sort_unstable();
    Ok(pins)
}

/// Replace all evidence on `st` with the given sorted pins (clear, then
/// enter in ascending node order). Shared with [`crate::serve`].
pub(crate) fn apply_pins(
    tree: &JunctionTree,
    st: &mut JtState,
    pins: &[(usize, usize)],
) -> Result<()> {
    tree.clear_evidence(st)?;
    for &(node, s) in pins {
        tree.set_evidence(st, node, s)?;
    }
    Ok(())
}

/// One worker's chunk of a batch fan-out: worker index, wall time, the
/// chunk's per-item (result, compute time) pairs, the pooled state handed
/// back for reuse, and the panic payload if the worker's closure
/// panicked mid-chunk.
type WorkerChunk<O> = (
    usize,
    Duration,
    Vec<(Result<O>, Duration)>,
    JtState,
    Option<String>,
);

/// Timing of one batch fan-out ([`CompiledKert::dcomp_all`],
/// [`CompiledKert::paccel_batch`], [`CompiledKert::violation_sweep_batch`]):
/// how long each item took to compute and how that work distributed across
/// the worker pool.
#[derive(Debug, Clone)]
pub struct FanoutStats {
    /// Workers the batch actually used (≤ the configured pool width).
    pub workers: usize,
    /// Measured compute time per item, in input order.
    pub item_times: Vec<Duration>,
    /// Per worker: the sum of its items' compute times — the latency that
    /// worker's share costs on a core of its own.
    pub worker_item_sums: Vec<Duration>,
    /// Per worker: measured wall time including thread scheduling. On a
    /// single-core host the workers timeshare, so these approach the batch
    /// total regardless of pool width — which is why the headline number
    /// is [`FanoutStats::simulated_speedup`], not a wall ratio.
    pub worker_wall: Vec<Duration>,
}

impl FanoutStats {
    /// Host-independent speedup of the fan-out: total per-item compute
    /// time over the slowest worker's share (Σ/max). This is the factor
    /// the batch latency divides by with one core per worker, derived
    /// entirely from per-item times measured on *this* host — the same
    /// convention as the decentralized-learning speedup in the benches.
    pub fn simulated_speedup(&self) -> f64 {
        let max = self
            .worker_item_sums
            .iter()
            .max()
            .copied()
            .unwrap_or_default();
        if max.is_zero() {
            return 1.0;
        }
        let sum: Duration = self.item_times.iter().sum();
        sum.as_secs_f64() / max.as_secs_f64()
    }
}

/// A discrete [`KertBn`] compiled into a calibrated junction tree, with a
/// mutable evidence state and reusable query workspace.
///
/// All query methods take `&mut self` because evidence entry and message
/// propagation mutate the cached state; the compiled tree itself is
/// immutable, `Arc`-shared, and read concurrently by the batch worker
/// pool (and by anything that takes a handle via
/// [`CompiledKert::share_tree`] — e.g. a long-running query daemon).
/// Batch entry points fan their independent items across
/// [`CompiledKert::workers`] scoped threads, each with its own pooled
/// [`JtState`]; per-item results are bitwise identical for any worker
/// count because message propagation is a deterministic function of
/// (tree, evidence), never of thread schedule.
pub struct CompiledKert<'m> {
    model: &'m KertBn,
    tree: Arc<JunctionTree>,
    state: JtState,
    /// Parked per-worker states, reused across batch calls so steady-state
    /// fan-outs stop allocating propagation state.
    spare: Vec<JtState>,
    workers: usize,
    last_fanout: Option<FanoutStats>,
}

impl KertBn {
    /// Compile this model for batched querying. Requires a discrete model
    /// (junction-tree propagation runs over tabular CPDs); continuous
    /// models return `BadRequest` — use the per-query entry points, which
    /// dispatch to Gaussian conditioning or likelihood weighting.
    pub fn compile(&self) -> Result<CompiledKert<'_>> {
        CompiledKert::new(self)
    }
}

impl<'m> CompiledKert<'m> {
    fn new(model: &'m KertBn) -> Result<Self> {
        if model.discretizer().is_none() {
            return Err(CoreError::BadRequest(
                "junction-tree compilation requires a discrete model".into(),
            ));
        }
        OBS_COMPILES.incr();
        let tree = Arc::new(JunctionTree::compile(model.network())?);
        let state = tree.new_state();
        Ok(CompiledKert {
            model,
            tree,
            state,
            spare: Vec::new(),
            workers: configured_workers(),
            last_fanout: None,
        })
    }

    /// The model this engine was compiled from.
    pub fn model(&self) -> &'m KertBn {
        self.model
    }

    /// A shared handle to the compiled tree, for callers that serve
    /// queries from their own threads (each thread pairs the handle with
    /// its own [`JunctionTree::new_state`]).
    pub fn share_tree(&self) -> Arc<JunctionTree> {
        Arc::clone(&self.tree)
    }

    /// Batch worker-pool width (defaults to
    /// [`configured_workers`]: `KERT_WORKERS` or the host parallelism).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Override the batch worker-pool width. `1` forces sequential
    /// batches; results are identical for any value. While the tree is
    /// not yet shared elsewhere, the collect-pass worker count inside the
    /// tree is updated to match.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
        if let Some(tree) = Arc::get_mut(&mut self.tree) {
            tree.set_workers(workers.max(1));
        }
    }

    /// Timing of the most recent batch fan-out, if any.
    pub fn last_fanout(&self) -> Option<&FanoutStats> {
        self.last_fanout.as_ref()
    }

    /// Recalibrate the engine in place from a streaming refresh: swap in
    /// every update whose movement exceeds `threshold` and rebuild only the
    /// junction-tree cliques that host them (messages re-derive lazily via
    /// subtree invalidation). Returns the number of cliques rebuilt.
    ///
    /// Pass `threshold = 0.0` for exact tracking; a positive threshold
    /// defers sub-threshold updates — they are *dropped*, not queued, so
    /// the caller should keep feeding subsequent outcomes (each measures
    /// movement against the model the engine was compiled from, so deferred
    /// drift accumulates rather than vanishing). After any refresh the tree
    /// diverges from `model()`'s CPDs by design.
    ///
    /// Fails when the tree handle has been shared via [`Self::share_tree`]
    /// — recalibrating under live external readers would race.
    pub fn refresh_cpds(&mut self, outcome: &RefreshOutcome, threshold: f64) -> Result<usize> {
        let updates: Vec<(usize, Cpd)> = outcome
            .updates
            .iter()
            .filter(|u| u.movement > threshold && u.movement > 0.0)
            .map(|u| (u.node, u.cpd.clone()))
            .collect();
        if updates.is_empty() {
            return Ok(0);
        }
        let tree = Arc::get_mut(&mut self.tree).ok_or_else(|| {
            CoreError::BadRequest(
                "cannot refresh CPDs while the tree is shared (share_tree handles alive)".into(),
            )
        })?;
        let dirty = tree.refresh_cpds(&updates)?;
        self.tree.refresh_state_cliques(&mut self.state, &dirty)?;
        for st in &mut self.spare {
            self.tree.refresh_state_cliques(st, &dirty)?;
        }
        Ok(dirty.len())
    }

    /// Induced width of the compiled tree (largest clique size minus
    /// one) — the quantity that governs per-query cost.
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    fn disc(&self) -> &'m Discretizer {
        self.model.discretizer().expect("checked at compile")
    }

    /// Bin raw measurement evidence into sorted `(node, state)` pins.
    fn bin_pins(&self, evidence: &[(usize, f64)]) -> Result<Vec<(usize, usize)>> {
        bin_evidence(self.model, evidence)
    }

    /// Replace all evidence on `st` with the given sorted pins.
    fn apply_pins(tree: &JunctionTree, st: &mut JtState, pins: &[(usize, usize)]) -> Result<()> {
        apply_pins(tree, st, pins)
    }

    /// Replace the current evidence set with `evidence` (raw measurement
    /// values, binned through the model's discretizer).
    pub fn set_evidence(&mut self, evidence: &[(usize, f64)]) -> Result<()> {
        OBS_EVIDENCE_SETS.incr();
        OBS_EVIDENCE_PINS.add(evidence.len() as u64);
        let pins = self.bin_pins(evidence)?;
        Self::apply_pins(&self.tree, &mut self.state, &pins)
    }

    /// Fan `items` across the worker pool against the shared tree: every
    /// worker draws a pooled [`JtState`], applies the shared `pins`, and
    /// runs `work` on its contiguous chunk of items. Results come back in
    /// input order; per-item and per-worker times land in
    /// [`CompiledKert::last_fanout`].
    ///
    /// With a pool width of 1 (or a single item) the batch runs on the
    /// engine's own state with no threads — the two paths produce bitwise
    /// identical results, so `KERT_WORKERS=1` is purely a latency choice.
    fn fan_out<T, O>(
        &mut self,
        items: &[T],
        pins: &[(usize, usize)],
        work: impl Fn(&JunctionTree, &mut JtState, &T) -> Result<O> + Sync,
    ) -> Result<Vec<O>>
    where
        T: Sync,
        O: Send,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(items.len()).max(1);
        let mut stats = FanoutStats {
            workers,
            item_times: Vec::with_capacity(items.len()),
            worker_item_sums: Vec::with_capacity(workers),
            worker_wall: Vec::with_capacity(workers),
        };
        let mut out: Vec<O> = Vec::with_capacity(items.len());
        if workers < 2 {
            let wall = Instant::now();
            Self::apply_pins(&self.tree, &mut self.state, pins)?;
            for item in items {
                let t0 = Instant::now();
                let r = work(&self.tree, &mut self.state, item)?;
                stats.item_times.push(t0.elapsed());
                out.push(r);
            }
            stats.worker_item_sums.push(stats.item_times.iter().sum());
            stats.worker_wall.push(wall.elapsed());
        } else {
            while self.spare.len() < workers {
                self.spare.push(self.tree.new_state());
            }
            let mut states: Vec<JtState> = self.spare.drain(self.spare.len() - workers..).collect();
            let chunk_len = items.len().div_ceil(workers);
            let tree: &JunctionTree = &self.tree;
            let work = &work;
            // Worker w returns its chunk's per-item (result, time) pairs
            // and its wall time; a failed pin application or item stops
            // that worker's chunk at the error. The per-item closure runs
            // under `catch_unwind` so a panicking item surfaces as an
            // error *after* every worker's pooled state has been handed
            // back — a panic must never drain the state pool.
            let mut results: Vec<WorkerChunk<O>> = std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(workers);
                for (w, chunk) in items.chunks(chunk_len).enumerate() {
                    let mut st = states.pop().expect("one state per worker");
                    handles.push(s.spawn(move || {
                        let wall = Instant::now();
                        let mut outs: Vec<(Result<O>, Duration)> = Vec::with_capacity(chunk.len());
                        let panicked =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                match Self::apply_pins(tree, &mut st, pins) {
                                    Err(e) => outs.push((Err(e), Duration::ZERO)),
                                    Ok(()) => {
                                        for item in chunk {
                                            let t0 = Instant::now();
                                            let r = work(tree, &mut st, item);
                                            let failed = r.is_err();
                                            outs.push((r, t0.elapsed()));
                                            if failed {
                                                break;
                                            }
                                        }
                                    }
                                }
                            }))
                            .err()
                            .map(|payload| {
                                payload
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "opaque panic payload".into())
                            });
                        (w, wall.elapsed(), outs, st, panicked)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker thread died"))
                    .collect()
            });
            results.sort_by_key(|&(w, ..)| w);
            // First pass: recycle every state unconditionally, so an early
            // `return Err` below cannot leak workers' propagation states.
            let mut panic_msg: Option<String> = None;
            let mut chunks = Vec::with_capacity(results.len());
            for (_, wall, outs, st, panicked) in results {
                self.spare.push(st);
                if panic_msg.is_none() {
                    panic_msg = panicked;
                }
                chunks.push((wall, outs));
            }
            if let Some(msg) = panic_msg {
                self.last_fanout = None;
                return Err(CoreError::Internal(format!("batch worker panicked: {msg}")));
            }
            for (wall, outs) in chunks {
                let mut sum = Duration::ZERO;
                for (r, t) in outs {
                    out.push(r?);
                    sum += t;
                    stats.item_times.push(t);
                }
                stats.worker_item_sums.push(sum);
                stats.worker_wall.push(wall);
            }
        }
        self.last_fanout = Some(stats);
        Ok(out)
    }

    /// Posterior of `target` under the evidence currently entered.
    pub fn posterior(&mut self, target: usize) -> Result<Posterior> {
        OBS_POSTERIORS.incr();
        if target >= self.model.network().len() {
            return Err(CoreError::BadRequest(format!("no node {target}")));
        }
        let probs = self.tree.marginal(&mut self.state, target)?;
        Ok(discrete_posterior(self.disc(), target, probs))
    }

    /// Batched dComp: prior and posterior of every `target` given one
    /// shared evidence set. Equivalent to calling [`crate::dcomp::dcomp`]
    /// per target, but the network is compiled once, the observed evidence
    /// is propagated once per worker, and the per-target work is a single
    /// collect pass toward each target's home clique — targets fan across
    /// the worker pool.
    pub fn dcomp_all(
        &mut self,
        observed: &[(usize, f64)],
        targets: &[usize],
    ) -> Result<Vec<DCompOutcome>> {
        OBS_DCOMP_TARGETS.add(targets.len() as u64);
        let _span = kert_obs::span("core.dcomp_all");
        for &target in targets {
            check_query(self.model.network(), observed, target)?;
        }
        let disc = self.disc();
        let query = move |tree: &JunctionTree, st: &mut JtState, target: usize| {
            OBS_POSTERIORS.incr();
            let probs = tree.marginal(st, target)?;
            Ok(discrete_posterior(disc, target, probs))
        };
        let priors: Vec<Posterior> =
            self.fan_out(targets, &[], |tree, st, &t| query(tree, st, t))?;
        let pins = self.bin_pins(observed)?;
        let posteriors: Vec<Posterior> =
            self.fan_out(targets, &pins, |tree, st, &t| query(tree, st, t))?;
        Ok(targets
            .iter()
            .zip(priors)
            .zip(posteriors)
            .map(|((&target, prior), posterior)| DCompOutcome {
                target,
                prior,
                posterior,
            })
            .collect())
    }

    /// Batched pAccel: one projection per `(service, predicted_elapsed)`
    /// candidate against a single shared prior. Candidates fan across the
    /// worker pool; within each worker only the candidate's own pin
    /// changes between items, so each projection re-propagates just the
    /// affected subtree of that worker's calibrated state.
    pub fn paccel_batch(&mut self, candidates: &[(usize, f64)]) -> Result<Vec<PAccelOutcome>> {
        OBS_PACCEL_CANDIDATES.add(candidates.len() as u64);
        let _span = kert_obs::span("core.paccel_batch");
        let d_node = self.model.d_node();
        for &(service, value) in candidates {
            check_query(self.model.network(), &[(service, value)], d_node)?;
        }
        self.set_evidence(&[])?;
        let prior_d = self.posterior(d_node)?;
        let degraded = self.model.is_degraded();
        let disc = self.disc();
        let prior_ref = &prior_d;
        let outcomes = self.fan_out(
            candidates,
            &[],
            move |tree, st, &(service, predicted_elapsed)| {
                OBS_POSTERIORS.incr();
                let s = disc.column(service).state(predicted_elapsed);
                tree.set_evidence(st, service, s)?;
                let probs = tree.marginal(st, d_node)?;
                tree.retract_evidence(st, service)?;
                Ok(PAccelOutcome {
                    service,
                    predicted_elapsed,
                    prior_d: prior_ref.clone(),
                    projected_d: discrete_posterior(disc, d_node, probs),
                    degraded,
                })
            },
        )?;
        Ok(outcomes)
    }

    /// `P(D > h | evidence)` for every threshold in `thresholds`: one
    /// posterior query, many exceedance reads.
    pub fn violation_sweep(
        &mut self,
        evidence: &[(usize, f64)],
        thresholds: &[f64],
    ) -> Result<Vec<f64>> {
        OBS_VIOLATION_THRESHOLDS.add(thresholds.len() as u64);
        let _span = kert_obs::span("core.violation_sweep");
        let d_node = self.model.d_node();
        check_query(self.model.network(), evidence, d_node)?;
        self.set_evidence(evidence)?;
        let posterior = self.posterior(d_node)?;
        Ok(thresholds
            .iter()
            .map(|&h| posterior.exceedance(h))
            .collect())
    }

    /// [`CompiledKert::violation_sweep`] over many independent evidence
    /// sets — the control-loop shape where each monitoring window (or each
    /// what-if scenario) needs its own `P(D > h)` sweep. Evidence sets fan
    /// across the worker pool against the shared tree; row `i` of the
    /// result is the sweep for `evidence_sets[i]`.
    pub fn violation_sweep_batch(
        &mut self,
        evidence_sets: &[Vec<(usize, f64)>],
        thresholds: &[f64],
    ) -> Result<Vec<Vec<f64>>> {
        OBS_VIOLATION_THRESHOLDS.add((evidence_sets.len() * thresholds.len()) as u64);
        let _span = kert_obs::span("core.violation_sweep_batch");
        let d_node = self.model.d_node();
        let mut all_pins = Vec::with_capacity(evidence_sets.len());
        for evidence in evidence_sets {
            check_query(self.model.network(), evidence, d_node)?;
            all_pins.push(self.bin_pins(evidence)?);
        }
        let disc = self.disc();
        self.fan_out(
            &all_pins,
            &[],
            move |tree, st, pins: &Vec<(usize, usize)>| {
                OBS_POSTERIORS.incr();
                Self::apply_pins(tree, st, pins)?;
                let probs = tree.marginal(st, d_node)?;
                let posterior = discrete_posterior(disc, d_node, probs);
                Ok(thresholds
                    .iter()
                    .map(|&h| posterior.exceedance(h))
                    .collect())
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcomp::dcomp;
    use crate::kert::{ContinuousKertOptions, DiscreteKertOptions};
    use crate::paccel::paccel_model;
    use crate::posterior::McOptions;
    use crate::violation::assess_violation;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rows: usize, seed: u64) -> (WorkflowKnowledge, kert_bayes::Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let means = [0.05, 0.05, 0.04, 0.35, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    fn discrete_model() -> KertBn {
        let (knowledge, data) = setup(600, 61);
        KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
    }

    #[test]
    fn dcomp_all_matches_per_query_dcomp() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let observed = vec![(0usize, 0.05), (1, 0.06), (6, 0.6)];
        let targets = [2usize, 3, 4];
        let batch = compiled.dcomp_all(&observed, &targets).unwrap();
        assert_eq!(batch.len(), targets.len());
        let mut rng = StdRng::seed_from_u64(5);
        for out in &batch {
            let single = dcomp(
                model.network(),
                model.discretizer(),
                &observed,
                out.target,
                McOptions::default(),
                &mut rng,
            )
            .unwrap();
            assert!((out.prior.mean() - single.prior.mean()).abs() < 1e-9);
            assert!((out.posterior.mean() - single.posterior.mean()).abs() < 1e-9);
            assert!((out.posterior.variance() - single.posterior.variance()).abs() < 1e-9);
        }
    }

    #[test]
    fn paccel_batch_matches_paccel_model() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let candidates = vec![(3usize, 0.3), (0, 0.04), (3, 0.2)];
        let batch = compiled.paccel_batch(&candidates).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for (out, &(service, pred)) in batch.iter().zip(&candidates) {
            let single =
                paccel_model(&model, service, pred, McOptions::default(), &mut rng).unwrap();
            assert_eq!(out.service, service);
            assert!((out.prior_d.mean() - single.prior_d.mean()).abs() < 1e-9);
            assert!((out.projected_d.mean() - single.projected_d.mean()).abs() < 1e-9);
            assert_eq!(out.degraded, single.degraded);
        }
    }

    #[test]
    fn violation_sweep_matches_assess_violation() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let evidence = vec![(3usize, 0.4)];
        let thresholds = [0.4, 0.6, 0.8];
        let probs = compiled.violation_sweep(&evidence, &thresholds).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for (&h, &p) in thresholds.iter().zip(&probs) {
            let single =
                assess_violation(&model, &evidence, h, McOptions::default(), &mut rng).unwrap();
            assert!((p - single.probability).abs() < 1e-9, "h={h}");
        }
    }

    #[test]
    fn evidence_is_order_insensitive_and_resettable() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        compiled.set_evidence(&[(0, 0.05), (1, 0.06)]).unwrap();
        let a = compiled.posterior(6).unwrap();
        compiled.set_evidence(&[(1, 0.06), (0, 0.05)]).unwrap();
        let b = compiled.posterior(6).unwrap();
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        // Clearing restores the prior.
        compiled.set_evidence(&[]).unwrap();
        let prior = compiled.posterior(6).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let fresh = crate::posterior::query_posterior(
            model.network(),
            model.discretizer(),
            &[],
            6,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert!((prior.mean() - fresh.mean()).abs() < 1e-9);
    }

    fn dprobs(p: &Posterior) -> &[f64] {
        match p {
            Posterior::Discrete { probs, .. } => probs,
            other => panic!("expected a discrete posterior, got {other:?}"),
        }
    }

    #[test]
    fn worker_pool_results_are_bitwise_identical_to_sequential() {
        let model = discrete_model();
        let observed = vec![(0usize, 0.05), (1, 0.06), (6, 0.6)];
        let targets = [2usize, 3, 4, 5];
        let candidates = vec![(3usize, 0.3), (0, 0.04), (3, 0.2), (4, 0.05)];
        let ev_sets: Vec<Vec<(usize, f64)>> = vec![
            vec![(3, 0.4)],
            vec![(0, 0.05), (1, 0.06)],
            vec![],
            vec![(4, 0.07)],
        ];
        let thresholds = [0.4, 0.6, 0.8];

        let mut seq = model.compile().unwrap();
        seq.set_workers(1);
        let mut par = model.compile().unwrap();
        par.set_workers(4);
        assert_eq!(par.workers(), 4);

        let a = seq.dcomp_all(&observed, &targets).unwrap();
        let b = par.dcomp_all(&observed, &targets).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(dprobs(&x.prior), dprobs(&y.prior));
            assert_eq!(dprobs(&x.posterior), dprobs(&y.posterior));
        }

        let a = seq.paccel_batch(&candidates).unwrap();
        let b = par.paccel_batch(&candidates).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(dprobs(&x.projected_d), dprobs(&y.projected_d));
        }

        let a = seq.violation_sweep_batch(&ev_sets, &thresholds).unwrap();
        let b = par.violation_sweep_batch(&ev_sets, &thresholds).unwrap();
        assert_eq!(a, b, "violation sweep differed across worker counts");

        // Fan-out stats recorded for the last batch: one time per item,
        // work split across the pool, Σ/max speedup well-defined.
        let stats = par.last_fanout().unwrap();
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.item_times.len(), ev_sets.len());
        assert_eq!(stats.worker_item_sums.len(), 4);
        assert!(stats.simulated_speedup() >= 1.0);
        let seq_stats = seq.last_fanout().unwrap();
        assert_eq!(seq_stats.workers, 1);
        assert_eq!(seq_stats.worker_wall.len(), 1);
    }

    #[test]
    fn violation_sweep_batch_matches_single_sweeps() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let ev_sets: Vec<Vec<(usize, f64)>> =
            vec![vec![(3, 0.4)], vec![(0, 0.05)], vec![(3, 0.25), (1, 0.06)]];
        let thresholds = [0.3, 0.5, 0.7];
        let batch = compiled
            .violation_sweep_batch(&ev_sets, &thresholds)
            .unwrap();
        assert_eq!(batch.len(), ev_sets.len());
        for (evidence, row) in ev_sets.iter().zip(&batch) {
            let single = compiled.violation_sweep(evidence, &thresholds).unwrap();
            assert_eq!(row, &single, "evidence {evidence:?}");
        }
        // The tree handle is shareable for daemon-style callers.
        let tree = compiled.share_tree();
        assert!(tree.n_cliques() > 0);
    }

    #[test]
    fn continuous_models_are_rejected() {
        let (knowledge, data) = setup(300, 62);
        let model =
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap();
        assert!(matches!(model.compile(), Err(CoreError::BadRequest(_))));
    }

    /// Regression: a panic inside a batch worker must surface as a typed
    /// error, recycle every pooled `JtState` (not drop them with the
    /// panicking thread), and leave the engine fully serviceable — the
    /// next batch must be bitwise-identical to a fresh engine's.
    #[test]
    fn worker_panic_recycles_pooled_states_and_reports_an_error() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        compiled.set_workers(4);
        let items = [0usize, 1, 2, 3, 4, 5, 6, 7];

        // Warm the pool so we can observe recycling (not re-allocation).
        let _ = compiled
            .fan_out(&items, &[], |tree, st, &i| {
                let probs = tree.marginal(st, i % 6)?;
                Ok(probs.len())
            })
            .unwrap();
        let pooled_before = compiled.spare.len();
        assert!(pooled_before >= 4, "warm-up should have parked 4 states");

        let err = compiled
            .fan_out(&items, &[], |tree, st, &i| {
                if i == 5 {
                    panic!("injected worker panic on item {i}");
                }
                let probs = tree.marginal(st, i % 6)?;
                Ok(probs.len())
            })
            .unwrap_err();
        match err {
            CoreError::Internal(msg) => assert!(
                msg.contains("injected worker panic"),
                "panic payload lost: {msg}"
            ),
            other => panic!("expected CoreError::Internal, got {other:?}"),
        }
        assert_eq!(
            compiled.spare.len(),
            pooled_before,
            "a worker panic dropped pooled JtStates instead of recycling them"
        );

        // The engine still answers, and bitwise-matches a fresh one.
        let observed = vec![(0usize, 0.05), (1, 0.06)];
        let targets = [2usize, 3, 4, 5];
        let after = compiled.dcomp_all(&observed, &targets).unwrap();
        let mut fresh = model.compile().unwrap();
        fresh.set_workers(4);
        let expect = fresh.dcomp_all(&observed, &targets).unwrap();
        for (x, y) in after.iter().zip(&expect) {
            assert_eq!(dprobs(&x.prior), dprobs(&y.prior));
            assert_eq!(dprobs(&x.posterior), dprobs(&y.posterior));
        }
    }

    #[test]
    fn invalid_queries_are_reported() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        assert!(compiled.posterior(99).is_err());
        assert!(compiled.set_evidence(&[(99, 1.0)]).is_err());
        // Target also observed.
        assert!(compiled.dcomp_all(&[(2, 0.05)], &[2]).is_err());
        assert!(compiled.paccel_batch(&[(6, 0.5)]).is_err());
    }
}
