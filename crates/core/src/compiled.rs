//! Compile-once query engine for discrete KERT-BNs.
//!
//! The autonomic loop asks the *same model* many questions per control
//! period: one dComp posterior per unobservable service, one pAccel
//! projection per acceleration candidate, one violation probability per
//! SLA threshold. Rebuilding the variable-elimination factor stack for
//! every query repeats the moralization/triangulation work each time.
//! [`CompiledKert`] instead compiles the network into a junction tree once
//! ([`kert_bayes::compile::JunctionTree`]) and answers each query by
//! incremental evidence propagation over the calibrated tree, reusing one
//! [`kert_bayes::infer::QueryWorkspace`] so steady-state queries allocate
//! nothing.
//!
//! Build one with [`KertBn::compile`]; the batch entry points in
//! [`crate::dcomp`], [`crate::paccel`] and [`crate::violation`] route
//! through it automatically for discrete models.

use kert_bayes::compile::{JtState, JunctionTree};
use kert_bayes::discretize::Discretizer;

use crate::dcomp::DCompOutcome;
use crate::kert::KertBn;
use crate::paccel::PAccelOutcome;
use crate::posterior::{check_query, discrete_posterior, Posterior};
use crate::{CoreError, Result};

// Facade telemetry: evidence churn (full replacements via `set_evidence`)
// and batch sizes per autonomic entry point. Per-message propagation work
// is counted one layer down in `kert_bayes::compile`.
static OBS_COMPILES: kert_obs::Counter = kert_obs::Counter::new("core.compiled.builds");
static OBS_EVIDENCE_SETS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.evidence_sets");
static OBS_EVIDENCE_PINS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.evidence_pins");
static OBS_POSTERIORS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.posteriors");
static OBS_DCOMP_TARGETS: kert_obs::Counter = kert_obs::Counter::new("core.compiled.dcomp_targets");
static OBS_PACCEL_CANDIDATES: kert_obs::Counter =
    kert_obs::Counter::new("core.compiled.paccel_candidates");
static OBS_VIOLATION_THRESHOLDS: kert_obs::Counter =
    kert_obs::Counter::new("core.compiled.violation_thresholds");

/// A discrete [`KertBn`] compiled into a calibrated junction tree, with a
/// mutable evidence state and reusable query workspace.
///
/// All query methods take `&mut self` because evidence entry and message
/// propagation mutate the cached state; the compiled tree itself is
/// immutable and shared across all queries.
pub struct CompiledKert<'m> {
    model: &'m KertBn,
    tree: JunctionTree,
    state: JtState,
}

impl KertBn {
    /// Compile this model for batched querying. Requires a discrete model
    /// (junction-tree propagation runs over tabular CPDs); continuous
    /// models return `BadRequest` — use the per-query entry points, which
    /// dispatch to Gaussian conditioning or likelihood weighting.
    pub fn compile(&self) -> Result<CompiledKert<'_>> {
        CompiledKert::new(self)
    }
}

impl<'m> CompiledKert<'m> {
    fn new(model: &'m KertBn) -> Result<Self> {
        if model.discretizer().is_none() {
            return Err(CoreError::BadRequest(
                "junction-tree compilation requires a discrete model".into(),
            ));
        }
        OBS_COMPILES.incr();
        let tree = JunctionTree::compile(model.network())?;
        let state = tree.new_state();
        Ok(CompiledKert { model, tree, state })
    }

    /// The model this engine was compiled from.
    pub fn model(&self) -> &'m KertBn {
        self.model
    }

    /// Induced width of the compiled tree (largest clique size minus
    /// one) — the quantity that governs per-query cost.
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    fn disc(&self) -> &'m Discretizer {
        self.model.discretizer().expect("checked at compile")
    }

    /// Replace the current evidence set with `evidence` (raw measurement
    /// values, binned through the model's discretizer). Entry order is
    /// deterministic (sorted by node) so repeated calls with permuted
    /// slices propagate identically.
    pub fn set_evidence(&mut self, evidence: &[(usize, f64)]) -> Result<()> {
        OBS_EVIDENCE_SETS.incr();
        OBS_EVIDENCE_PINS.add(evidence.len() as u64);
        self.tree.clear_evidence(&mut self.state)?;
        let disc = self.disc();
        let mut pins: Vec<(usize, usize)> = evidence
            .iter()
            .map(|&(node, value)| {
                if node >= self.model.network().len() {
                    return Err(CoreError::BadRequest(format!("no evidence node {node}")));
                }
                Ok((node, disc.column(node).state(value)))
            })
            .collect::<Result<_>>()?;
        pins.sort_unstable();
        for (node, s) in pins {
            self.tree.set_evidence(&mut self.state, node, s)?;
        }
        Ok(())
    }

    /// Posterior of `target` under the evidence currently entered.
    pub fn posterior(&mut self, target: usize) -> Result<Posterior> {
        OBS_POSTERIORS.incr();
        if target >= self.model.network().len() {
            return Err(CoreError::BadRequest(format!("no node {target}")));
        }
        let probs = self.tree.marginal(&mut self.state, target)?;
        Ok(discrete_posterior(self.disc(), target, probs))
    }

    /// Batched dComp: prior and posterior of every `target` given one
    /// shared evidence set. Equivalent to calling [`crate::dcomp::dcomp`]
    /// per target, but the network is compiled once, the observed evidence
    /// is propagated once, and the per-target work is a single collect pass
    /// toward each target's home clique.
    pub fn dcomp_all(
        &mut self,
        observed: &[(usize, f64)],
        targets: &[usize],
    ) -> Result<Vec<DCompOutcome>> {
        OBS_DCOMP_TARGETS.add(targets.len() as u64);
        let _span = kert_obs::span("core.dcomp_all");
        for &target in targets {
            check_query(self.model.network(), observed, target)?;
        }
        self.set_evidence(&[])?;
        let priors: Vec<Posterior> = targets
            .iter()
            .map(|&t| self.posterior(t))
            .collect::<Result<_>>()?;
        self.set_evidence(observed)?;
        targets
            .iter()
            .zip(priors)
            .map(|(&target, prior)| {
                Ok(DCompOutcome {
                    target,
                    prior,
                    posterior: self.posterior(target)?,
                })
            })
            .collect()
    }

    /// Batched pAccel: one projection per `(service, predicted_elapsed)`
    /// candidate against a single shared prior. Between candidates only
    /// the service's own pin changes, so each projection re-propagates
    /// just the affected subtree.
    pub fn paccel_batch(&mut self, candidates: &[(usize, f64)]) -> Result<Vec<PAccelOutcome>> {
        OBS_PACCEL_CANDIDATES.add(candidates.len() as u64);
        let _span = kert_obs::span("core.paccel_batch");
        let d_node = self.model.d_node();
        for &(service, value) in candidates {
            check_query(self.model.network(), &[(service, value)], d_node)?;
        }
        self.set_evidence(&[])?;
        let prior_d = self.posterior(d_node)?;
        let degraded = self.model.is_degraded();
        candidates
            .iter()
            .map(|&(service, predicted_elapsed)| {
                let s = self.disc().column(service).state(predicted_elapsed);
                self.tree.set_evidence(&mut self.state, service, s)?;
                let projected_d = self.posterior(d_node)?;
                self.tree.retract_evidence(&mut self.state, service)?;
                Ok(PAccelOutcome {
                    service,
                    predicted_elapsed,
                    prior_d: prior_d.clone(),
                    projected_d,
                    degraded,
                })
            })
            .collect()
    }

    /// `P(D > h | evidence)` for every threshold in `thresholds`: one
    /// posterior query, many exceedance reads.
    pub fn violation_sweep(
        &mut self,
        evidence: &[(usize, f64)],
        thresholds: &[f64],
    ) -> Result<Vec<f64>> {
        OBS_VIOLATION_THRESHOLDS.add(thresholds.len() as u64);
        let _span = kert_obs::span("core.violation_sweep");
        let d_node = self.model.d_node();
        check_query(self.model.network(), evidence, d_node)?;
        self.set_evidence(evidence)?;
        let posterior = self.posterior(d_node)?;
        Ok(thresholds
            .iter()
            .map(|&h| posterior.exceedance(h))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcomp::dcomp;
    use crate::kert::{ContinuousKertOptions, DiscreteKertOptions};
    use crate::paccel::paccel_model;
    use crate::posterior::McOptions;
    use crate::violation::assess_violation;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rows: usize, seed: u64) -> (WorkflowKnowledge, kert_bayes::Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let means = [0.05, 0.05, 0.04, 0.35, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    fn discrete_model() -> KertBn {
        let (knowledge, data) = setup(600, 61);
        KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
    }

    #[test]
    fn dcomp_all_matches_per_query_dcomp() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let observed = vec![(0usize, 0.05), (1, 0.06), (6, 0.6)];
        let targets = [2usize, 3, 4];
        let batch = compiled.dcomp_all(&observed, &targets).unwrap();
        assert_eq!(batch.len(), targets.len());
        let mut rng = StdRng::seed_from_u64(5);
        for out in &batch {
            let single = dcomp(
                model.network(),
                model.discretizer(),
                &observed,
                out.target,
                McOptions::default(),
                &mut rng,
            )
            .unwrap();
            assert!((out.prior.mean() - single.prior.mean()).abs() < 1e-9);
            assert!((out.posterior.mean() - single.posterior.mean()).abs() < 1e-9);
            assert!((out.posterior.variance() - single.posterior.variance()).abs() < 1e-9);
        }
    }

    #[test]
    fn paccel_batch_matches_paccel_model() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let candidates = vec![(3usize, 0.3), (0, 0.04), (3, 0.2)];
        let batch = compiled.paccel_batch(&candidates).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for (out, &(service, pred)) in batch.iter().zip(&candidates) {
            let single =
                paccel_model(&model, service, pred, McOptions::default(), &mut rng).unwrap();
            assert_eq!(out.service, service);
            assert!((out.prior_d.mean() - single.prior_d.mean()).abs() < 1e-9);
            assert!((out.projected_d.mean() - single.projected_d.mean()).abs() < 1e-9);
            assert_eq!(out.degraded, single.degraded);
        }
    }

    #[test]
    fn violation_sweep_matches_assess_violation() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        let evidence = vec![(3usize, 0.4)];
        let thresholds = [0.4, 0.6, 0.8];
        let probs = compiled.violation_sweep(&evidence, &thresholds).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for (&h, &p) in thresholds.iter().zip(&probs) {
            let single =
                assess_violation(&model, &evidence, h, McOptions::default(), &mut rng).unwrap();
            assert!((p - single.probability).abs() < 1e-9, "h={h}");
        }
    }

    #[test]
    fn evidence_is_order_insensitive_and_resettable() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        compiled.set_evidence(&[(0, 0.05), (1, 0.06)]).unwrap();
        let a = compiled.posterior(6).unwrap();
        compiled.set_evidence(&[(1, 0.06), (0, 0.05)]).unwrap();
        let b = compiled.posterior(6).unwrap();
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        // Clearing restores the prior.
        compiled.set_evidence(&[]).unwrap();
        let prior = compiled.posterior(6).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let fresh = crate::posterior::query_posterior(
            model.network(),
            model.discretizer(),
            &[],
            6,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert!((prior.mean() - fresh.mean()).abs() < 1e-9);
    }

    #[test]
    fn continuous_models_are_rejected() {
        let (knowledge, data) = setup(300, 62);
        let model =
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap();
        assert!(matches!(model.compile(), Err(CoreError::BadRequest(_))));
    }

    #[test]
    fn invalid_queries_are_reported() {
        let model = discrete_model();
        let mut compiled = model.compile().unwrap();
        assert!(compiled.posterior(99).is_err());
        assert!(compiled.set_evidence(&[(99, 1.0)]).is_err());
        // Target also observed.
        assert!(compiled.dcomp_all(&[(2, 0.05)], &[2]).is_err());
        assert!(compiled.paccel_batch(&[(6, 0.5)]).is_err());
    }
}
