//! # kert-core — Knowledge-Enhanced Response Time Bayesian Networks
//!
//! The primary contribution of *"Efficient Statistical Performance Modeling
//! for Autonomic, Service-Oriented Systems"* (Zhang, Bivens, Rezek,
//! IPPS 2007), reproduced in Rust:
//!
//! * [`kert`] — **KERT-BN** construction: structure from workflow +
//!   resource-sharing knowledge (no structure learning), the response-time
//!   CPD generated from the workflow-derived deterministic function with
//!   leak (Eq. 4), and the remaining per-service CPDs learned from data —
//!   centralized or decentralized. Continuous (linear-Gaussian) and
//!   discrete variants, as in §4 and §5 respectively.
//! * [`nrt`] — **NRT-BN**, the learned-from-scratch baseline: K2 structure
//!   learning (optionally with random-order restarts) plus full parameter
//!   learning.
//! * [`posterior`] — unified posterior queries over either model family
//!   (exact Gaussian conditioning, discrete variable elimination, or
//!   likelihood weighting for nonlinear continuous nets).
//! * [`compiled`] — compile-once junction-tree engine for discrete models:
//!   batched dComp/pAccel/violation queries with incremental evidence over
//!   one calibrated tree.
//! * [`serve`] — the shared-core serving split: one `Arc`-shared
//!   calibrated tree, many concurrent per-client [`serve::Session`]s with
//!   pooled propagation states (what the `kertd` daemon is built on).
//! * [`dcomp`] — **dComp**: estimate an unobservable service's elapsed-time
//!   distribution from the observable services (§5.1).
//! * [`paccel`] — **pAccel**: project the end-to-end response-time
//!   distribution after accelerating one service (§5.2).
//! * [`violation`] — threshold-violation probabilities and the relative
//!   error ε of Eq. 5 (§5.3).
//! * [`autonomic`] — degraded-mode compensation: when a resilient rebuild
//!   left nodes on stale/prior CPDs, route dComp from the healthy
//!   observables to recover their elapsed-time estimates.
//! * [`report`] — model-construction cost accounting shared by both
//!   families (what Figures 3–5 plot).

pub mod autonomic;
pub mod compiled;
pub mod dcomp;
pub mod kert;
pub mod nrt;
pub mod paccel;
pub mod persist;
pub mod posterior;
pub mod report;
pub mod serve;
pub mod streaming;
pub mod violation;

pub use autonomic::{compensate_degraded, Compensation};
pub use compiled::{CompiledKert, FanoutStats};
pub use dcomp::{dcomp, dcomp_all, dcomp_via, DCompOutcome};
pub use kert::{
    ContinuousKertOptions, DiscreteKertOptions, KertBn, ParamLearning, ResilientKertOptions,
};
pub use nrt::{NrtBn, NrtOptions};
pub use paccel::{paccel, paccel_candidates, paccel_model, paccel_via, PAccelOutcome};
pub use persist::{ModelKind, SavedModel};
pub use posterior::{query_posterior, query_posterior_via, shifted_posterior, Engine, Posterior};
pub use report::BuildReport;
pub use serve::{Session, SharedKert};
pub use streaming::{CpdUpdate, RefreshOutcome, RefreshSummary, StreamingWindow};
pub use violation::{
    assess_violation, assess_violation_sweep, empirical_violation_probability,
    relative_violation_error, violation_probability_via, ViolationAssessment,
};

/// Errors from model construction and application routines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated Bayesian-network error.
    Bayes(String),
    /// Propagated agent-runtime error.
    Agents(String),
    /// The request contradicts the model (unknown node, wrong family…).
    BadRequest(String),
    /// The engine itself failed (e.g. a batch worker panicked). The
    /// request may be retried; pooled state has been recycled.
    Internal(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Bayes(msg) => write!(f, "bayes: {msg}"),
            CoreError::Agents(msg) => write!(f, "agents: {msg}"),
            CoreError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<kert_bayes::BayesError> for CoreError {
    fn from(e: kert_bayes::BayesError) -> Self {
        CoreError::Bayes(e.to_string())
    }
}

impl From<kert_agents::AgentError> for CoreError {
    fn from(e: kert_agents::AgentError) -> Self {
        CoreError::Agents(e.to_string())
    }
}

impl From<kert_linalg::LinalgError> for CoreError {
    fn from(e: kert_linalg::LinalgError) -> Self {
        CoreError::Bayes(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
