//! pAccel — assessing the end-to-end impact of local acceleration (§5.2).
//!
//! Speeding up one service only helps end-to-end response time if that
//! service sits on the critical path; pAccel quantifies the benefit
//! *before* spending resources, by computing the posterior response-time
//! distribution `p(D | Z = E(z))` where `E(z)` is the predicted
//! elapsed-time mean of the accelerated service (e.g. 90% of its current
//! mean after a local resource action). The difference between prior and
//! projected distributions gauges the action's worth and guides autonomic
//! decisions.

use kert_bayes::discretize::Discretizer;
use kert_bayes::BayesianNetwork;
use rand::Rng;

use crate::posterior::{query_posterior, query_posterior_via, Engine, McOptions, Posterior};
use crate::Result;

/// The result of a pAccel what-if query.
#[derive(Debug, Clone)]
pub struct PAccelOutcome {
    /// The accelerated service node.
    pub service: usize,
    /// The elapsed-time value the acceleration is predicted to achieve.
    pub predicted_elapsed: f64,
    /// Response-time distribution before the action (model marginal).
    pub prior_d: Posterior,
    /// Projected response-time distribution given the acceleration.
    pub projected_d: Posterior,
    /// True when the projection rests on a degraded model (stale/prior
    /// CPDs) — set by [`paccel_model`], always false from raw [`paccel`].
    pub degraded: bool,
}

impl PAccelOutcome {
    /// Projected mean improvement in end-to-end response time.
    pub fn mean_improvement(&self) -> f64 {
        self.prior_d.mean() - self.projected_d.mean()
    }

    /// Projected reduction in `P(D > threshold)` — the SLA-centric view.
    pub fn violation_reduction(&self, threshold: f64) -> f64 {
        self.prior_d.exceedance(threshold) - self.projected_d.exceedance(threshold)
    }
}

/// Run pAccel: project `D`'s distribution with `service`'s elapsed time
/// pinned to `predicted_elapsed`.
pub fn paccel<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    discretizer: Option<&Discretizer>,
    d_node: usize,
    service: usize,
    predicted_elapsed: f64,
    mc: McOptions,
    rng: &mut R,
) -> Result<PAccelOutcome> {
    let prior_d = query_posterior(network, discretizer, &[], d_node, mc, rng)?;
    let projected_d = query_posterior(
        network,
        discretizer,
        &[(service, predicted_elapsed)],
        d_node,
        mc,
        rng,
    )?;
    Ok(PAccelOutcome {
        service,
        predicted_elapsed,
        prior_d,
        projected_d,
        degraded: false,
    })
}

/// [`paccel`] with the inference engine pinned — the oracle-comparable
/// entry point the conformance crate drives each fast path through.
#[allow(clippy::too_many_arguments)]
pub fn paccel_via<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    discretizer: Option<&Discretizer>,
    d_node: usize,
    service: usize,
    predicted_elapsed: f64,
    engine: Engine,
    mc: McOptions,
    rng: &mut R,
) -> Result<PAccelOutcome> {
    let prior_d = query_posterior_via(network, discretizer, &[], d_node, engine, mc, rng)?;
    let projected_d = query_posterior_via(
        network,
        discretizer,
        &[(service, predicted_elapsed)],
        d_node,
        engine,
        mc,
        rng,
    )?;
    Ok(PAccelOutcome {
        service,
        predicted_elapsed,
        prior_d,
        projected_d,
        degraded: false,
    })
}

/// [`paccel`] against a [`KertBn`], propagating its degraded-mode flag so
/// autonomic decisions know when the what-if rests on stale/prior CPDs.
pub fn paccel_model<R: Rng + ?Sized>(
    model: &crate::kert::KertBn,
    service: usize,
    predicted_elapsed: f64,
    mc: McOptions,
    rng: &mut R,
) -> Result<PAccelOutcome> {
    let mut outcome = paccel(
        model.network(),
        model.discretizer(),
        model.d_node(),
        service,
        predicted_elapsed,
        mc,
        rng,
    )?;
    outcome.degraded = model.is_degraded();
    Ok(outcome)
}

/// Batched pAccel: one projection per `(service, predicted_elapsed)`
/// candidate — the form the autonomic planner consumes when ranking
/// acceleration actions. Discrete models run all candidates over one
/// compiled junction tree ([`crate::compiled::CompiledKert`]), sharing the
/// prior and re-propagating only each candidate's pin; continuous models
/// fall back to one [`paccel_model`] call per candidate.
pub fn paccel_candidates<R: Rng + ?Sized>(
    model: &crate::kert::KertBn,
    candidates: &[(usize, f64)],
    mc: McOptions,
    rng: &mut R,
) -> Result<Vec<PAccelOutcome>> {
    if model.discretizer().is_some() {
        return model.compile()?.paccel_batch(candidates);
    }
    candidates
        .iter()
        .map(|&(service, predicted)| paccel_model(model, service, predicted, mc, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::{DiscreteKertOptions, KertBn};
    use kert_bayes::Dataset;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem, Trace};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// eDiaMoND with a *dominant remote path*, so accelerating X4 (node 3)
    /// matters and accelerating X3 (node 2) does not — the §5.2 setup.
    fn setup(seed: u64) -> (WorkflowKnowledge, SimSystem, Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let means = [0.05, 0.05, 0.04, 0.40, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.6 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace: Trace = sys.run(1_200, &mut rng);
        (knowledge, sys, trace.to_dataset(None))
    }

    #[test]
    fn projection_tracks_the_actually_accelerated_system() {
        // The Figure-7 experiment: project D with X4 at 90% of its mean,
        // then actually accelerate X4 in the simulator and compare.
        let (knowledge, mut sys, data) = setup(31);
        let model =
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap();

        let x4_col = data.column(3);
        let x4_mean = kert_linalg::stats::mean(&x4_col);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = paccel(
            model.network(),
            model.discretizer(),
            6,
            3,
            0.9 * x4_mean,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();

        // Ground truth: rerun the simulator with the remote locator's
        // service time reduced to 90%.
        sys.set_service_time(3, Dist::Erlang { k: 4, mean: 0.36 })
            .unwrap();
        let mut rng2 = StdRng::seed_from_u64(32);
        let after = sys.run(1_200, &mut rng2);
        let observed_mean = kert_linalg::stats::mean(&after.response_times());

        let projected = outcome.projected_d.mean();
        let prior = outcome.prior_d.mean();
        // The projection must approximate the observed accelerated mean
        // better than the prior does (Figure 7's claim).
        assert!(
            (projected - observed_mean).abs() < (prior - observed_mean).abs(),
            "projected {projected}, prior {prior}, observed {observed_mean}"
        );
        assert!(outcome.mean_improvement() > 0.0);
    }

    #[test]
    fn off_critical_path_acceleration_buys_little() {
        let (knowledge, _sys, data) = setup(33);
        let model =
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);

        // Accelerate the *local* locator (node 2, far off the critical
        // path) by 50%.
        let x3_mean = kert_linalg::stats::mean(&data.column(2));
        let local = paccel(
            model.network(),
            model.discretizer(),
            6,
            2,
            0.5 * x3_mean,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();

        // Accelerate the remote locator (node 3, the bottleneck) by 50%.
        let x4_mean = kert_linalg::stats::mean(&data.column(3));
        let remote = paccel(
            model.network(),
            model.discretizer(),
            6,
            3,
            0.5 * x4_mean,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();

        assert!(
            remote.mean_improvement() > local.mean_improvement() + 0.01,
            "remote {} vs local {}",
            remote.mean_improvement(),
            local.mean_improvement()
        );
    }

    #[test]
    fn violation_reduction_is_consistent_with_means() {
        let (knowledge, _sys, data) = setup(35);
        let model =
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let x4_mean = kert_linalg::stats::mean(&data.column(3));
        let outcome = paccel(
            model.network(),
            model.discretizer(),
            6,
            3,
            0.8 * x4_mean,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();
        let d_mean = outcome.prior_d.mean();
        // Reducing X4 should reduce the violation probability around the
        // centre of D's distribution.
        assert!(outcome.violation_reduction(d_mean) > -0.05);
    }
}
