//! Closing the autonomic loop when the model itself is degraded.
//!
//! A resilient rebuild ([`KertBn::build_continuous_resilient`]) can leave
//! some nodes on stale or prior CPDs — exactly the "failure in the act of
//! data reporting" situation dComp (§5.1) was designed for. This module
//! routes around the damage: for every degraded service, estimate its
//! elapsed-time posterior from the *healthy* observables (and the
//! end-to-end response time, which the management server always measures
//! itself), instead of trusting the degraded node's own CPD marginal.

use rand::Rng;

use crate::dcomp::{dcomp_all, DCompOutcome};
use crate::kert::KertBn;
use crate::posterior::McOptions;
use crate::Result;
use kert_agents::CpdSource;

/// A dComp-based compensation for one degraded service.
#[derive(Debug, Clone)]
pub struct Compensation {
    /// The degraded service node.
    pub service: usize,
    /// Why it needed compensation (the ladder rung its CPD came from).
    pub source: CpdSource,
    /// The dComp query: prior (the degraded CPD's marginal) vs posterior
    /// given the healthy observables.
    pub outcome: DCompOutcome,
}

impl Compensation {
    /// The compensated estimate of the service's elapsed time.
    pub fn estimate(&self) -> f64 {
        self.outcome.posterior.mean()
    }
}

/// Estimate every degraded service's elapsed time from healthy evidence.
///
/// `observed` holds `(node, current mean)` pairs — typically each service's
/// measured mean plus the response-time node. Pairs whose node is itself
/// degraded are filtered out before conditioning: a stale node's "evidence"
/// would be the very data that failed to arrive. Returns one
/// [`Compensation`] per degraded service (empty when the model is healthy).
pub fn compensate_degraded<R: Rng + ?Sized>(
    model: &KertBn,
    observed: &[(usize, f64)],
    mc: McOptions,
    rng: &mut R,
) -> Result<Vec<Compensation>> {
    let degraded = model.degraded_services();
    let healthy_obs: Vec<(usize, f64)> = observed
        .iter()
        .copied()
        .filter(|(node, _)| !degraded.contains(node))
        .collect();
    // All degraded services share the same healthy evidence, so the whole
    // sweep is one batched dComp: discrete models compile the junction
    // tree once and propagate the evidence once for every service.
    let outcomes = dcomp_all(model, &healthy_obs, &degraded, mc, rng)?;
    degraded
        .into_iter()
        .zip(outcomes)
        .map(|(service, outcome)| {
            let source = model
                .health()
                .nodes
                .iter()
                .find(|h| h.node == service)
                .map(|h| h.source)
                .unwrap_or(CpdSource::Prior);
            Ok(Compensation {
                service,
                source,
                outcome,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::{ContinuousKertOptions, KertBn, ResilientKertOptions};
    use kert_agents::{CpdCache, FaultyFleet};
    use kert_bayes::Dataset;
    use kert_sim::monitor::agents_from_edges;
    use kert_sim::{Dist, FaultInjector, FaultPlan, ServiceConfig, SimOptions, SimSystem, Trace};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rows: usize, seed: u64) -> (WorkflowKnowledge, Trace) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let means = [0.05, 0.05, 0.04, 0.35, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace)
    }

    #[test]
    fn healthy_model_needs_no_compensation() {
        let (knowledge, trace) = setup(300, 41);
        let model = KertBn::build_continuous(
            &knowledge,
            &trace.to_dataset(None),
            ContinuousKertOptions::default(),
        )
        .unwrap();
        assert!(!model.is_degraded());
        let mut rng = StdRng::seed_from_u64(1);
        let comps = compensate_degraded(
            &model,
            &[(0, 0.05), (6, 0.6)],
            McOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert!(comps.is_empty());
    }

    #[test]
    fn crashed_node_is_compensated_from_healthy_observables() {
        let (knowledge, trace) = setup(400, 42);
        let agents = agents_from_edges(6, &knowledge.upstream_edges);
        let windows = trace.windows(200);
        // Agent 3 (the dominant remote locator) crashed from the start —
        // its CPD lands on the prior rung.
        let mut plans = vec![FaultPlan::healthy(); 6];
        plans[3] = FaultPlan::crash_at(0);
        let injector = FaultInjector::new(9, plans).unwrap();
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let mut cache = CpdCache::new(6);
        let model = KertBn::build_continuous_resilient(
            &knowledge,
            &mut fleet,
            0,
            &mut cache,
            &ResilientKertOptions::default(),
        )
        .unwrap();
        assert_eq!(model.degraded_services(), vec![3]);

        // Condition on a test request: every healthy service plus D.
        let probe = trace.to_dataset(None);
        let row = probe.row(probe.rows() - 1);
        let observed: Vec<(usize, f64)> = (0..7).filter(|&c| c != 3).map(|c| (c, row[c])).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let comps = compensate_degraded(&model, &observed, McOptions::default(), &mut rng).unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].service, 3);
        assert_eq!(comps[0].source, CpdSource::Prior);
        // The prior rung knows nothing (mean 0); conditioning on healthy
        // observables must pull the estimate toward the actual value.
        assert!(
            comps[0].outcome.improvement_toward(row[3]) > 0.0,
            "prior mean {}, posterior mean {}, actual {}",
            comps[0].outcome.prior.mean(),
            comps[0].estimate(),
            row[3]
        );
    }

    #[test]
    fn degraded_evidence_is_filtered_out() {
        // Even if the caller passes evidence for the degraded node, the
        // compensation must not condition on it.
        let (knowledge, trace) = setup(400, 43);
        let agents = agents_from_edges(6, &knowledge.upstream_edges);
        let windows = trace.windows(200);
        let mut plans = vec![FaultPlan::healthy(); 6];
        plans[3] = FaultPlan::crash_at(0);
        let injector = FaultInjector::new(10, plans).unwrap();
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let mut cache = CpdCache::new(6);
        let model = KertBn::build_continuous_resilient(
            &knowledge,
            &mut fleet,
            0,
            &mut cache,
            &ResilientKertOptions::default(),
        )
        .unwrap();

        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let base = vec![(0usize, 0.05), (6usize, 0.6)];
        let mut with_degraded = base.clone();
        with_degraded.push((3, 99.0)); // absurd value for the dead node
        let a = compensate_degraded(&model, &base, McOptions::default(), &mut rng_a).unwrap();
        let b =
            compensate_degraded(&model, &with_degraded, McOptions::default(), &mut rng_b).unwrap();
        assert!((a[0].estimate() - b[0].estimate()).abs() < 1e-12);
    }

    #[test]
    fn compensation_needs_a_dataset_shaped_like_the_trace() {
        // Guard: the probe row indexing above relies on the X1..X6,D layout.
        let (_, trace) = setup(50, 44);
        let d: Dataset = trace.to_dataset(None);
        assert_eq!(d.columns(), 7);
    }
}
