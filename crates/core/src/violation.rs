//! Threshold-violation probabilities and the relative error ε (Eq. 5).
//!
//! "What is the probability that response time will exceed the
//! threshold(s)?" is the assessment autonomic software actually consumes;
//! §5.3 compares the model families on
//!
//! ```text
//! ε = |P_bn(D > h) − P_real(D > h)| / P_real(D > h)
//! ```
//!
//! computed across a sweep of thresholds (Figure 8).

use rand::Rng;

use crate::kert::KertBn;
use crate::posterior::{query_posterior, McOptions, Posterior};
use crate::{CoreError, Result};

/// A model-based violation assessment, annotated with the model's health.
///
/// Autonomic software acting on `probability` needs to know when the
/// number rests on stale or prior CPDs — a degraded assessment may warrant
/// wider safety margins or deferring irreversible actions.
#[derive(Debug, Clone)]
pub struct ViolationAssessment {
    /// The threshold `h` assessed.
    pub threshold: f64,
    /// Model posterior `P(D > h | evidence)`.
    pub probability: f64,
    /// True if any CPD in the model came from the stale or prior rung.
    pub degraded: bool,
    /// The degraded service nodes (empty when healthy).
    pub degraded_services: Vec<usize>,
}

/// Assess `P(D > threshold | evidence)` under `model`, flagging degraded
/// mode from the model's health report.
pub fn assess_violation<R: Rng + ?Sized>(
    model: &KertBn,
    evidence: &[(usize, f64)],
    threshold: f64,
    mc: McOptions,
    rng: &mut R,
) -> Result<ViolationAssessment> {
    let posterior = query_posterior(
        model.network(),
        model.discretizer(),
        evidence,
        model.d_node(),
        mc,
        rng,
    )?;
    Ok(ViolationAssessment {
        threshold,
        probability: posterior.exceedance(threshold),
        degraded: model.is_degraded(),
        degraded_services: model.degraded_services(),
    })
}

/// [`assess_violation`] across a whole threshold sweep with one posterior
/// query. Discrete models answer through a compiled junction tree
/// ([`crate::compiled::CompiledKert`]); continuous models run one
/// [`query_posterior`] and read every threshold's exceedance off it.
pub fn assess_violation_sweep<R: Rng + ?Sized>(
    model: &KertBn,
    evidence: &[(usize, f64)],
    thresholds: &[f64],
    mc: McOptions,
    rng: &mut R,
) -> Result<Vec<ViolationAssessment>> {
    let probs: Vec<f64> = if model.discretizer().is_some() {
        model.compile()?.violation_sweep(evidence, thresholds)?
    } else {
        let posterior = query_posterior(
            model.network(),
            model.discretizer(),
            evidence,
            model.d_node(),
            mc,
            rng,
        )?;
        thresholds
            .iter()
            .map(|&h| posterior.exceedance(h))
            .collect()
    };
    let degraded = model.is_degraded();
    let degraded_services = model.degraded_services();
    Ok(thresholds
        .iter()
        .zip(probs)
        .map(|(&threshold, probability)| ViolationAssessment {
            threshold,
            probability,
            degraded,
            degraded_services: degraded_services.clone(),
        })
        .collect())
}

/// `P(target > threshold | evidence)` with the inference engine pinned —
/// the oracle-comparable entry point the conformance crate drives each
/// fast path through. Unlike [`assess_violation`] it takes the network
/// parts directly, so it also serves models without a [`KertBn`] wrapper.
#[allow(clippy::too_many_arguments)]
pub fn violation_probability_via<R: Rng + ?Sized>(
    network: &kert_bayes::BayesianNetwork,
    discretizer: Option<&kert_bayes::discretize::Discretizer>,
    evidence: &[(usize, f64)],
    target: usize,
    threshold: f64,
    engine: crate::posterior::Engine,
    mc: McOptions,
    rng: &mut R,
) -> Result<f64> {
    let posterior = crate::posterior::query_posterior_via(
        network,
        discretizer,
        evidence,
        target,
        engine,
        mc,
        rng,
    )?;
    Ok(posterior.exceedance(threshold))
}

/// Empirical `P(D > h)` from observed response times.
pub fn empirical_violation_probability(response_times: &[f64], threshold: f64) -> f64 {
    if response_times.is_empty() {
        return 0.0;
    }
    let count = response_times.iter().filter(|&&d| d > threshold).count();
    count as f64 / response_times.len() as f64
}

/// Relative threshold-violation-probability error (Eq. 5). Fails when the
/// real probability is zero (the metric is undefined there; pick
/// thresholds inside the observed range).
pub fn relative_violation_error(p_model: f64, p_real: f64) -> Result<f64> {
    if p_real <= 0.0 {
        return Err(CoreError::BadRequest(
            "relative violation error undefined for P_real = 0".into(),
        ));
    }
    Ok((p_model - p_real).abs() / p_real)
}

/// ε across a threshold sweep: pairs each model posterior exceedance with
/// the empirical probability from `real_d`. Thresholds with zero empirical
/// mass are skipped (returned as `None`), mirroring Eq. 5's domain.
pub fn violation_error_sweep(
    posterior_d: &Posterior,
    real_d: &[f64],
    thresholds: &[f64],
) -> Vec<Option<f64>> {
    thresholds
        .iter()
        .map(|&h| {
            let p_real = empirical_violation_probability(real_d, h);
            if p_real <= 0.0 {
                None
            } else {
                Some((posterior_d.exceedance(h) - p_real).abs() / p_real)
            }
        })
        .collect()
}

/// Evenly spaced thresholds covering the central mass of observed response
/// times (from the `lo_q` to the `hi_q` quantile) — a reasonable default
/// for Figure 8's six-threshold sweep.
pub fn default_thresholds(real_d: &[f64], count: usize, lo_q: f64, hi_q: f64) -> Vec<f64> {
    assert!(count >= 1);
    let lo = kert_linalg::stats::quantile(real_d, lo_q);
    let hi = kert_linalg::stats::quantile(real_d, hi_q);
    if count == 1 {
        return vec![0.5 * (lo + hi)];
    }
    (0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_probability_counts_strict_exceedances() {
        let d = [1.0, 2.0, 3.0, 4.0];
        kert_conformance::assert_close!(empirical_violation_probability(&d, 2.0), 0.5);
        kert_conformance::assert_close!(empirical_violation_probability(&d, 0.0), 1.0);
        kert_conformance::assert_close!(empirical_violation_probability(&d, 4.0), 0.0, 1e-12);
        kert_conformance::assert_close!(empirical_violation_probability(&[], 1.0), 0.0, 1e-12);
    }

    #[test]
    fn relative_error_formula() {
        assert!((relative_violation_error(0.12, 0.10).unwrap() - 0.2).abs() < 1e-12);
        kert_conformance::assert_close!(relative_violation_error(0.10, 0.10).unwrap(), 0.0, 1e-12);
        assert!(relative_violation_error(0.1, 0.0).is_err());
    }

    #[test]
    fn sweep_skips_zero_mass_thresholds() {
        let post = Posterior::Gaussian {
            mean: 2.0,
            variance: 1.0,
        };
        let real = [1.0, 2.0, 3.0];
        let errors = violation_error_sweep(&post, &real, &[0.0, 2.5, 10.0]);
        assert!(errors[0].is_some());
        assert!(errors[1].is_some());
        assert!(errors[2].is_none()); // nothing exceeds 10
    }

    #[test]
    fn perfect_model_has_zero_error_on_matching_distribution() {
        // Discrete posterior exactly matching the empirical histogram.
        let real = [1.0, 1.0, 3.0, 3.0];
        let post = Posterior::Discrete {
            support: vec![1.0, 3.0],
            probs: vec![0.5, 0.5],
            bounds: None,
        };
        let errs = violation_error_sweep(&post, &real, &[2.0]);
        assert_eq!(errs[0], Some(0.0));
    }

    #[test]
    fn default_thresholds_span_quantiles() {
        let d: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let ths = default_thresholds(&d, 6, 0.1, 0.9);
        assert_eq!(ths.len(), 6);
        assert!((ths[0] - 10.0).abs() < 1e-9);
        assert!((ths[5] - 90.0).abs() < 1e-9);
        for w in ths.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(default_thresholds(&d, 1, 0.0, 1.0), vec![50.0]);
    }
}
