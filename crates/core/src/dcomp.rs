//! dComp — compensating for missing performance data (§5.1).
//!
//! In large distributed systems some components go unobserved: missing
//! instrumentation, failed reporting, or deliberately reduced monitoring
//! overhead. dComp estimates the *unobservable* service's elapsed-time
//! distribution by conditioning the KERT-BN on the current measurement
//! means of the *observable* services (and the response time, when
//! available): `p(Y | 𝕆 = E(o))`. The paper's Figure 6 shows the posterior
//! shifting from an obsolete prior toward the true value while narrowing —
//! both properties are asserted by this module's tests.

use kert_bayes::discretize::Discretizer;
use kert_bayes::BayesianNetwork;
use rand::Rng;

use crate::kert::KertBn;
use crate::posterior::{query_posterior, query_posterior_via, Engine, McOptions, Posterior};
use crate::Result;

/// The result of a dComp query: prior and posterior of the hidden node.
#[derive(Debug, Clone)]
pub struct DCompOutcome {
    /// The unobservable node queried.
    pub target: usize,
    /// Marginal (prior) distribution of the target under the model.
    pub prior: Posterior,
    /// Posterior given the observations.
    pub posterior: Posterior,
}

impl DCompOutcome {
    /// How far the posterior mean moved from the prior mean toward
    /// `actual` — positive values mean the observations improved the
    /// estimate (Figure 6's "shifted toward the actual elapsed time").
    pub fn improvement_toward(&self, actual: f64) -> f64 {
        (self.prior.mean() - actual).abs() - (self.posterior.mean() - actual).abs()
    }

    /// Whether conditioning sharpened the estimate (Figure 6's
    /// "more deterministic and precise with a narrower shape").
    pub fn narrowed(&self) -> bool {
        self.posterior.variance() < self.prior.variance()
    }
}

/// Run dComp: posterior of `target` given observed measurement means.
///
/// `observed` holds `(node, current mean)` pairs — typically every
/// *observable* service plus the end-to-end response time node. Raw values
/// are passed; discrete models bin them internally.
pub fn dcomp<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    discretizer: Option<&Discretizer>,
    observed: &[(usize, f64)],
    target: usize,
    mc: McOptions,
    rng: &mut R,
) -> Result<DCompOutcome> {
    let prior = query_posterior(network, discretizer, &[], target, mc, rng)?;
    let posterior = query_posterior(network, discretizer, observed, target, mc, rng)?;
    Ok(DCompOutcome {
        target,
        prior,
        posterior,
    })
}

/// Batched dComp: prior and posterior of every `target` under one shared
/// evidence set. Discrete models compile the network into a junction tree
/// once ([`crate::compiled::CompiledKert`]) and answer every query off the
/// calibrated tree; continuous models fall back to one [`dcomp`] per
/// target, preserving that path's semantics (and RNG stream) exactly.
pub fn dcomp_all<R: Rng + ?Sized>(
    model: &KertBn,
    observed: &[(usize, f64)],
    targets: &[usize],
    mc: McOptions,
    rng: &mut R,
) -> Result<Vec<DCompOutcome>> {
    if model.discretizer().is_some() {
        return model.compile()?.dcomp_all(observed, targets);
    }
    targets
        .iter()
        .map(|&target| {
            dcomp(
                model.network(),
                model.discretizer(),
                observed,
                target,
                mc,
                rng,
            )
        })
        .collect()
}

/// [`dcomp`] with the inference engine pinned — the oracle-comparable
/// entry point the conformance crate drives each fast path through.
pub fn dcomp_via<R: Rng + ?Sized>(
    network: &BayesianNetwork,
    discretizer: Option<&Discretizer>,
    observed: &[(usize, f64)],
    target: usize,
    engine: Engine,
    mc: McOptions,
    rng: &mut R,
) -> Result<DCompOutcome> {
    let prior = query_posterior_via(network, discretizer, &[], target, engine, mc, rng)?;
    let posterior = query_posterior_via(network, discretizer, observed, target, engine, mc, rng)?;
    Ok(DCompOutcome {
        target,
        prior,
        posterior,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::{DiscreteKertOptions, KertBn};
    use kert_bayes::Dataset;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rows: usize, seed: u64) -> (WorkflowKnowledge, Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        // Dominant remote path (as in the paper's test-bed, where the
        // remote hospital link is the slow leg): with the critical path
        // running through X4, observing D is informative about X4.
        let means = [0.05, 0.05, 0.04, 0.35, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    #[test]
    fn posterior_moves_toward_the_actual_value_and_narrows() {
        // The Figure-6 experiment: hide X4 (image_locator_remote, node 3),
        // observe everything else at a particular request's values, and
        // check the posterior against that request's actual X4.
        let (knowledge, data) = setup(1_000, 21);
        let (train, probe) = data.split_at(900);
        let model =
            KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();

        let target = 3; // X4 in paper numbering
        let mut prior_abs_err = 0.0;
        let mut post_abs_err = 0.0;
        let mut narrowings = 0usize;
        let mut rng = StdRng::seed_from_u64(7);
        let n_probe = 20.min(probe.rows());
        for r in 0..n_probe {
            let row = probe.row(r);
            let observed: Vec<(usize, f64)> = (0..7)
                .filter(|&c| c != target)
                .map(|c| (c, row[c]))
                .collect();
            let outcome = dcomp(
                model.network(),
                model.discretizer(),
                &observed,
                target,
                McOptions::default(),
                &mut rng,
            )
            .unwrap();
            prior_abs_err += (outcome.prior.mean() - row[target]).abs();
            post_abs_err += (outcome.posterior.mean() - row[target]).abs();
            if outcome.narrowed() {
                narrowings += 1;
            }
        }
        // Aggregate over probes: the posterior must track the actual value
        // better than the prior, and usually be sharper (Figure 6's
        // "shifted toward the actual value", "narrower shape").
        assert!(
            post_abs_err < prior_abs_err,
            "posterior error {post_abs_err} vs prior error {prior_abs_err}"
        );
        assert!(narrowings * 2 > n_probe, "{narrowings}/{n_probe}");
    }

    #[test]
    fn prior_equals_posterior_without_observations() {
        let (knowledge, data) = setup(400, 22);
        let model =
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = dcomp(
            model.network(),
            model.discretizer(),
            &[],
            2,
            McOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert!((outcome.prior.mean() - outcome.posterior.mean()).abs() < 1e-9);
    }

    #[test]
    fn improvement_metric_signs() {
        let out = DCompOutcome {
            target: 0,
            prior: Posterior::Gaussian {
                mean: 0.0,
                variance: 4.0,
            },
            posterior: Posterior::Gaussian {
                mean: 0.9,
                variance: 1.0,
            },
        };
        // Actual value 1.0: posterior is closer → positive improvement.
        assert!(out.improvement_toward(1.0) > 0.0);
        // Actual value −1.0: posterior moved away → negative.
        assert!(out.improvement_toward(-1.0) < 0.0);
        assert!(out.narrowed());
    }
}
