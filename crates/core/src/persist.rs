//! Model persistence.
//!
//! The paper's third contribution bullet: "an implementation … delivered
//! to operate under a flexible model (re)construction scheme and can be
//! integrated into autonomic solutions with minimal effort". Integration
//! needs hand-off: the management server builds a model, serializes it,
//! and autonomic components (provisioners, problem localizers) load and
//! query it without access to the training data. This module is that
//! hand-off: a versioned JSON envelope for either model family.

use kert_bayes::discretize::Discretizer;
use kert_bayes::BayesianNetwork;
use serde::{Deserialize, Serialize};

use crate::kert::KertBn;
use crate::nrt::NrtBn;
use crate::{CoreError, Result};

/// Current on-disk format version; bumped on breaking changes.
pub const FORMAT_VERSION: u32 = 1;

/// Which builder produced the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Knowledge-enhanced (structure + response CPD from the workflow).
    Kert,
    /// Learned from scratch (K2 + full parameter learning).
    Nrt,
}

/// The serialized envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Envelope format version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Model family.
    pub kind: ModelKind,
    /// Number of service nodes.
    pub n_services: usize,
    /// Index of the end-to-end metric node.
    pub d_node: usize,
    /// The network itself (structure + CPDs).
    pub network: BayesianNetwork,
    /// Present for discrete models.
    pub discretizer: Option<Discretizer>,
}

impl SavedModel {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| CoreError::BadRequest(format!("serialize: {e}")))
    }

    /// Deserialize from a JSON string, checking the format version.
    pub fn from_json(json: &str) -> Result<Self> {
        let saved: SavedModel = serde_json::from_str(json)
            .map_err(|e| CoreError::BadRequest(format!("deserialize: {e}")))?;
        if saved.format_version != FORMAT_VERSION {
            return Err(CoreError::BadRequest(format!(
                "saved model has format version {}, this build reads {FORMAT_VERSION}",
                saved.format_version
            )));
        }
        if saved.d_node >= saved.network.len() {
            return Err(CoreError::BadRequest(format!(
                "saved model d_node {} out of range for {} nodes",
                saved.d_node,
                saved.network.len()
            )));
        }
        Ok(saved)
    }
}

impl KertBn {
    /// Snapshot this model into the persistence envelope. The build report
    /// (timings) is deliberately not persisted — it describes the build
    /// machine, not the model.
    pub fn to_saved(&self) -> SavedModel {
        SavedModel {
            format_version: FORMAT_VERSION,
            kind: ModelKind::Kert,
            n_services: self.n_services(),
            d_node: self.d_node(),
            network: self.network().clone(),
            discretizer: self.discretizer().cloned(),
        }
    }

    /// Rehydrate from an envelope (kind must be [`ModelKind::Kert`]).
    pub fn from_saved(saved: SavedModel) -> Result<Self> {
        if saved.kind != ModelKind::Kert {
            return Err(CoreError::BadRequest(
                "envelope holds an NRT-BN; use NrtBn::from_saved".into(),
            ));
        }
        Ok(KertBn::from_parts(
            saved.network,
            saved.n_services,
            saved.d_node,
            saved.discretizer,
        ))
    }
}

impl NrtBn {
    /// Snapshot this model into the persistence envelope.
    pub fn to_saved(&self) -> SavedModel {
        SavedModel {
            format_version: FORMAT_VERSION,
            kind: ModelKind::Nrt,
            n_services: self.network().len().saturating_sub(1),
            d_node: self.d_node(),
            network: self.network().clone(),
            discretizer: self.discretizer().cloned(),
        }
    }

    /// Rehydrate from an envelope (kind must be [`ModelKind::Nrt`]).
    pub fn from_saved(saved: SavedModel) -> Result<Self> {
        if saved.kind != ModelKind::Nrt {
            return Err(CoreError::BadRequest(
                "envelope holds a KERT-BN; use KertBn::from_saved".into(),
            ));
        }
        Ok(NrtBn::from_parts(
            saved.network,
            saved.d_node,
            saved.discretizer,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::DiscreteKertOptions;
    use crate::nrt::NrtOptions;
    use crate::posterior::{query_posterior, McOptions};
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_models() -> (KertBn, NrtBn, kert_bayes::Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let stations = (0..6)
            .map(|_| ServiceConfig::single(Dist::Erlang { k: 4, mean: 0.05 }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.4 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(60);
        let data = sys.run(500, &mut rng).to_dataset(None);
        let kert =
            KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap();
        let mut nrt_rng = StdRng::seed_from_u64(61);
        let nrt = NrtBn::build_continuous(&data, NrtOptions::default(), &mut nrt_rng).unwrap();
        (kert, nrt, data)
    }

    #[test]
    fn kert_roundtrip_preserves_queries() {
        let (kert, _, _) = build_models();
        let json = kert.to_saved().to_json().unwrap();
        let loaded = KertBn::from_saved(SavedModel::from_json(&json).unwrap()).unwrap();
        assert_eq!(loaded.d_node(), kert.d_node());
        assert_eq!(loaded.n_services(), kert.n_services());

        // Same posterior before and after the round trip.
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let a = query_posterior(
            kert.network(),
            kert.discretizer(),
            &[(3, 0.2)],
            kert.d_node(),
            McOptions::default(),
            &mut rng1,
        )
        .unwrap();
        let b = query_posterior(
            loaded.network(),
            loaded.discretizer(),
            &[(3, 0.2)],
            loaded.d_node(),
            McOptions::default(),
            &mut rng2,
        )
        .unwrap();
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-12);
    }

    #[test]
    fn nrt_roundtrip_preserves_accuracy() {
        let (_, nrt, data) = build_models();
        let json = nrt.to_saved().to_json().unwrap();
        let loaded = NrtBn::from_saved(SavedModel::from_json(&json).unwrap()).unwrap();
        let a = nrt.accuracy(&data).unwrap();
        let b = loaded.accuracy(&data).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let (kert, nrt, _) = build_models();
        let kert_env = kert.to_saved();
        let nrt_env = nrt.to_saved();
        assert!(NrtBn::from_saved(kert_env).is_err());
        assert!(KertBn::from_saved(nrt_env).is_err());
    }

    #[test]
    fn version_and_shape_are_validated() {
        let (kert, _, _) = build_models();
        let mut saved = kert.to_saved();
        saved.format_version = 99;
        let json = serde_json::to_string(&saved).unwrap();
        assert!(SavedModel::from_json(&json).is_err());

        let mut bad_d = kert.to_saved();
        bad_d.d_node = 99;
        let json = serde_json::to_string(&bad_d).unwrap();
        assert!(SavedModel::from_json(&json).is_err());

        assert!(SavedModel::from_json("not json").is_err());
    }
}
