//! Shared-core serving sessions: one calibrated tree, many clients.
//!
//! [`CompiledKert`](crate::compiled::CompiledKert) borrows its model and
//! owns a single evidence state — the right shape for a control loop that
//! asks batched questions of its own model. A serving daemon inverts the
//! ownership: the model outlives any caller, queries arrive from many
//! threads at once, and every client carries *different* evidence.
//! [`SharedKert`] is that split, made explicit:
//!
//! * the expensive parts — the model and the calibrated junction tree —
//!   are compiled **once** and shared immutably (`Arc`), never locked on
//!   the query path;
//! * the cheap part — per-client evidence deltas and message caches — is
//!   a [`Session`] holding a pooled [`JtState`], checked out per request
//!   (or held across requests) and recycled on drop.
//!
//! Sessions produce results **bitwise identical** to [`KertBn::compile`]'s
//! engine: both route through the same pin binning, the same evidence
//! entry order, and the same propagation kernels. That identity is what
//! lets a conformance harness gate a network daemon against direct
//! in-process calls.

use std::sync::{Arc, Mutex};

use kert_bayes::compile::{JtState, JunctionTree};
use kert_bayes::discretize::Discretizer;

use crate::compiled::{apply_pins, bin_evidence};
use crate::dcomp::DCompOutcome;
use crate::kert::KertBn;
use crate::paccel::PAccelOutcome;
use crate::persist::SavedModel;
use crate::posterior::{check_query, discrete_posterior, Posterior};
use crate::{CoreError, Result};

static OBS_SESSIONS: kert_obs::Counter = kert_obs::Counter::new("core.serve.sessions");
static OBS_SESSION_QUERIES: kert_obs::Counter = kert_obs::Counter::new("core.serve.queries");

/// Default ceiling on parked [`JtState`]s. States above the cap are
/// dropped on session return instead of parked; the cap only bounds idle
/// memory, never concurrency — `session()` always succeeds.
const DEFAULT_POOL_CAP: usize = 64;

/// An owned, thread-safe serving engine: a discrete [`KertBn`] compiled
/// once into an `Arc`-shared calibrated [`JunctionTree`], plus a pool of
/// per-session propagation states.
///
/// `&SharedKert` is `Sync`: any number of threads may hold [`Session`]s
/// concurrently. The only synchronization on the query path is a
/// short-lived mutex around the state pool at checkout/return; evidence
/// entry and message propagation run lock-free on the session's own
/// state against the immutable shared tree.
pub struct SharedKert {
    model: KertBn,
    tree: Arc<JunctionTree>,
    pool: Mutex<Vec<JtState>>,
    pool_cap: usize,
}

impl SharedKert {
    /// Compile `model` for shared serving. Requires a discrete model,
    /// like [`KertBn::compile`].
    pub fn new(model: KertBn) -> Result<Self> {
        Self::with_pool_cap(model, DEFAULT_POOL_CAP)
    }

    /// [`SharedKert::new`] with an explicit idle-state pool ceiling.
    pub fn with_pool_cap(model: KertBn, pool_cap: usize) -> Result<Self> {
        if model.discretizer().is_none() {
            return Err(CoreError::BadRequest(
                "junction-tree compilation requires a discrete model".into(),
            ));
        }
        let tree = Arc::new(JunctionTree::compile(model.network())?);
        Ok(SharedKert {
            model,
            tree,
            pool: Mutex::new(Vec::new()),
            pool_cap: pool_cap.max(1),
        })
    }

    /// Rehydrate a persisted model and compile it for serving — the
    /// daemon startup path (`kertctl build` → `kertctl serve`).
    pub fn from_saved(saved: SavedModel) -> Result<Self> {
        Self::new(KertBn::from_saved(saved)?)
    }

    /// The model this engine serves.
    pub fn model(&self) -> &KertBn {
        &self.model
    }

    /// A shared handle to the calibrated tree (same contract as
    /// [`crate::compiled::CompiledKert::share_tree`]).
    pub fn share_tree(&self) -> Arc<JunctionTree> {
        Arc::clone(&self.tree)
    }

    /// Induced width of the compiled tree.
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    /// Idle states currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().expect("state pool poisoned").len()
    }

    /// Check a session out of the pool (or mint a fresh state when the
    /// pool is empty). The session starts with **no evidence** entered:
    /// recycled states are cleared on checkout, so a session never
    /// observes a previous client's pins.
    pub fn session(&self) -> Session<'_> {
        OBS_SESSIONS.incr();
        let parked = self.pool.lock().expect("state pool poisoned").pop();
        let mut st = parked.unwrap_or_else(|| self.tree.new_state());
        // Clearing on an already-clean state is a no-op; on a recycled
        // state it retracts leftover pins without touching still-valid
        // message caches for the prior-evidence case.
        self.tree
            .clear_evidence(&mut st)
            .expect("clear_evidence on a pooled state cannot fail");
        Session {
            core: self,
            st: Some(st),
        }
    }

    fn disc(&self) -> &Discretizer {
        self.model.discretizer().expect("checked at construction")
    }

    fn return_state(&self, st: JtState) {
        let mut pool = self.pool.lock().expect("state pool poisoned");
        if pool.len() < self.pool_cap {
            pool.push(st);
        }
    }
}

/// One client's cheap, mutable slice of a [`SharedKert`]: a pooled
/// propagation state plus the evidence currently entered on it. Dropping
/// the session recycles the state into the pool.
///
/// All methods take `&mut self`; concurrency comes from many sessions,
/// not from sharing one.
pub struct Session<'k> {
    core: &'k SharedKert,
    /// `Some` until drop; `Option` only so `Drop` can move the state out.
    st: Option<JtState>,
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if let Some(st) = self.st.take() {
            self.core.return_state(st);
        }
    }
}

impl Session<'_> {
    fn st(&mut self) -> &mut JtState {
        self.st.as_mut().expect("state present until drop")
    }

    /// The engine this session belongs to.
    pub fn core(&self) -> &SharedKert {
        self.core
    }

    /// Replace all evidence with `evidence` (raw measurement values,
    /// binned through the model's discretizer — same binning and entry
    /// order as [`crate::compiled::CompiledKert::set_evidence`]).
    pub fn set_evidence(&mut self, evidence: &[(usize, f64)]) -> Result<()> {
        let _span = kert_obs::span("serve.evidence");
        let core = self.core;
        let pins = bin_evidence(&core.model, evidence)?;
        apply_pins(&core.tree, self.st(), &pins)
    }

    /// Posterior of `target` under the evidence currently entered.
    pub fn posterior(&mut self, target: usize) -> Result<Posterior> {
        OBS_SESSION_QUERIES.incr();
        let core = self.core;
        if target >= core.model.network().len() {
            return Err(CoreError::BadRequest(format!("no node {target}")));
        }
        let probs = core.tree.marginal(self.st(), target)?;
        Ok(discrete_posterior(core.disc(), target, probs))
    }

    /// The coalescing primitive: enter `evidence` **once**, then answer
    /// every target with a single marginal read against the now-cached
    /// messages. `k` targets cost one evidence propagation plus `k`
    /// collect passes — this is what a serving daemon's micro-batcher
    /// amortizes when it folds concurrent single-target requests that
    /// share an evidence set into one group.
    pub fn posterior_group(
        &mut self,
        evidence: &[(usize, f64)],
        targets: &[usize],
    ) -> Result<Vec<Posterior>> {
        for &target in targets {
            check_query(self.core.model.network(), evidence, target)?;
        }
        self.set_evidence(evidence)?;
        targets.iter().map(|&t| self.posterior(t)).collect()
    }

    /// dComp for every target given one shared evidence set: prior and
    /// posterior per target, with the evidence propagated once for the
    /// whole group. Sequentially identical to
    /// [`crate::compiled::CompiledKert::dcomp_all`] with one worker.
    pub fn dcomp(
        &mut self,
        observed: &[(usize, f64)],
        targets: &[usize],
    ) -> Result<Vec<DCompOutcome>> {
        for &target in targets {
            check_query(self.core.model.network(), observed, target)?;
        }
        let priors = self.posterior_group(&[], targets)?;
        let posteriors = self.posterior_group(observed, targets)?;
        Ok(targets
            .iter()
            .zip(priors)
            .zip(posteriors)
            .map(|((&target, prior), posterior)| DCompOutcome {
                target,
                prior,
                posterior,
            })
            .collect())
    }

    /// pAccel projections for each `(service, predicted_elapsed)`
    /// candidate against the shared prior — the sequential path of
    /// [`crate::compiled::CompiledKert::paccel_batch`].
    pub fn paccel(&mut self, candidates: &[(usize, f64)]) -> Result<Vec<PAccelOutcome>> {
        let core = self.core;
        let d_node = core.model.d_node();
        for &(service, value) in candidates {
            check_query(core.model.network(), &[(service, value)], d_node)?;
        }
        self.set_evidence(&[])?;
        let prior_d = self.posterior(d_node)?;
        let degraded = core.model.is_degraded();
        let disc = core.disc();
        let st = self.st.as_mut().expect("state present until drop");
        candidates
            .iter()
            .map(|&(service, predicted_elapsed)| {
                OBS_SESSION_QUERIES.incr();
                let s = disc.column(service).state(predicted_elapsed);
                core.tree.set_evidence(st, service, s)?;
                let probs = core.tree.marginal(st, d_node)?;
                core.tree.retract_evidence(st, service)?;
                Ok(PAccelOutcome {
                    service,
                    predicted_elapsed,
                    prior_d: prior_d.clone(),
                    projected_d: discrete_posterior(disc, d_node, probs),
                    degraded,
                })
            })
            .collect()
    }

    /// `P(D > h | evidence)` for every threshold: one posterior, many
    /// exceedance reads — identical to
    /// [`crate::compiled::CompiledKert::violation_sweep`].
    pub fn violation_sweep(
        &mut self,
        evidence: &[(usize, f64)],
        thresholds: &[f64],
    ) -> Result<Vec<f64>> {
        let d_node = self.core.model.d_node();
        check_query(self.core.model.network(), evidence, d_node)?;
        self.set_evidence(evidence)?;
        let posterior = self.posterior(d_node)?;
        Ok(thresholds
            .iter()
            .map(|&h| posterior.exceedance(h))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::{ContinuousKertOptions, DiscreteKertOptions};
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap, WorkflowKnowledge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rows: usize, seed: u64) -> (WorkflowKnowledge, kert_bayes::Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let means = [0.05, 0.05, 0.04, 0.35, 0.04, 0.10];
        let stations = means
            .iter()
            .map(|&m| ServiceConfig::single(Dist::Erlang { k: 4, mean: m }))
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.5 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    fn discrete_model() -> KertBn {
        let (knowledge, data) = setup(600, 61);
        KertBn::build_discrete(&knowledge, &data, DiscreteKertOptions::default()).unwrap()
    }

    fn dbits(p: &Posterior) -> Vec<u64> {
        match p {
            Posterior::Discrete { probs, .. } => probs.iter().map(|v| v.to_bits()).collect(),
            other => panic!("expected a discrete posterior, got {other:?}"),
        }
    }

    #[test]
    fn session_queries_match_compiled_engine_bitwise() {
        let model = discrete_model();
        let shared = SharedKert::new(discrete_model()).unwrap();
        let mut compiled = model.compile().unwrap();
        compiled.set_workers(1);

        let evidence = vec![(0usize, 0.05), (1, 0.06), (6, 0.6)];
        let targets = [2usize, 3, 4];

        // posterior
        let mut session = shared.session();
        session.set_evidence(&evidence).unwrap();
        let a = session.posterior(3).unwrap();
        compiled.set_evidence(&evidence).unwrap();
        let b = compiled.posterior(3).unwrap();
        assert_eq!(dbits(&a), dbits(&b));

        // dcomp group vs dcomp_all
        let da = session.dcomp(&evidence, &targets).unwrap();
        let db = compiled.dcomp_all(&evidence, &targets).unwrap();
        for (x, y) in da.iter().zip(&db) {
            assert_eq!(x.target, y.target);
            assert_eq!(dbits(&x.prior), dbits(&y.prior));
            assert_eq!(dbits(&x.posterior), dbits(&y.posterior));
        }

        // paccel
        let candidates = vec![(3usize, 0.3), (0, 0.04), (3, 0.2)];
        let pa = session.paccel(&candidates).unwrap();
        let pb = compiled.paccel_batch(&candidates).unwrap();
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(dbits(&x.projected_d), dbits(&y.projected_d));
            assert_eq!(dbits(&x.prior_d), dbits(&y.prior_d));
        }

        // violation sweep
        let thresholds = [0.4, 0.6, 0.8];
        let va = session
            .violation_sweep(&evidence[..1], &thresholds)
            .unwrap();
        let vb = compiled
            .violation_sweep(&evidence[..1], &thresholds)
            .unwrap();
        assert_eq!(
            va.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vb.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Satellite gate: N concurrent sessions over one shared tree, each
    /// with distinct evidence, each bitwise-equal to a fresh
    /// single-threaded CompiledKert run of the same query.
    #[test]
    fn concurrent_sessions_match_fresh_single_threaded_runs_bitwise() {
        let shared = SharedKert::new(discrete_model()).unwrap();
        let model = discrete_model();

        // Distinct evidence per simulated client: different nodes and
        // values so no two sessions pin the same configuration.
        let clients: Vec<(Vec<(usize, f64)>, usize)> = vec![
            (vec![(0, 0.05)], 6),
            (vec![(1, 0.06), (0, 0.04)], 3),
            (vec![(3, 0.40)], 6),
            (vec![(4, 0.05), (6, 0.60)], 2),
            (vec![], 6),
            (vec![(2, 0.04), (3, 0.30)], 5),
            (vec![(6, 0.80)], 4),
            (vec![(0, 0.06), (1, 0.05), (2, 0.04)], 6),
        ];

        let concurrent: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter()
                .map(|(evidence, target)| {
                    let shared = &shared;
                    s.spawn(move || {
                        let mut session = shared.session();
                        session.set_evidence(evidence).unwrap();
                        dbits(&session.posterior(*target).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for ((evidence, target), bits) in clients.iter().zip(&concurrent) {
            let mut fresh = model.compile().unwrap();
            fresh.set_workers(1);
            fresh.set_evidence(evidence).unwrap();
            let expect = dbits(&fresh.posterior(*target).unwrap());
            assert_eq!(
                &expect, bits,
                "session diverged from fresh engine for evidence {evidence:?}"
            );
        }
    }

    #[test]
    fn sessions_recycle_states_and_never_leak_evidence() {
        let shared = SharedKert::with_pool_cap(discrete_model(), 2).unwrap();
        assert_eq!(shared.pooled(), 0);
        {
            let mut a = shared.session();
            let mut b = shared.session();
            let mut c = shared.session();
            a.set_evidence(&[(0, 0.05)]).unwrap();
            b.set_evidence(&[(3, 0.4)]).unwrap();
            c.set_evidence(&[(6, 0.7)]).unwrap();
        }
        // Cap 2: one of the three states was dropped, two parked.
        assert_eq!(shared.pooled(), 2);

        // A recycled state starts clean: its posterior equals the prior
        // from a never-evidenced engine built on the same data.
        let mut prior_session = shared.session();
        let prior = prior_session.posterior(6).unwrap();
        let fresh_shared = SharedKert::new(discrete_model()).unwrap();
        let mut fresh_session = fresh_shared.session();
        let fresh = fresh_session.posterior(6).unwrap();
        assert_eq!(dbits(&fresh), dbits(&prior));
    }

    #[test]
    fn continuous_models_are_rejected() {
        let (knowledge, data) = setup(300, 62);
        let model =
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap();
        assert!(matches!(
            SharedKert::new(model),
            Err(CoreError::BadRequest(_))
        ));
    }

    #[test]
    fn saved_model_roundtrips_into_serving() {
        let model = discrete_model();
        let saved = model.to_saved();
        let json = saved.to_json().unwrap();
        let shared = SharedKert::from_saved(SavedModel::from_json(&json).unwrap()).unwrap();
        let mut session = shared.session();
        let a = session.posterior(shared.model().d_node()).unwrap();
        let mut compiled = model.compile().unwrap();
        let b = compiled.posterior(model.d_node()).unwrap();
        assert_eq!(dbits(&a), dbits(&b));
    }
}
