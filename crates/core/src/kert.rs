//! KERT-BN construction (§3 of the paper).
//!
//! The build recipe that gives the model its cost profile:
//!
//! 1. **Structure — from knowledge, not data.** Service nodes get the
//!    immediate-upstream edges of the workflow; the response-time node `D`
//!    depends on the services through the workflow-derived function. Cost:
//!    microseconds, independent of training size (the flat curves of
//!    Figures 3–4).
//! 2. **`P(D | 𝕏)` — generated, not learned.** The deterministic-with-leak
//!    CPD of Eq. 4; its would-be learning cost is exponential in `n`.
//! 3. **`P(Xᵢ | Φ(Xᵢ))` — learned, optionally decentralized.** The only
//!    data-dependent phase; per-node and embarrassingly parallel (§3.4,
//!    Figure 5).
//!
//! Both model families of the paper are supported: continuous
//! (linear-Gaussian CPDs, §4) and discrete (binned CPTs, §5).

use std::time::Instant;

use kert_agents::runtime::{
    centralized_learn, decentralized_learn, resilient_decentralized_learn, slice_local_datasets,
    CpdCache, LearnOptions, ResilientOptions,
};
use kert_agents::{ModelHealth, ReportSource};
use kert_bayes::cpd::{Cpd, DetNoise, DeterministicCpd};
use kert_bayes::discretize::{BinStrategy, Discretizer};
use kert_bayes::learn::mle::ParamOptions;
use kert_bayes::{BayesianNetwork, Dag, Dataset, Variable};
use kert_workflow::WorkflowKnowledge;

use crate::report::BuildReport;
use crate::{CoreError, Result};

/// How the per-service CPDs are learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamLearning {
    /// Sequentially on the management server; cost = Σ per-node times.
    Centralized,
    /// Concurrently on the monitoring agents; cost = max per-node time.
    Decentralized {
        /// Worker threads emulating the agent fleet (`None` = all cores).
        workers: Option<usize>,
    },
}

/// Options for continuous (linear-Gaussian) KERT-BNs.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousKertOptions {
    /// Parameter-learning placement.
    pub learning: ParamLearning,
    /// Measurement-noise σ of the deterministic response CPD. `None`
    /// estimates it from training residuals `d − f(x)` (the "leak" of
    /// Eq. 4 realized as Gaussian noise; §4 uses `l = 0`, i.e. residuals
    /// at the numerical floor).
    pub noise_sigma: Option<f64>,
    /// Smoothing options for the learned CPDs.
    pub params: ParamOptions,
}

impl Default for ContinuousKertOptions {
    fn default() -> Self {
        ContinuousKertOptions {
            learning: ParamLearning::Centralized,
            noise_sigma: None,
            params: ParamOptions::default(),
        }
    }
}

/// Options for discrete KERT-BNs.
#[derive(Debug, Clone, Copy)]
pub struct DiscreteKertOptions {
    /// States per variable.
    pub bins: usize,
    /// Binning strategy.
    pub strategy: BinStrategy,
    /// Leak probability `l` of Eq. 4.
    pub leak: f64,
    /// Parameter-learning placement.
    pub learning: ParamLearning,
    /// Smoothing options for the learned CPTs.
    pub params: ParamOptions,
}

impl Default for DiscreteKertOptions {
    fn default() -> Self {
        DiscreteKertOptions {
            bins: 5,
            strategy: BinStrategy::EqualFrequency,
            leak: 0.05,
            learning: ParamLearning::Centralized,
            params: ParamOptions::default(),
        }
    }
}

/// Options for the fault-tolerant continuous build
/// ([`KertBn::build_continuous_resilient`]).
#[derive(Debug, Clone, Copy)]
pub struct ResilientKertOptions {
    /// Collection/fallback options for the self-healing learner.
    pub resilient: ResilientOptions,
    /// Measurement-noise σ of the Eq.-4 response CPD. Under faults the
    /// server cannot re-estimate residuals from a clean joint dataset, so
    /// σ is configured — typically carried over from a healthy bootstrap
    /// build ([`KertBn::noise_sigma`]).
    pub noise_sigma: f64,
}

impl Default for ResilientKertOptions {
    fn default() -> Self {
        ResilientKertOptions {
            resilient: ResilientOptions::default(),
            noise_sigma: 1e-3,
        }
    }
}

/// A constructed KERT-BN: the network plus everything needed to query it.
#[derive(Debug)]
pub struct KertBn {
    network: BayesianNetwork,
    n_services: usize,
    d_node: usize,
    /// Present for discrete models: maps raw measurements ↔ states.
    discretizer: Option<Discretizer>,
    report: BuildReport,
    /// Per-node CPD provenance; all-fresh for conventional builds.
    health: ModelHealth,
}

impl KertBn {
    /// Build a continuous KERT-BN from workflow knowledge and a training
    /// dataset with columns `X₁…X_n, D` (the `kert_sim::Trace` layout).
    pub fn build_continuous(
        knowledge: &WorkflowKnowledge,
        train: &Dataset,
        options: ContinuousKertOptions,
    ) -> Result<Self> {
        let expr = knowledge.response_expr.clone();
        Self::build_continuous_impl(knowledge, &expr, false, train, options)
    }

    /// Build a continuous KERT-BN whose end-to-end node follows a custom
    /// metric expression — e.g. the timeout-count metric of §3.3, where
    /// `f` is [`WorkflowKnowledge::count_expr`] (`D = Σ Xᵢ`) and the data
    /// columns hold per-service counts.
    pub fn build_continuous_metric(
        knowledge: &WorkflowKnowledge,
        metric_expr: &kert_bayes::Expr,
        train: &Dataset,
        options: ContinuousKertOptions,
    ) -> Result<Self> {
        Self::build_continuous_impl(knowledge, metric_expr, false, train, options)
    }

    /// Build a continuous KERT-BN including the resource-sharing nodes of
    /// §3.2: the dataset must carry one utilization column per resource in
    /// [`WorkflowKnowledge::resources`] order, between the service columns
    /// and `D` (the `kert_sim::SimSystem::with_hosts` trace layout). Each
    /// resource becomes a network node whose parents are the services
    /// sharing it.
    pub fn build_continuous_with_resources(
        knowledge: &WorkflowKnowledge,
        train: &Dataset,
        options: ContinuousKertOptions,
    ) -> Result<Self> {
        let expr = knowledge.response_expr.clone();
        Self::build_continuous_impl(knowledge, &expr, true, train, options)
    }

    fn build_continuous_impl(
        knowledge: &WorkflowKnowledge,
        metric_expr: &kert_bayes::Expr,
        with_resources: bool,
        train: &Dataset,
        options: ContinuousKertOptions,
    ) -> Result<Self> {
        let n = knowledge.n_services;
        let k = if with_resources {
            knowledge.resources.len()
        } else {
            0
        };
        check_dataset(train, n, k)?;
        if with_resources {
            check_resource_columns(knowledge, train)?;
        }
        let learned_nodes = n + k;
        let d_node = learned_nodes;

        // Phase 1: structure from knowledge.
        let structure_start = Instant::now();
        let dag = knowledge_dag(knowledge, metric_expr, with_resources)?;
        let variables: Vec<Variable> = (0..learned_nodes)
            .map(|i| Variable::continuous(train.names()[i].clone()))
            .chain(std::iter::once(Variable::continuous("D")))
            .collect();
        let structure_time = structure_start.elapsed();

        // Phase 2: generate P(D | X) from the workflow (Eq. 4).
        let sigma = match options.noise_sigma {
            Some(s) => s.max(0.0),
            None => estimate_noise_sigma(metric_expr, train, d_node),
        };
        let d_cpd =
            DeterministicCpd::from_network_expr(d_node, metric_expr, DetNoise::Gaussian { sigma })?;

        // Phase 3: learn P(Xᵢ | Φ(Xᵢ)) (and the resource CPDs) only.
        let learned_vars = &variables[..learned_nodes];
        let learned_dag = learned_subdag(&dag, learned_nodes);
        let learned_data = train.project(&(0..learned_nodes).collect::<Vec<_>>())?;
        let locals = slice_local_datasets(&learned_dag, &learned_data)?;
        let (cpds, parameter_time, node_times) =
            run_param_learning(learned_vars, &locals, options.learning, options.params)?;

        let mut all_cpds = cpds;
        all_cpds.push(Cpd::Deterministic(d_cpd));
        let network = BayesianNetwork::new(variables, dag, all_cpds)?;
        Ok(KertBn {
            network,
            n_services: n,
            d_node,
            discretizer: None,
            report: BuildReport {
                structure_time,
                parameter_time,
                score_evaluations: 0,
                node_parameter_times: node_times,
            },
            health: ModelHealth::all_fresh(learned_nodes, train.rows()),
        })
    }

    /// Build a continuous KERT-BN from a *lossy* report source, healing
    /// around faults (crashed agents, dropped/delayed reports, corrupted or
    /// truncated batches).
    ///
    /// Unlike [`KertBn::build_continuous`], which requires a clean joint
    /// dataset, this path collects each node's window report through the
    /// source (bounded retry/backoff), reconciles what arrives, and walks
    /// the fallback ladder — fresh fit → last-good cached CPD → prior — so
    /// construction **always succeeds** with a complete network. The
    /// resulting model's [`KertBn::health`] says which nodes are degraded;
    /// pass the same `cache` across windows so the stale rung has
    /// something to fall back on.
    pub fn build_continuous_resilient(
        knowledge: &WorkflowKnowledge,
        source: &mut dyn ReportSource,
        window: usize,
        cache: &mut CpdCache,
        options: &ResilientKertOptions,
    ) -> Result<Self> {
        let n = knowledge.n_services;
        let d_node = n;
        let expr = knowledge.response_expr.clone();

        let structure_start = Instant::now();
        let dag = knowledge_dag(knowledge, &expr, false)?;
        let variables: Vec<Variable> = (0..n)
            .map(|i| Variable::continuous(format!("X{}", i + 1)))
            .chain(std::iter::once(Variable::continuous("D")))
            .collect();
        let structure_time = structure_start.elapsed();

        let d_cpd = DeterministicCpd::from_network_expr(
            d_node,
            &expr,
            DetNoise::Gaussian {
                sigma: options.noise_sigma.max(1e-9),
            },
        )?;

        let learned_dag = learned_subdag(&dag, n);
        let param_start = Instant::now();
        let res = resilient_decentralized_learn(
            &variables[..n],
            &learned_dag,
            source,
            window,
            cache,
            &options.resilient,
        )?;
        let parameter_time = param_start.elapsed();

        let mut all_cpds = res.cpds;
        all_cpds.push(Cpd::Deterministic(d_cpd));
        let network = BayesianNetwork::new(variables, dag, all_cpds)?;
        Ok(KertBn {
            network,
            n_services: n,
            d_node,
            discretizer: None,
            report: BuildReport {
                structure_time,
                parameter_time,
                score_evaluations: 0,
                node_parameter_times: Vec::new(),
            },
            health: res.health,
        })
    }

    /// Build a discrete KERT-BN (the §5 test-bed variant): measurements are
    /// binned, per-service CPDs become CPTs, and the response CPD is the
    /// discrete deterministic-with-leak form of Eq. 4.
    pub fn build_discrete(
        knowledge: &WorkflowKnowledge,
        train: &Dataset,
        options: DiscreteKertOptions,
    ) -> Result<Self> {
        let expr = knowledge.response_expr.clone();
        Self::build_discrete_impl(knowledge, &expr, false, train, options)
    }

    /// Discrete variant of [`KertBn::build_continuous_metric`].
    pub fn build_discrete_metric(
        knowledge: &WorkflowKnowledge,
        metric_expr: &kert_bayes::Expr,
        train: &Dataset,
        options: DiscreteKertOptions,
    ) -> Result<Self> {
        Self::build_discrete_impl(knowledge, metric_expr, false, train, options)
    }

    /// Discrete variant of [`KertBn::build_continuous_with_resources`].
    pub fn build_discrete_with_resources(
        knowledge: &WorkflowKnowledge,
        train: &Dataset,
        options: DiscreteKertOptions,
    ) -> Result<Self> {
        let expr = knowledge.response_expr.clone();
        Self::build_discrete_impl(knowledge, &expr, true, train, options)
    }

    fn build_discrete_impl(
        knowledge: &WorkflowKnowledge,
        metric_expr: &kert_bayes::Expr,
        with_resources: bool,
        train: &Dataset,
        options: DiscreteKertOptions,
    ) -> Result<Self> {
        let n = knowledge.n_services;
        let k = if with_resources {
            knowledge.resources.len()
        } else {
            0
        };
        check_dataset(train, n, k)?;
        if with_resources {
            check_resource_columns(knowledge, train)?;
        }
        let learned_nodes = n + k;
        let d_node = learned_nodes;
        if options.bins < 2 {
            return Err(CoreError::BadRequest(format!(
                "need ≥ 2 bins, got {}",
                options.bins
            )));
        }

        // Discretization is part of parameter preparation, timed with it.
        let param_start = Instant::now();
        let discretizer = Discretizer::fit(train, options.bins, options.strategy)?;
        let states = discretizer.transform(train)?;
        let discretize_time = param_start.elapsed();

        let structure_start = Instant::now();
        let dag = knowledge_dag(knowledge, metric_expr, with_resources)?;
        let variables: Vec<Variable> = (0..learned_nodes)
            .map(|i| Variable::discrete(train.names()[i].clone(), options.bins))
            .chain(std::iter::once(Variable::discrete("D", options.bins)))
            .collect();
        let structure_time = structure_start.elapsed();

        // Eq. 4 in discrete form: parents are the expression's variables;
        // their bin midpoints feed `f`, whose value is re-binned through
        // D's edges.
        let parent_ids = metric_expr.variables();
        let parent_mids: Vec<Vec<f64>> = parent_ids
            .iter()
            .map(|&p| discretizer.column(p).midpoints.clone())
            .collect();
        let d_cpd = DeterministicCpd::from_network_expr(
            d_node,
            metric_expr,
            DetNoise::Discrete {
                leak: options.leak,
                card: options.bins,
                child_edges: discretizer.column(d_node).edges.clone(),
                parent_mids,
            },
        )?;

        let learned_vars = &variables[..learned_nodes];
        let learned_dag = learned_subdag(&dag, learned_nodes);
        let learned_states = states.project(&(0..learned_nodes).collect::<Vec<_>>())?;
        let locals = slice_local_datasets(&learned_dag, &learned_states)?;
        let (cpds, parameter_time, node_times) =
            run_param_learning(learned_vars, &locals, options.learning, options.params)?;

        let mut all_cpds = cpds;
        all_cpds.push(Cpd::Deterministic(d_cpd));
        let network = BayesianNetwork::new(variables, dag, all_cpds)?;
        Ok(KertBn {
            network,
            n_services: n,
            d_node,
            discretizer: Some(discretizer),
            report: BuildReport {
                structure_time,
                parameter_time: parameter_time + discretize_time,
                score_evaluations: 0,
                node_parameter_times: node_times,
            },
            health: ModelHealth::all_fresh(learned_nodes, train.rows()),
        })
    }

    /// Reassemble a model from persisted parts (no build report — timings
    /// describe the build machine, not the model).
    pub(crate) fn from_parts(
        network: BayesianNetwork,
        n_services: usize,
        d_node: usize,
        discretizer: Option<Discretizer>,
    ) -> Self {
        KertBn {
            network,
            n_services,
            d_node,
            discretizer,
            report: BuildReport::default(),
            health: ModelHealth::default(),
        }
    }

    /// The assembled Bayesian network.
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// Mutable network access for the streaming refresh path.
    pub(crate) fn network_mut(&mut self) -> &mut BayesianNetwork {
        &mut self.network
    }

    /// Record that every learned CPD was just refitted over `rows` rows
    /// (streaming refresh keeps provenance honest without a rebuild).
    pub(crate) fn mark_refreshed(&mut self, rows: usize) {
        self.health = ModelHealth::all_fresh(self.d_node, rows);
    }

    /// Number of service nodes (`D` is node `n_services`).
    pub fn n_services(&self) -> usize {
        self.n_services
    }

    /// Index of the response-time node `D`.
    pub fn d_node(&self) -> usize {
        self.d_node
    }

    /// The discretizer, for discrete models.
    pub fn discretizer(&self) -> Option<&Discretizer> {
        self.discretizer.as_ref()
    }

    /// Construction cost breakdown.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// Per-node CPD provenance (all-fresh for conventional builds).
    pub fn health(&self) -> &ModelHealth {
        &self.health
    }

    /// True if any node's CPD came from the stale or prior rung.
    pub fn is_degraded(&self) -> bool {
        self.health.is_degraded()
    }

    /// Degraded *service* nodes (candidates for dComp compensation).
    pub fn degraded_services(&self) -> Vec<usize> {
        self.health
            .degraded_nodes()
            .into_iter()
            .filter(|&node| node < self.n_services)
            .collect()
    }

    /// The Gaussian noise σ of the response CPD, for continuous models —
    /// what a resilient rebuild should inherit from a healthy bootstrap.
    pub fn noise_sigma(&self) -> Option<f64> {
        match self.network.cpd(self.d_node) {
            Cpd::Deterministic(d) => match d.noise() {
                DetNoise::Gaussian { sigma } => Some(*sigma),
                _ => None,
            },
            _ => None,
        }
    }

    /// Data-fitting accuracy `log₁₀ p(test | model)` (the paper's metric).
    /// Raw measurements are passed; discrete models bin them internally.
    pub fn accuracy(&self, test: &Dataset) -> Result<f64> {
        match &self.discretizer {
            Some(disc) => {
                let states = disc.transform(test)?;
                Ok(self.network.log10_likelihood(&states)?)
            }
            None => Ok(self.network.log10_likelihood(test)?),
        }
    }
}

/// Build the KERT-BN DAG: upstream edges among services, optionally the
/// resource nodes (parents = sharing services, per §3.2), then `D` as the
/// child of every service the metric expression reads. Node layout:
/// services `0..n`, resources `n..n+k`, `D` last.
fn knowledge_dag(
    knowledge: &WorkflowKnowledge,
    metric_expr: &kert_bayes::Expr,
    with_resources: bool,
) -> Result<Dag> {
    let n = knowledge.n_services;
    let k = if with_resources {
        knowledge.resources.len()
    } else {
        0
    };
    let mut dag = Dag::new(n + k + 1);
    for &(from, to) in &knowledge.upstream_edges {
        dag.add_edge(from, to)?;
    }
    if with_resources {
        for (j, (_, sharing)) in knowledge.resources.iter().enumerate() {
            for &s in sharing {
                dag.add_edge(s, n + j)?;
            }
        }
    }
    for v in metric_expr.variables() {
        dag.add_edge(v, n + k)?;
    }
    Ok(dag)
}

/// Restrict the full DAG to the learned nodes `0..m` (services and
/// resources; `D`'s CPD is knowledge-generated, never learned).
pub(crate) fn learned_subdag(dag: &Dag, m: usize) -> Dag {
    let mut sub = Dag::new(m);
    for (from, to) in dag.edges() {
        if from < m && to < m {
            sub.add_edge(from, to)
                .expect("subgraph of a DAG is acyclic");
        }
    }
    sub
}

/// σ estimate for the continuous Eq.-4 CPD: RMS residual of `f` on the
/// training window, floored to keep the density proper when monitoring is
/// exact (`l = 0`).
fn estimate_noise_sigma(metric_expr: &kert_bayes::Expr, train: &Dataset, d_col: usize) -> f64 {
    let mut ss = 0.0;
    let mut d_scale: f64 = 0.0;
    for r in 0..train.rows() {
        let row = train.row(r);
        let resid = row[d_col] - metric_expr.eval(row);
        ss += resid * resid;
        d_scale = d_scale.max(row[d_col].abs());
    }
    let rms = if train.rows() > 0 {
        (ss / train.rows() as f64).sqrt()
    } else {
        0.0
    };
    rms.max(d_scale * 1e-6).max(1e-9)
}

/// Dispatch parameter learning and normalize the cost accounting.
fn run_param_learning(
    variables: &[Variable],
    locals: &[kert_agents::LocalDataset],
    learning: ParamLearning,
    params: ParamOptions,
) -> Result<(Vec<Cpd>, std::time::Duration, Vec<std::time::Duration>)> {
    match learning {
        ParamLearning::Centralized => {
            let res = centralized_learn(
                variables,
                locals,
                LearnOptions {
                    params,
                    workers: None,
                },
            )?;
            Ok((res.cpds, res.centralized_time, res.node_times))
        }
        ParamLearning::Decentralized { workers } => {
            let res = decentralized_learn(variables, locals, LearnOptions { params, workers })?;
            Ok((res.cpds, res.decentralized_time, res.node_times))
        }
    }
}

/// Validate the `X₁…X_n, [R₁…R_k,] D` dataset layout.
fn check_dataset(data: &Dataset, n_services: usize, n_resources: usize) -> Result<()> {
    let expected = n_services + n_resources + 1;
    if data.columns() != expected {
        return Err(CoreError::BadRequest(format!(
            "dataset has {} columns; expected {n_services} services + {n_resources} \
             resources + D = {expected}",
            data.columns(),
        )));
    }
    if data.is_empty() {
        return Err(CoreError::BadRequest("empty training dataset".into()));
    }
    Ok(())
}

/// Resource columns must be named after the knowledge's resources, in
/// order — the cheap alignment check that catches a mis-assembled dataset
/// before it silently mislearns.
fn check_resource_columns(knowledge: &WorkflowKnowledge, data: &Dataset) -> Result<()> {
    let n = knowledge.n_services;
    for (j, (name, _)) in knowledge.resources.iter().enumerate() {
        let col_name = &data.names()[n + j];
        if col_name != name {
            return Err(CoreError::BadRequest(format!(
                "resource column {} is named {col_name:?}, expected {name:?} — dataset \
                 and knowledge resource orders disagree",
                n + j
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_sim::{Dist, ServiceConfig, SimOptions, SimSystem};
    use kert_workflow::{derive_structure, ediamond_workflow, ResourceMap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ediamond_data(rows: usize, seed: u64) -> (WorkflowKnowledge, Dataset) {
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let stations = (0..6)
            .map(|i| {
                ServiceConfig::single(Dist::Exponential {
                    mean: 0.04 + 0.01 * i as f64,
                })
            })
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.4 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sys.run(rows, &mut rng);
        (knowledge, trace.to_dataset(None))
    }

    #[test]
    fn continuous_kert_builds_and_fits() {
        let (knowledge, data) = ediamond_data(600, 1);
        let (train, test) = data.split_at(400);
        let model =
            KertBn::build_continuous(&knowledge, &train, ContinuousKertOptions::default()).unwrap();
        assert_eq!(model.n_services(), 6);
        assert_eq!(model.d_node(), 6);
        assert_eq!(model.network().len(), 7);
        // Figure-2 structure: D has all six services as parents.
        assert_eq!(model.network().dag().parents(6), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(model.network().dag().parents(1), &[0]);
        // Structure phase is knowledge compilation — far below a millisecond.
        assert!(model.report().structure_time.as_micros() < 10_000);
        assert_eq!(model.report().score_evaluations, 0);
        let acc = model.accuracy(&test).unwrap();
        assert!(acc.is_finite());
    }

    #[test]
    fn decentralized_build_learns_the_same_model() {
        let (knowledge, data) = ediamond_data(400, 2);
        let central =
            KertBn::build_continuous(&knowledge, &data, ContinuousKertOptions::default()).unwrap();
        let dec = KertBn::build_continuous(
            &knowledge,
            &data,
            ContinuousKertOptions {
                learning: ParamLearning::Decentralized { workers: Some(3) },
                ..Default::default()
            },
        )
        .unwrap();
        let acc_c = central.accuracy(&data).unwrap();
        let acc_d = dec.accuracy(&data).unwrap();
        assert!(
            (acc_c - acc_d).abs() < 1e-6,
            "same parameters either way: {acc_c} vs {acc_d}"
        );
        // Decentralized effective time (max) ≤ centralized (sum), modulo a
        // few milliseconds of scheduler noise (fits here are microseconds,
        // and the test harness runs other tests concurrently).
        assert!(
            dec.report().parameter_time
                <= central.report().parameter_time + std::time::Duration::from_millis(5)
        );
    }

    #[test]
    fn discrete_kert_builds_and_fits() {
        let (knowledge, data) = ediamond_data(900, 3);
        let (train, test) = data.split_at(700);
        let model =
            KertBn::build_discrete(&knowledge, &train, DiscreteKertOptions::default()).unwrap();
        assert!(model.discretizer().is_some());
        let acc = model.accuracy(&test).unwrap();
        assert!(acc.is_finite());
        // Discrete accuracy is a log-probability: ≤ 0.
        assert!(acc < 0.0);
    }

    #[test]
    fn deterministic_cpd_predicts_the_response_bin_well() {
        // With exact measurements the workflow function should land in the
        // right D-bin for the overwhelming majority of rows.
        let (knowledge, data) = ediamond_data(800, 4);
        let model = KertBn::build_discrete(
            &knowledge,
            &data,
            DiscreteKertOptions {
                leak: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let disc = model.discretizer().unwrap();
        let states = disc.transform(&data).unwrap();
        let Cpd::Deterministic(d_cpd) = model.network().cpd(6) else {
            panic!("D must be deterministic");
        };
        let mut hits = 0;
        for r in 0..states.rows() {
            let row = states.row(r);
            let parent_states: Vec<f64> = d_cpd.parents().iter().map(|&p| row[p]).collect();
            if d_cpd.predicted_state(&parent_states) == Some(row[6] as usize) {
                hits += 1;
            }
        }
        let rate = hits as f64 / states.rows() as f64;
        // Binning error makes this inexact, but it must be dominant.
        assert!(rate > 0.5, "prediction rate {rate}");
    }

    #[test]
    fn resource_aware_model_has_resource_nodes_with_sharing_parents() {
        use kert_sim::HostLayout;
        let wf = ediamond_workflow();
        let layout = HostLayout::new(
            vec![
                ("db_host".into(), vec![4, 5]),
                ("web_host".into(), vec![0, 1]),
            ],
            6,
        )
        .unwrap();
        let knowledge = derive_structure(&wf, 6, &layout.to_resource_map()).unwrap();
        let stations = (0..6)
            .map(|_| ServiceConfig::single(Dist::Erlang { k: 4, mean: 0.05 }))
            .collect();
        let mut sys = kert_sim::SimSystem::with_hosts(
            &wf,
            stations,
            layout,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.3 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(50);
        let data = sys.run(500, &mut rng).to_dataset(None);
        assert_eq!(data.columns(), 9); // 6 services + 2 hosts + D

        let model = KertBn::build_continuous_with_resources(
            &knowledge,
            &data,
            ContinuousKertOptions::default(),
        )
        .unwrap();
        // Layout: services 0..6, resources 6..8, D = 8.
        assert_eq!(model.network().len(), 9);
        assert_eq!(model.d_node(), 8);
        // ResourceMap is a BTreeMap: "db_host" < "web_host".
        assert_eq!(model.network().dag().parents(6), &[4, 5]);
        assert_eq!(model.network().dag().parents(7), &[0, 1]);
        // D depends on the services only (Eq. 4's f reads elapsed times).
        assert_eq!(model.network().dag().parents(8), &[0, 1, 2, 3, 4, 5]);
        assert!(model.accuracy(&data).unwrap().is_finite());

        // The discrete variant assembles too.
        let disc = KertBn::build_discrete_with_resources(
            &knowledge,
            &data,
            DiscreteKertOptions::default(),
        )
        .unwrap();
        assert_eq!(disc.network().len(), 9);

        // Misordered resource columns are caught.
        let scrambled = data.project(&[0, 1, 2, 3, 4, 5, 7, 6, 8]).unwrap();
        assert!(KertBn::build_continuous_with_resources(
            &knowledge,
            &scrambled,
            ContinuousKertOptions::default()
        )
        .is_err());
    }

    #[test]
    fn count_metric_model_uses_the_sum_expression() {
        // Timeout counts: D = Σ Xᵢ (§3.3). Train a continuous metric model
        // on count data and check its deterministic CPD predicts the sum.
        let wf = ediamond_workflow();
        let knowledge = derive_structure(&wf, 6, &ResourceMap::new()).unwrap();
        let stations = (0..6)
            .map(|i| {
                ServiceConfig::single(Dist::Erlang {
                    k: 2,
                    mean: 0.05 + 0.02 * i as f64,
                })
            })
            .collect();
        let mut sys = SimSystem::new(
            &wf,
            stations,
            SimOptions {
                inter_arrival: Dist::Exponential { mean: 0.3 },
                warmup: 50,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let trace = sys.run(2_000, &mut rng);
        // Deadlines near each service's configured mean: plenty of timeouts.
        let deadlines = [0.06, 0.08, 0.10, 0.12, 0.14, 0.16];
        let counts = trace.timeout_counts(&deadlines, 0.5);
        assert!(
            counts.rows() > 50,
            "need enough intervals: {}",
            counts.rows()
        );

        let count_expr = knowledge.count_expr.clone();
        let model = KertBn::build_continuous_metric(
            &knowledge,
            &count_expr,
            &counts,
            ContinuousKertOptions::default(),
        )
        .unwrap();
        let Cpd::Deterministic(d_cpd) = model.network().cpd(6) else {
            panic!("D must be deterministic");
        };
        // f on the count columns equals the recorded end-to-end count.
        for r in 0..counts.rows().min(50) {
            let row = counts.row(r);
            let parent_vals: Vec<f64> = d_cpd.parents().iter().map(|&p| row[p]).collect();
            assert!((d_cpd.predict(&parent_vals) - row[6]).abs() < 1e-9);
        }
        assert!(model.accuracy(&counts).unwrap().is_finite());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let (knowledge, data) = ediamond_data(50, 5);
        let narrow = data.project(&[0, 1, 2]).unwrap();
        assert!(
            KertBn::build_continuous(&knowledge, &narrow, ContinuousKertOptions::default())
                .is_err()
        );
        let empty = Dataset::new(data.names().to_vec());
        assert!(
            KertBn::build_continuous(&knowledge, &empty, ContinuousKertOptions::default()).is_err()
        );
        assert!(KertBn::build_discrete(
            &knowledge,
            &data,
            DiscreteKertOptions {
                bins: 1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn noise_sigma_override_is_respected() {
        let (knowledge, data) = ediamond_data(200, 6);
        let model = KertBn::build_continuous(
            &knowledge,
            &data,
            ContinuousKertOptions {
                noise_sigma: Some(0.25),
                ..Default::default()
            },
        )
        .unwrap();
        let Cpd::Deterministic(d) = model.network().cpd(6) else {
            panic!()
        };
        match d.noise() {
            DetNoise::Gaussian { sigma } => assert_eq!(*sigma, 0.25),
            other => panic!("{other:?}"),
        }
    }
}
