//! Agent-local CPD learning.
//!
//! A monitoring agent holds a *local* dataset whose columns are its node's
//! parents (ascending) followed by the node itself — exactly what
//! `kert_sim::monitor::MonitoringAgent::report` produces. This module fits
//! the node's CPD from that local view and re-expresses it in network-node
//! indices, so the management server can drop it straight into the
//! assembled Bayesian network.

use kert_bayes::cpd::Cpd;
use kert_bayes::learn::mle::{self, ParamOptions};
use kert_bayes::{Dataset, LinearGaussianCpd, TabularCpd, Variable, VariableKind};

use crate::{AgentError, Result};

/// An agent's local view: the node it learns and its local dataset with
/// columns `[parents…, node]`.
#[derive(Debug, Clone)]
pub struct LocalDataset {
    /// The network node this agent learns.
    pub node: usize,
    /// The node's parents in the network DAG, ascending.
    pub parents: Vec<usize>,
    /// Local data: `parents.len() + 1` columns, parents first, own last.
    pub data: Dataset,
}

impl LocalDataset {
    /// Validate column count against the parent list.
    pub fn validate(&self) -> Result<()> {
        let want = self.parents.len() + 1;
        if self.data.columns() != want {
            return Err(AgentError::BadLocalData(format!(
                "node {}: {} columns for {} parents",
                self.node,
                self.data.columns(),
                want - 1
            )));
        }
        if self.parents.windows(2).any(|w| w[0] >= w[1]) {
            return Err(AgentError::BadLocalData(format!(
                "node {}: parents not strictly ascending",
                self.node
            )));
        }
        for r in 0..self.data.rows() {
            for (c, &v) in self.data.row(r).iter().enumerate() {
                if !v.is_finite() {
                    return Err(AgentError::BadLocalData(format!(
                        "node {}: non-finite value {v} at row {r}, column {c} — \
                         sanitize reports before fitting",
                        self.node
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Fit the CPD of `local.node` from its local dataset.
///
/// `variables` is the full network schema (needed for kinds and
/// cardinalities). The returned CPD carries *network* indices.
pub fn fit_node_from_local(
    variables: &[Variable],
    local: &LocalDataset,
    options: ParamOptions,
) -> Result<Cpd> {
    local.validate()?;
    let node = local.node;
    let n_local = local.parents.len() + 1;
    let own_col = n_local - 1;
    let local_parents: Vec<usize> = (0..own_col).collect();

    // Local cardinalities: parents' then own.
    let mut local_cards = Vec::with_capacity(n_local);
    for &p in &local.parents {
        local_cards.push(
            variables
                .get(p)
                .ok_or_else(|| AgentError::BadLocalData(format!("unknown parent {p}")))?
                .cardinality()
                .unwrap_or(0),
        );
    }
    let own_var = variables
        .get(node)
        .ok_or_else(|| AgentError::BadLocalData(format!("unknown node {node}")))?;
    local_cards.push(own_var.cardinality().unwrap_or(0));

    let map_err = |e: kert_bayes::BayesError| AgentError::LearnFailed {
        node,
        cause: e.to_string(),
    };

    match own_var.kind {
        VariableKind::Discrete { .. } => {
            let fitted =
                mle::fit_tabular(own_col, &local_parents, &local.data, &local_cards, options)
                    .map_err(map_err)?;
            // Re-express with network indices (table layout is unchanged:
            // parent order is preserved).
            TabularCpd::new(
                node,
                local.parents.clone(),
                fitted.cardinality(),
                fitted.parent_cards().to_vec(),
                fitted.table().to_vec(),
            )
            .map(Cpd::Tabular)
            .map_err(map_err)
        }
        VariableKind::Continuous => {
            let fitted =
                mle::fit_linear_gaussian(own_col, &local_parents, &local.data).map_err(map_err)?;
            LinearGaussianCpd::new(
                node,
                local.parents.clone(),
                fitted.intercept(),
                fitted.coeffs().to_vec(),
                fitted.variance(),
            )
            .map(Cpd::LinearGaussian)
            .map_err(map_err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn continuous_vars(n: usize) -> Vec<Variable> {
        (0..n)
            .map(|i| Variable::continuous(format!("X{i}")))
            .collect()
    }

    #[test]
    fn local_gaussian_fit_carries_network_indices() {
        // Node 5 with parents {2, 3}: local columns [X2, X3, X5].
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let a = (i as f64 * 0.31).sin();
                let b = (i as f64 * 0.17).cos();
                vec![a, b, 1.0 + 2.0 * a - 0.5 * b]
            })
            .collect();
        let data = Dataset::from_rows(vec!["X3".into(), "X4".into(), "X6".into()], rows).unwrap();
        let local = LocalDataset {
            node: 5,
            parents: vec![2, 3],
            data,
        };
        let cpd =
            fit_node_from_local(&continuous_vars(6), &local, ParamOptions::default()).unwrap();
        assert_eq!(cpd.child(), 5);
        assert_eq!(cpd.parents(), &[2, 3]);
        match cpd {
            Cpd::LinearGaussian(lg) => {
                assert!((lg.intercept() - 1.0).abs() < 1e-6);
                assert!((lg.coeffs()[0] - 2.0).abs() < 1e-6);
                assert!((lg.coeffs()[1] + 0.5).abs() < 1e-6);
            }
            other => panic!("expected linear-Gaussian, got {other:?}"),
        }
    }

    #[test]
    fn local_tabular_fit_matches_frequencies() {
        let vars = vec![Variable::discrete("a", 2), Variable::discrete("b", 2)];
        // Node 1 with parent 0: local columns [X0, X1].
        let data = Dataset::from_rows(
            vec!["X1".into(), "X2".into()],
            vec![
                vec![0.0, 0.0],
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
            ],
        )
        .unwrap();
        let local = LocalDataset {
            node: 1,
            parents: vec![0],
            data,
        };
        let cpd = fit_node_from_local(
            &vars,
            &local,
            ParamOptions {
                dirichlet_alpha: 0.0,
            },
        )
        .unwrap();
        match cpd {
            Cpd::Tabular(t) => {
                assert_eq!(t.child(), 1);
                assert_eq!(t.parents(), &[0]);
                assert!((t.prob(0, &[0]) - 2.0 / 3.0).abs() < 1e-12);
                assert!((t.prob(1, &[1]) - 1.0).abs() < 1e-12);
            }
            other => panic!("expected tabular, got {other:?}"),
        }
    }

    #[test]
    fn root_node_needs_single_column() {
        let vars = continuous_vars(2);
        let data = Dataset::from_rows(vec!["X1".into()], vec![vec![4.0], vec![6.0]]).unwrap();
        let local = LocalDataset {
            node: 0,
            parents: vec![],
            data,
        };
        let cpd = fit_node_from_local(&vars, &local, ParamOptions::default()).unwrap();
        assert!(cpd.parents().is_empty());
        match cpd {
            Cpd::LinearGaussian(lg) => assert!((lg.intercept() - 5.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn validation_catches_mismatches() {
        let vars = continuous_vars(3);
        let data = Dataset::new(vec!["only".into()]);
        let bad_cols = LocalDataset {
            node: 2,
            parents: vec![0, 1],
            data: data.clone(),
        };
        assert!(fit_node_from_local(&vars, &bad_cols, ParamOptions::default()).is_err());

        let bad_parents = LocalDataset {
            node: 2,
            parents: vec![1, 0],
            data: Dataset::new(vec!["a".into(), "b".into(), "c".into()]),
        };
        assert!(bad_parents.validate().is_err());
    }
}
