//! Simulated fleets of 10³+ agents under deterministic chaos.
//!
//! ROADMAP item 4 asks for the PR 2 fault harness at fleet scale:
//! thousands of monitoring agents, whole-shard partitions, and a
//! coordinator that dies mid-epoch and must come back *warm*. Running the
//! discrete-event queueing simulator for thousands of services per epoch
//! would drown the experiment in simulation cost, so [`SyntheticFleet`]
//! generates agent reports directly — a deterministic linear-Gaussian
//! chain whose every value is a pure function of `(seed, node, window,
//! row)` — and pushes them through the same [`FaultInjector`] delivery
//! path the six-service test-bed uses. What is under test is the
//! *coordination plane*: the sharded epoch collector, the fallback
//! ladder, and the snapshot/restore cycle.
//!
//! [`run_fleet_chaos`] is the drill sergeant: it runs a configured number
//! of epochs, persists a coordinator snapshot after each, and when the
//! seeded coordinator-crash fault fires it throws away the in-memory
//! [`CpdCache`] (including a partially collected epoch — the "mid-epoch"
//! loss), restores from the last snapshot, and re-runs the epoch. Every
//! number in the resulting [`FleetChaosReport`] is simulated or counted —
//! no wall clock — so a report is bitwise-reproducible across runs, hosts,
//! and (absent budget cutoffs and partitions) shard counts.

use std::path::PathBuf;

use kert_bayes::{Dag, Dataset, Variable};
use kert_sim::{
    AgentReport, CoordinatorFaultPlan, Delivery, FaultEvent, FaultInjector, FaultPlan,
    ShardFaultPlan,
};
use serde::{Deserialize, Serialize};

use crate::collect::ReportSource;
use crate::runtime::{CpdCache, ResilientOptions};
use crate::shard::{sharded_resilient_learn, ShardConfig};
use crate::snapshot::{fnv1a64, restore_or_cold_start, save_snapshot, CoordinatorSnapshot};
use crate::{AgentError, Result};

static OBS_CHAOS_EPOCHS: kert_obs::Counter = kert_obs::Counter::new("agents.fleet.epochs");
static OBS_WARM_RESTORES: kert_obs::Counter = kert_obs::Counter::new("agents.fleet.warm_restores");
static OBS_COLD_RESTARTS: kert_obs::Counter = kert_obs::Counter::new("agents.fleet.cold_restarts");

/// SplitMix64 avalanche for the synthetic data stream (domain-separated
/// from the injector's delivery keys by construction — different seeds).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a key, with full 53-bit mantissa coverage.
fn unit(key: u64) -> f64 {
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic "measurement" of `node` for global row `row_id`.
///
/// Mean-centered jitter around a per-node base, so regressions on the
/// chain have full-rank design matrices and non-degenerate variance.
fn node_value(seed: u64, node: usize, row_id: u64) -> f64 {
    let base = 0.1 * ((node % 7) + 1) as f64;
    let key = splitmix64(seed ^ (node as u64).wrapping_mul(0x9E37_79B9)) ^ row_id;
    base + 0.2 * (unit(key) - 0.5)
}

/// A synthetic fleet: one monitoring agent per node of an `n`-node chain
/// (`X_{i-1} → X_i`), reporting through a seeded [`FaultInjector`].
pub struct SyntheticFleet {
    n_agents: usize,
    rows_per_window: usize,
    data_seed: u64,
    injector: FaultInjector,
    /// Delivery attempts served (collector throughput accounting).
    pub fetches: u64,
    /// Measurement rows generated across all served reports.
    pub rows_generated: u64,
}

impl SyntheticFleet {
    /// Build a fleet of `n_agents` with `rows_per_window` rows per report.
    pub fn new(
        n_agents: usize,
        rows_per_window: usize,
        data_seed: u64,
        injector: FaultInjector,
    ) -> Self {
        SyntheticFleet {
            n_agents,
            rows_per_window,
            data_seed,
            injector,
            fetches: 0,
            rows_generated: 0,
        }
    }

    /// The chain structure the fleet reports for: `X_{i-1} → X_i`.
    pub fn chain_model(n: usize) -> (Vec<Variable>, Dag) {
        let variables = (0..n)
            .map(|i| Variable::continuous(format!("X{i}")))
            .collect();
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).expect("chain edges are acyclic");
        }
        (variables, dag)
    }

    /// Agent `agent`'s pristine report for `window` (before injection).
    fn pristine_report(&self, agent: usize, window: usize) -> AgentReport {
        let parents: Vec<usize> = if agent == 0 { vec![] } else { vec![agent - 1] };
        let mut names: Vec<String> = parents.iter().map(|p| format!("X{p}")).collect();
        names.push(format!("X{agent}"));
        let mut data = Dataset::new(names);
        let first_id = (window * self.rows_per_window) as u64;
        let mut row_ids = Vec::with_capacity(self.rows_per_window);
        for r in 0..self.rows_per_window {
            let row_id = first_id + r as u64;
            let mut row: Vec<f64> = Vec::with_capacity(parents.len() + 1);
            let mut parent_sum = 0.0;
            for &p in &parents {
                let v = node_value(self.data_seed, p, row_id);
                parent_sum += v - 0.1 * ((p % 7) + 1) as f64;
                row.push(v);
            }
            // The child tracks its parents (coefficient 0.6) plus its own
            // deterministic jitter — a learnable linear-Gaussian family.
            let own = node_value(self.data_seed, agent, row_id) + 0.6 * parent_sum;
            row.push(own);
            data.push_row(row).expect("synthetic rows match the width");
            row_ids.push(row_id);
        }
        AgentReport {
            service: agent,
            data,
            row_ids,
            values_received: parents.len() * self.rows_per_window,
        }
    }
}

impl ReportSource for SyntheticFleet {
    fn n_agents(&self) -> usize {
        self.n_agents
    }

    fn fetch(
        &mut self,
        agent: usize,
        window: usize,
        attempt: usize,
    ) -> (Delivery, Vec<FaultEvent>) {
        self.fetches += 1;
        self.rows_generated += self.rows_per_window as u64;
        let report = self.pristine_report(agent, window);
        self.injector.deliver(agent, window, attempt, &report)
    }

    fn shard_outage(&mut self, shard: usize, n_shards: usize, window: usize) -> bool {
        self.injector.shard_partitioned(shard, n_shards, window)
    }
}

/// Configuration of one chaos drill.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Fleet size (one agent per model node).
    pub n_agents: usize,
    /// Rows per agent report per window.
    pub rows_per_window: usize,
    /// Epochs to run (one collection window each).
    pub epochs: usize,
    /// Master seed for data, delivery faults, partitions, and crashes.
    pub seed: u64,
    /// Shard layout and budgets for the epoch collector.
    pub shards: ShardConfig,
    /// Ladder options (retry policy, min rows, prior).
    pub resilient: ResilientOptions,
    /// Per-attempt drop probability of every (non-cold) agent; delay and
    /// corruption scale from it (×0.5 and ×0.25).
    pub fault_rate: f64,
    /// Fraction of agents crashed from window 0 — permanently cold nodes
    /// that exercise the prior rung (0.0 for warm-restore gates).
    pub cold_fraction: f64,
    /// Per-(shard, window) partition probability (0.0 disables).
    pub partition_prob: f64,
    /// Coordinator crash plan (`None` = coordinator never dies).
    pub coordinator: Option<CoordinatorFaultPlan>,
    /// Where coordinator snapshots are persisted. `None` = no persistence:
    /// a coordinator crash then restarts *cold* (prior rungs).
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            n_agents: 1000,
            rows_per_window: 48,
            epochs: 6,
            seed: 1,
            // No global row alignment at fleet scale: each agent's report
            // is self-contained (parent columns piggyback on application
            // traffic, §3.4), and with per-row corruption the probability
            // that one request id survives in *all* of 10³ reports decays
            // as p^n — the fleet-wide intersection is empty by
            // construction. The shared aligned view (`common_rows`) is
            // still computed and reported for consumers that want it.
            shards: ShardConfig {
                align_rows: false,
                ..ShardConfig::default()
            },
            resilient: ResilientOptions {
                min_rows: 8,
                ..ResilientOptions::default()
            },
            fault_rate: 0.15,
            cold_fraction: 0.0,
            partition_prob: 0.0,
            coordinator: None,
            snapshot_path: None,
        }
    }
}

impl ChaosOptions {
    /// The per-agent fault plans this configuration induces.
    pub fn agent_plans(&self) -> Vec<FaultPlan> {
        let cold = (self.cold_fraction.clamp(0.0, 1.0) * self.n_agents as f64).round() as usize;
        (0..self.n_agents)
            .map(|agent| {
                // Cold agents are spread across the fleet (every k-th) so
                // every shard sees some, not just shard 0.
                let is_cold = cold > 0 && agent % (self.n_agents / cold.max(1)).max(1) == 0;
                if is_cold && cold > 0 {
                    FaultPlan::crash_at(0)
                } else {
                    FaultPlan {
                        drop_prob: self.fault_rate,
                        delay_prob: self.fault_rate * 0.5,
                        delay_windows: 1,
                        corrupt_prob: self.fault_rate * 0.25,
                        ..FaultPlan::healthy()
                    }
                }
            })
            .collect()
    }

    /// Build the seeded injector (delivery + shard + coordinator faults).
    pub fn injector(&self) -> Result<FaultInjector> {
        let mut injector = FaultInjector::new(self.seed, self.agent_plans())
            .map_err(|e| AgentError::BadLocalData(format!("chaos fault plan: {e}")))?;
        if self.partition_prob > 0.0 {
            injector = injector
                .with_shard_faults(ShardFaultPlan {
                    partition_prob: self.partition_prob,
                })
                .map_err(|e| AgentError::BadLocalData(format!("chaos shard plan: {e}")))?;
        }
        if let Some(plan) = self.coordinator {
            injector = injector
                .with_coordinator_faults(plan)
                .map_err(|e| AgentError::BadLocalData(format!("chaos coordinator plan: {e}")))?;
        }
        Ok(injector)
    }
}

/// One epoch's outcome in a chaos drill. Every field is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (= collection window).
    pub epoch: usize,
    /// Nodes on the fresh rung this epoch.
    pub fresh: usize,
    /// Nodes on the stale rung.
    pub stale: usize,
    /// Nodes on the prior rung.
    pub prior: usize,
    /// Oldest stale age served this epoch.
    pub max_stale_age: usize,
    /// Fault events observed across all report paths.
    pub faults: usize,
    /// Agents that delivered nothing usable.
    pub missing_agents: usize,
    /// Shards partitioned away this epoch.
    pub partitioned_shards: usize,
    /// Members collected under the straggler cutoff.
    pub cutoff_agents: usize,
    /// Simulated epoch latency: max over shards of shard sim-windows.
    pub sim_windows_max: u64,
    /// Simulated sequential cost: sum over shards.
    pub sim_windows_sum: u64,
    /// Whether the coordinator crashed and restarted before this epoch's
    /// successful pass.
    pub restored: bool,
    /// Whether that restart came back warm (snapshot loaded) rather than
    /// cold (no/corrupt snapshot → empty cache).
    pub warm: bool,
    /// FNV-1a-64 over the epoch's serialized CPD set — the bitwise
    /// equivalence handle for run-twice and cross-shard-count checks.
    pub cpd_fingerprint: String,
}

/// The full, deterministic record of one chaos drill.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetChaosReport {
    /// Fleet size.
    pub n_agents: usize,
    /// Shard count used by the collector.
    pub n_shards: usize,
    /// Master seed.
    pub seed: u64,
    /// Rows per report.
    pub rows_per_window: usize,
    /// Per-epoch outcomes (successful passes; an epoch aborted by a
    /// coordinator crash is folded into its retry's `restored` flag).
    pub epochs: Vec<EpochRecord>,
    /// Total nodes served per rung across all epochs.
    pub total_fresh: usize,
    /// Stale total.
    pub total_stale: usize,
    /// Prior total.
    pub total_prior: usize,
    /// Coordinator crashes injected.
    pub coordinator_crashes: usize,
    /// Restarts that came back warm.
    pub warm_restores: usize,
    /// Mean over epochs of `sum/max` shard sim-windows — the simulated
    /// speedup of collecting shards concurrently.
    pub simulated_speedup: f64,
    /// Delivery attempts served by the fleet (includes retries and the
    /// lost mid-epoch pass of a coordinator crash).
    pub fetches: u64,
    /// Measurement rows generated across all served reports.
    pub rows_generated: u64,
    /// Fingerprint of the final epoch's CPD set.
    pub final_fingerprint: String,
}

/// Hex FNV-1a-64 over the JSON serialization of a CPD set.
fn fingerprint_cpds(cpds: &[kert_bayes::Cpd]) -> String {
    let json = serde_json::to_string(cpds).unwrap_or_default();
    format!("{:016x}", fnv1a64(json.as_bytes()))
}

/// Run a seeded chaos drill: `epochs` sharded resilient rebuilds over a
/// synthetic fleet, snapshotting after every epoch, crashing and warm-
/// restoring the coordinator wherever the seeded fault plan says so.
pub fn run_fleet_chaos(options: &ChaosOptions) -> Result<FleetChaosReport> {
    let _span = kert_obs::span("agents.fleet_chaos");
    let (variables, dag) = SyntheticFleet::chain_model(options.n_agents);
    let injector = options.injector()?;
    let mut fleet = SyntheticFleet::new(
        options.n_agents,
        options.rows_per_window,
        // Domain-separate the data stream from the delivery stream.
        splitmix64(options.seed ^ 0x4441_5441),
        injector.clone(),
    );
    let mut cache = CpdCache::new(options.n_agents);
    let mut epochs = Vec::with_capacity(options.epochs);
    let mut coordinator_crashes = 0usize;
    let mut warm_restores = 0usize;

    for epoch in 0..options.epochs {
        OBS_CHAOS_EPOCHS.incr();
        let mut restored = false;
        let mut warm = false;
        if injector.coordinator_crashes(epoch as u64) {
            coordinator_crashes += 1;
            // The crash lands mid-epoch: the coordinator had already begun
            // collecting this window. That partial pass is lost — its
            // fetch traffic happened, its results (including cache stores)
            // die with the process.
            let mut lost_cache = std::mem::replace(&mut cache, CpdCache::new(options.n_agents));
            let _ = sharded_resilient_learn(
                &variables,
                &dag,
                &mut fleet,
                epoch,
                &mut lost_cache,
                &options.resilient,
                &options.shards,
            )?;
            drop(lost_cache);
            // Restart: resume warm from the last snapshot, or cold when
            // there is none (or it fails verification).
            restored = true;
            if let Some(path) = &options.snapshot_path {
                let (restored_cache, _epoch, err) = restore_or_cold_start(path, options.n_agents);
                cache = restored_cache;
                warm = err.is_none();
            }
            if warm {
                warm_restores += 1;
                OBS_WARM_RESTORES.incr();
            } else {
                OBS_COLD_RESTARTS.incr();
            }
        }

        let result = sharded_resilient_learn(
            &variables,
            &dag,
            &mut fleet,
            epoch,
            &mut cache,
            &options.resilient,
            &options.shards,
        )?;
        if let Some(path) = &options.snapshot_path {
            let snapshot = CoordinatorSnapshot::capture(&cache, (epoch + 1) as u64, epoch + 1);
            save_snapshot(path, &snapshot)
                .map_err(|e| AgentError::Internal(format!("snapshot save: {e}")))?;
        }

        let (fresh, stale, prior) = result.health.source_counts();
        epochs.push(EpochRecord {
            epoch,
            fresh,
            stale,
            prior,
            max_stale_age: result.health.max_stale_age(),
            faults: result.health.total_faults(),
            missing_agents: result.shards.iter().map(|s| s.missing).sum(),
            partitioned_shards: result.shards.iter().filter(|s| s.partitioned).count(),
            cutoff_agents: result.shards.iter().map(|s| s.cutoff_agents).sum(),
            sim_windows_max: result
                .shards
                .iter()
                .map(|s| s.sim_windows)
                .max()
                .unwrap_or(0),
            sim_windows_sum: result.shards.iter().map(|s| s.sim_windows).sum(),
            restored,
            warm,
            cpd_fingerprint: fingerprint_cpds(&result.cpds),
        });
    }

    let speedups: Vec<f64> = epochs
        .iter()
        .filter(|e| e.sim_windows_max > 0)
        .map(|e| e.sim_windows_sum as f64 / e.sim_windows_max as f64)
        .collect();
    let simulated_speedup = if speedups.is_empty() {
        1.0
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    kert_obs::set_gauge("agents.fleet.simulated_speedup", simulated_speedup);
    kert_obs::set_gauge("agents.fleet.size", options.n_agents as f64);

    Ok(FleetChaosReport {
        n_agents: options.n_agents,
        n_shards: options.shards.shards_for(options.n_agents),
        seed: options.seed,
        rows_per_window: options.rows_per_window,
        total_fresh: epochs.iter().map(|e| e.fresh).sum(),
        total_stale: epochs.iter().map(|e| e.stale).sum(),
        total_prior: epochs.iter().map(|e| e.prior).sum(),
        coordinator_crashes,
        warm_restores,
        simulated_speedup,
        fetches: fleet.fetches,
        rows_generated: fleet.rows_generated,
        final_fingerprint: epochs
            .last()
            .map(|e| e.cpd_fingerprint.clone())
            .unwrap_or_default(),
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_reports_are_deterministic_and_learnable() {
        let injector = FaultInjector::healthy(4);
        let fleet = SyntheticFleet::new(4, 16, 7, injector.clone());
        let a = fleet.pristine_report(2, 3);
        let b = SyntheticFleet::new(4, 16, 7, injector).pristine_report(2, 3);
        assert_eq!(a.row_ids, b.row_ids);
        assert_eq!(a.row_ids, (48..64).collect::<Vec<u64>>());
        assert_eq!(a.data.names(), &["X1".to_string(), "X2".to_string()]);
        for r in 0..a.data.rows() {
            assert_eq!(a.data.row(r), b.data.row(r), "row {r}");
        }
        // Values vary across rows (non-degenerate regression input).
        assert_ne!(a.data.row(0)[0], a.data.row(1)[0]);
    }

    #[test]
    fn healthy_fleet_learns_all_fresh_at_scale() {
        let options = ChaosOptions {
            n_agents: 64,
            rows_per_window: 16,
            epochs: 2,
            fault_rate: 0.0,
            shards: ShardConfig {
                n_shards: 4,
                ..ShardConfig::default()
            },
            ..ChaosOptions::default()
        };
        let report = run_fleet_chaos(&options).unwrap();
        assert_eq!(report.total_fresh, 2 * 64);
        assert_eq!(report.total_stale, 0);
        assert_eq!(report.total_prior, 0);
        assert_eq!(report.coordinator_crashes, 0);
        assert!(report.simulated_speedup > 1.0, "shards collect in parallel");
    }
}
