//! Model-health accounting for the self-healing learning runtime.
//!
//! A resilient rebuild always produces a *complete* network, but not every
//! node's CPD is equally trustworthy: faults may have forced a node down
//! the fallback ladder (fresh fit → last-good stale CPD → configured
//! prior). [`ModelHealth`] records, per node, which rung was used, how much
//! data backed it, and what went wrong on the way — the signal downstream
//! consumers (dComp routing, violation assessment, pAccel) use to decide
//! how much to trust the assembled model.

use kert_sim::FaultEvent;
use serde::{Deserialize, Serialize};

/// Which rung of the fallback ladder produced a node's CPD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpdSource {
    /// Learned from this window's (reconciled) report.
    Fresh,
    /// Re-used from an earlier window.
    Stale {
        /// Windows since the CPD was last freshly learned.
        age_windows: usize,
    },
    /// The configured prior/default CPD — no usable data ever arrived.
    Prior,
}

impl CpdSource {
    /// True for anything below the top rung.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, CpdSource::Fresh)
    }
}

/// One node's share of a resilient learning round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHealth {
    /// The network node.
    pub node: usize,
    /// Ladder rung that produced the CPD.
    pub source: CpdSource,
    /// Rows that actually fed the fit (0 unless `source` is `Fresh`).
    pub rows_used: usize,
    /// Rows discarded by reconciliation (non-finite values, outliers).
    pub rows_dropped: usize,
    /// Delivery retries spent collecting the report.
    pub retries: usize,
    /// Faults observed on this node's report path this window.
    pub faults: Vec<FaultEvent>,
}

impl NodeHealth {
    /// A healthy record: fresh fit, nothing dropped, no retries.
    pub fn fresh(node: usize, rows_used: usize) -> Self {
        NodeHealth {
            node,
            source: CpdSource::Fresh,
            rows_used,
            rows_dropped: 0,
            retries: 0,
            faults: Vec::new(),
        }
    }
}

/// Per-node health of one assembled model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelHealth {
    /// The window index this health report describes.
    pub window: usize,
    /// One record per learned node, node-ordered.
    pub nodes: Vec<NodeHealth>,
}

impl ModelHealth {
    /// An all-fresh report for `n` nodes trained on `rows` rows each — the
    /// health of a conventional (fault-free) build.
    pub fn all_fresh(n: usize, rows: usize) -> Self {
        ModelHealth {
            window: 0,
            nodes: (0..n).map(|node| NodeHealth::fresh(node, rows)).collect(),
        }
    }

    /// Nodes whose CPD did not come from a fresh fit.
    pub fn degraded_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|h| h.source.is_degraded())
            .map(|h| h.node)
            .collect()
    }

    /// True if any node is running on a stale or prior CPD.
    pub fn is_degraded(&self) -> bool {
        self.nodes.iter().any(|h| h.source.is_degraded())
    }

    /// Fraction of nodes with a fresh CPD (1.0 for an empty report).
    pub fn fresh_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        let fresh = self
            .nodes
            .iter()
            .filter(|h| h.source == CpdSource::Fresh)
            .count();
        fresh as f64 / self.nodes.len() as f64
    }

    /// `(fresh, stale, prior)` node counts.
    pub fn source_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for h in &self.nodes {
            match h.source {
                CpdSource::Fresh => counts.0 += 1,
                CpdSource::Stale { .. } => counts.1 += 1,
                CpdSource::Prior => counts.2 += 1,
            }
        }
        counts
    }

    /// Total faults observed across all nodes this window.
    pub fn total_faults(&self) -> usize {
        self.nodes.iter().map(|h| h.faults.len()).sum()
    }

    /// Oldest stale age across all nodes (0 when nothing is stale).
    ///
    /// Bounded by [`crate::CpdCache::MAX_AGE`] by construction — the cache
    /// saturates ages on tick — so the staleness gauge can never wrap.
    pub fn max_stale_age(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|h| match h.source {
                CpdSource::Stale { age_windows } => Some(age_windows),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fresh_is_not_degraded() {
        let h = ModelHealth::all_fresh(4, 100);
        assert!(!h.is_degraded());
        assert!(h.degraded_nodes().is_empty());
        assert_eq!(h.fresh_fraction(), 1.0);
        assert_eq!(h.source_counts(), (4, 0, 0));
        assert_eq!(h.total_faults(), 0);
    }

    #[test]
    fn degradation_is_detected_and_counted() {
        let mut h = ModelHealth::all_fresh(3, 50);
        h.nodes[1].source = CpdSource::Stale { age_windows: 2 };
        h.nodes[2].source = CpdSource::Prior;
        h.nodes[2].faults = vec![FaultEvent::Crashed];
        assert!(h.is_degraded());
        assert_eq!(h.degraded_nodes(), vec![1, 2]);
        assert!((h.fresh_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.source_counts(), (1, 1, 1));
        assert_eq!(h.total_faults(), 1);
        assert!(CpdSource::Stale { age_windows: 1 }.is_degraded());
        assert!(!CpdSource::Fresh.is_degraded());
    }

    #[test]
    fn empty_health_is_trivially_fresh() {
        let h = ModelHealth::default();
        assert!(!h.is_degraded());
        assert_eq!(h.fresh_fraction(), 1.0);
    }
}
