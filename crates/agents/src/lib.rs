//! # kert-agents — decentralized parameter learning (§3.4 of the paper)
//!
//! The CPD of node `i` depends only on the columns `{i} ∪ Φ(i)` — so it can
//! be learned *where the data lives*: on the monitoring agent of service
//! `i`, which already receives its parents' measurements piggybacked on
//! application traffic. All agents compute concurrently; the management
//! server only assembles the finished CPDs into the network. The effective
//! learning latency is therefore the **maximum** of per-node learning
//! times, versus the **sum** paid by a centralized learner — the comparison
//! of the paper's Figure 5.
//!
//! Modules:
//! * [`local`] — fit a node's CPD from an agent-local dataset (own +
//!   parent columns), remapping indices between local and network views.
//! * [`runtime`] — the concurrent execution: a scoped worker pool
//!   plays the agent fleet, one learning task per node, with per-task
//!   timing; plus the sequential centralized reference path.
//! * [`scheduler`] — the periodic reconstruction scheme of §2:
//!   `T_CON = α_model · T_DATA`, sliding window `W = K · T_CON`.
//! * [`collect`] — the lossy server-side data plane: fetch reports with
//!   bounded retry/backoff (simulated time), reconcile corrupted/partial
//!   batches by global request id.
//! * [`health`] — per-node [`ModelHealth`] accounting for resilient
//!   rebuilds: which fallback rung produced each CPD and why.
//! * [`shard`] — fleet-scale collection: agents partitioned into shards,
//!   each collected over an epoch barrier with per-shard retry budgets and
//!   straggler cutoffs, merged by row-id intersection.
//! * [`snapshot`] — crash-safe persistence of the coordinator's ladder
//!   state (CPD cache + ages + epoch cursor), versioned and checksummed,
//!   written atomically; a restarted coordinator resumes *warm*.
//! * [`fleet`] — simulated fleets of 10³+ agents with deterministic
//!   chaos (agent faults, shard partitions, coordinator crashes) driving
//!   the sharded collector and the snapshot/restore path end to end.
//! * [`streaming`] — the incremental alternative to the per-`T_CON`
//!   relearn: reports reconcile into joint rows that stream through a
//!   sliding window of sufficient statistics, `O(delta)` per period.

pub mod collect;
pub mod fleet;
pub mod health;
pub mod local;
pub mod runtime;
pub mod scheduler;
pub mod shard;
pub mod snapshot;
pub mod streaming;

pub use collect::{
    collect_report, intersect_row_ids, restrict_to_ids, sanitize_report, CollectStats, FaultyFleet,
    ReportSource, RetryPolicy,
};
pub use fleet::{run_fleet_chaos, ChaosOptions, EpochRecord, FleetChaosReport, SyntheticFleet};
pub use health::{CpdSource, ModelHealth, NodeHealth};
pub use local::{fit_node_from_local, LocalDataset};
pub use runtime::{
    centralized_learn, decentralized_learn, publish_health_gauges, resilient_decentralized_learn,
    CentralizedResult, CpdCache, DecentralizedResult, LearnOptions, PriorSpec, ResilientOptions,
    ResilientResult,
};
pub use scheduler::{CumulativeUpdater, ModelSchedule, ReconstructionWindow};
pub use shard::{
    collect_epoch, shard_of, shard_range, sharded_resilient_learn, EpochOutcome, ShardConfig,
    ShardStats, ShardedResult,
};
pub use snapshot::{
    load_snapshot, restore_or_cold_start, save_snapshot, CoordinatorSnapshot, SnapshotEntry,
    SnapshotError,
};
pub use streaming::{IngestSummary, StreamingCollector};

/// Errors from the decentralized runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentError {
    /// A learning task failed; carries the node and the underlying error.
    LearnFailed {
        /// Node whose CPD could not be learned.
        node: usize,
        /// Stringified cause.
        cause: String,
    },
    /// Local dataset columns don't match the node's parent set.
    BadLocalData(String),
    /// Schedule parameters out of range.
    BadSchedule(String),
    /// A runtime invariant was broken (poisoned lock, missing task slot).
    Internal(String),
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::LearnFailed { node, cause } => {
                write!(f, "learning CPD for node {node} failed: {cause}")
            }
            AgentError::BadLocalData(msg) => write!(f, "bad local dataset: {msg}"),
            AgentError::BadSchedule(msg) => write!(f, "bad schedule: {msg}"),
            AgentError::Internal(msg) => write!(f, "internal runtime error: {msg}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AgentError>;
