//! The periodic model-(re)construction scheme of §2.
//!
//! Two equations govern when models are rebuilt and on how much data:
//!
//! ```text
//! T_CON = α_model · T_DATA          (Eq. 2)
//! W     = K · T_CON                 (Eq. 1)
//! ```
//!
//! `T_DATA` is the monitoring cadence, `α_model` the Model Construction
//! Coefficient (how many collection intervals one construction interval
//! spans), and `K` the Environmental Correlation Metric (how many
//! construction intervals of history remain statistically relevant —
//! fast-changing autonomic environments get small `K`). `K · α_model` is
//! the number of data points available to each reconstruction.

use kert_bayes::Dataset;
use serde::{Deserialize, Serialize};

use crate::{AgentError, Result};

/// The paper's reconstruction-schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelSchedule {
    /// Data collection interval `T_DATA` (seconds).
    pub t_data: f64,
    /// Model construction coefficient `α_model` (collection intervals per
    /// construction interval).
    pub alpha_model: usize,
    /// Environmental correlation metric `K` (construction intervals of
    /// usable history).
    pub k: usize,
}

impl ModelSchedule {
    /// The §4 simulation setting: `T_DATA = 10 s`, `K = 3`.
    pub fn simulation_section(alpha_model: usize) -> Self {
        ModelSchedule {
            t_data: 10.0,
            alpha_model,
            k: 3,
        }
    }

    /// The §5 test-bed setting: `T_DATA = 20 s`, `α = 120` (`T_CON` =
    /// 20 min), `K = 10`.
    pub fn testbed_section() -> Self {
        ModelSchedule {
            t_data: 20.0,
            alpha_model: 120,
            k: 10,
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<()> {
        if self.t_data <= 0.0 || !self.t_data.is_finite() {
            return Err(AgentError::BadSchedule(format!("T_DATA = {}", self.t_data)));
        }
        if self.alpha_model == 0 {
            return Err(AgentError::BadSchedule("α_model = 0".into()));
        }
        if self.k == 0 {
            return Err(AgentError::BadSchedule("K = 0".into()));
        }
        Ok(())
    }

    /// Construction interval `T_CON = α_model · T_DATA` (seconds).
    pub fn t_con(&self) -> f64 {
        self.alpha_model as f64 * self.t_data
    }

    /// Sliding window `W = K · T_CON` (seconds).
    pub fn window(&self) -> f64 {
        self.k as f64 * self.t_con()
    }

    /// Data points available per reconstruction: `K · α_model`.
    pub fn points_per_window(&self) -> usize {
        self.k * self.alpha_model
    }

    /// Whether a model built in `build_time` seconds is *feasible* at this
    /// schedule: construction must finish before the next one is due.
    pub fn is_feasible(&self, build_time: f64) -> bool {
        build_time <= self.t_con()
    }
}

/// A sliding-window data buffer driving periodic reconstructions.
///
/// Feed it the dataset batch of each collection interval; every `α_model`
/// batches it signals that a reconstruction is due and exposes the last
/// `K · α_model` points as the training window.
#[derive(Debug, Clone)]
pub struct ReconstructionWindow {
    schedule: ModelSchedule,
    buffer: Dataset,
    batches_since_build: usize,
    rebuilds: usize,
}

impl ReconstructionWindow {
    /// Create an empty window for a dataset schema.
    pub fn new(schedule: ModelSchedule, column_names: Vec<String>) -> Result<Self> {
        schedule.validate()?;
        Ok(ReconstructionWindow {
            schedule,
            buffer: Dataset::new(column_names),
            batches_since_build: 0,
            rebuilds: 0,
        })
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &ModelSchedule {
        &self.schedule
    }

    /// Number of reconstructions triggered so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Push one collection interval's data (typically one row; bursty
    /// intervals may carry several). Returns the training window when a
    /// reconstruction is due, `None` otherwise.
    pub fn push_interval(&mut self, batch: &Dataset) -> Result<Option<Dataset>> {
        self.buffer
            .extend_from(batch)
            .map_err(|e| AgentError::BadLocalData(e.to_string()))?;
        self.batches_since_build += 1;
        if self.batches_since_build < self.schedule.alpha_model {
            return Ok(None);
        }
        self.batches_since_build = 0;
        self.rebuilds += 1;
        // Slide: keep at most W worth of rows (one row per interval makes
        // rows ≈ intervals; bursty feeds just keep the most recent points).
        let keep = self.schedule.points_per_window();
        self.buffer = self.buffer.tail(keep);
        Ok(Some(self.buffer.clone()))
    }
}

/// The naive alternative §2 argues against: *sequential update* without a
/// window. All data since the beginning of time feeds every rebuild, so
/// "out-of-date information lingers in the updated model and adversely
/// impacts its accuracy" after the environment changes. Implemented for
/// the update-vs-reconstruct ablation.
#[derive(Debug, Clone)]
pub struct CumulativeUpdater {
    alpha_model: usize,
    buffer: Dataset,
    batches_since_build: usize,
    rebuilds: usize,
}

impl CumulativeUpdater {
    /// Create an empty accumulator rebuilding every `alpha_model` batches.
    pub fn new(alpha_model: usize, column_names: Vec<String>) -> Result<Self> {
        if alpha_model == 0 {
            return Err(AgentError::BadSchedule("α_model = 0".into()));
        }
        Ok(CumulativeUpdater {
            alpha_model,
            buffer: Dataset::new(column_names),
            batches_since_build: 0,
            rebuilds: 0,
        })
    }

    /// Number of rebuilds triggered so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Rows accumulated so far (never shrinks — that is the point).
    pub fn accumulated_rows(&self) -> usize {
        self.buffer.rows()
    }

    /// Push one collection interval's data; returns the *entire history*
    /// as the training set when a rebuild is due.
    pub fn push_interval(&mut self, batch: &Dataset) -> Result<Option<Dataset>> {
        self.buffer
            .extend_from(batch)
            .map_err(|e| AgentError::BadLocalData(e.to_string()))?;
        self.batches_since_build += 1;
        if self.batches_since_build < self.alpha_model {
            return Ok(None);
        }
        self.batches_since_build = 0;
        self.rebuilds += 1;
        Ok(Some(self.buffer.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equations_1_and_2() {
        // The paper's §4 numbers: α = 12, T_DATA = 10 s, K = 3
        // → T_CON = 2 min, 36 points.
        let s = ModelSchedule::simulation_section(12);
        assert_eq!(s.t_con(), 120.0);
        assert_eq!(s.window(), 360.0);
        assert_eq!(s.points_per_window(), 36);
        // §4's largest setting: α = 360 → 1080 points, T_CON = 60 min.
        let big = ModelSchedule::simulation_section(360);
        assert_eq!(big.t_con(), 3600.0);
        assert_eq!(big.points_per_window(), 1080);
    }

    #[test]
    fn testbed_numbers() {
        // §5 quotes T_DATA = 20 s, α = 120, K = 10, "T_CON = 20 minutes" and
        // 1200 training points. The points figure (K·α = 1200) is consistent,
        // but α·T_DATA is 2400 s = 40 min, not 20 — a small arithmetic slip
        // in the paper. We keep Eq. 2 authoritative.
        let s = ModelSchedule::testbed_section();
        assert_eq!(s.t_con(), 2400.0);
        assert_eq!(s.points_per_window(), 1200);
    }

    #[test]
    fn feasibility_check() {
        let s = ModelSchedule::simulation_section(12);
        assert!(s.is_feasible(100.0));
        assert!(!s.is_feasible(121.0));
    }

    #[test]
    fn validation() {
        assert!(ModelSchedule {
            t_data: 0.0,
            alpha_model: 1,
            k: 1
        }
        .validate()
        .is_err());
        assert!(ModelSchedule {
            t_data: 1.0,
            alpha_model: 0,
            k: 1
        }
        .validate()
        .is_err());
        assert!(ModelSchedule {
            t_data: 1.0,
            alpha_model: 1,
            k: 0
        }
        .validate()
        .is_err());
    }

    fn one_row(v: f64) -> Dataset {
        Dataset::from_rows(vec!["x".into()], vec![vec![v]]).unwrap()
    }

    #[test]
    fn window_triggers_every_alpha_batches_and_slides() {
        let schedule = ModelSchedule {
            t_data: 1.0,
            alpha_model: 3,
            k: 2,
        };
        let mut w = ReconstructionWindow::new(schedule, vec!["x".into()]).unwrap();
        let mut windows = Vec::new();
        for i in 0..12 {
            if let Some(train) = w.push_interval(&one_row(i as f64)).unwrap() {
                windows.push(train);
            }
        }
        // 12 intervals / α=3 → 4 rebuilds.
        assert_eq!(windows.len(), 4);
        assert_eq!(w.rebuilds(), 4);
        // First rebuild sees 3 points; later ones are capped at K·α = 6.
        assert_eq!(windows[0].rows(), 3);
        assert_eq!(windows[1].rows(), 6);
        assert_eq!(windows[3].rows(), 6);
        // Sliding: the last window holds the 6 most recent values.
        let last = &windows[3];
        assert_eq!(last.column(0), vec![6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn cumulative_updater_never_forgets() {
        let mut u = CumulativeUpdater::new(2, vec!["x".into()]).unwrap();
        let mut trainings = Vec::new();
        for i in 0..8 {
            if let Some(t) = u.push_interval(&one_row(i as f64)).unwrap() {
                trainings.push(t);
            }
        }
        assert_eq!(u.rebuilds(), 4);
        // Training sets grow without bound: 2, 4, 6, 8 rows.
        let sizes: Vec<usize> = trainings.iter().map(|t| t.rows()).collect();
        assert_eq!(sizes, vec![2, 4, 6, 8]);
        // The very first value is still in the last training set.
        assert_eq!(trainings[3].get(0, 0), 0.0);
        assert!(CumulativeUpdater::new(0, vec!["x".into()]).is_err());
    }

    #[test]
    fn schema_mismatch_is_reported() {
        let schedule = ModelSchedule {
            t_data: 1.0,
            alpha_model: 2,
            k: 1,
        };
        let mut w = ReconstructionWindow::new(schedule, vec!["x".into()]).unwrap();
        let bad = Dataset::new(vec!["y".into()]);
        assert!(w.push_interval(&bad).is_err());
    }
}
