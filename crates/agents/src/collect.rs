//! Report collection for the management server: retry, backoff,
//! reconciliation.
//!
//! The conventional runtime ([`crate::runtime::decentralized_learn`])
//! assumes every agent's local dataset is simply *there*. This module
//! models the lossy path in between: the server asks each agent for its
//! window report, retries bounded times on loss (with exponential backoff
//! accounted in simulated windows, never wall-clock sleeps), tolerates
//! bounded straggling, and reconciles what arrives — dropping poisoned
//! rows and realigning partial batches by global request id.

use kert_bayes::Dataset;
use kert_sim::{AgentReport, Delivery, FaultEvent, FaultInjector, MonitoringAgent, Trace};

// Collection-path telemetry: every fetch attempt, retransmission, and
// simulated window spent waiting (backoff + accepted straggle). Crash
// short-circuits count separately because they end a collection outright.
static OBS_FETCHES: kert_obs::Counter = kert_obs::Counter::new("agents.collect.fetches");
static OBS_RETRIES: kert_obs::Counter = kert_obs::Counter::new("agents.collect.retries");
static OBS_WAITED: kert_obs::Counter = kert_obs::Counter::new("agents.collect.waited_windows");
static OBS_CRASH_ABORTS: kert_obs::Counter = kert_obs::Counter::new("agents.collect.crash_aborts");

/// Where the server gets its per-agent window reports from.
///
/// Abstracting the source keeps the self-healing learner testable: tests
/// can script arbitrary delivery sequences without building a simulator.
pub trait ReportSource {
    /// Number of agents in the fleet.
    fn n_agents(&self) -> usize;

    /// One delivery attempt of `agent`'s report for `window`.
    fn fetch(&mut self, agent: usize, window: usize, attempt: usize)
        -> (Delivery, Vec<FaultEvent>);

    /// Whether shard `shard` (of `n_shards`) is entirely unreachable for
    /// `window` — a network partition between the coordinator and a slice
    /// of the fleet. Sources without shard-level faults report `false`;
    /// the epoch collector short-circuits every fetch in a partitioned
    /// shard without spending its retry budget.
    fn shard_outage(&mut self, _shard: usize, _n_shards: usize, _window: usize) -> bool {
        false
    }
}

/// A fleet of monitoring agents reporting trace windows through a
/// [`FaultInjector`].
///
/// Row ids are global: window `w` starts at the cumulative row count of
/// windows `0..w`, so reports from different agents — and truncated or
/// straggling reports — stay alignable by id intersection.
pub struct FaultyFleet<'a> {
    agents: &'a [MonitoringAgent],
    windows: &'a [Trace],
    injector: &'a FaultInjector,
    /// `window_starts[w]` = global id of the first row of window `w`.
    window_starts: Vec<u64>,
}

impl<'a> FaultyFleet<'a> {
    /// Build a fleet over pre-sliced trace windows.
    pub fn new(
        agents: &'a [MonitoringAgent],
        windows: &'a [Trace],
        injector: &'a FaultInjector,
    ) -> Self {
        let mut window_starts = Vec::with_capacity(windows.len());
        let mut start = 0u64;
        for w in windows {
            window_starts.push(start);
            start += w.len() as u64;
        }
        FaultyFleet {
            agents,
            windows,
            injector,
            window_starts,
        }
    }

    /// Number of trace windows available.
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }
}

impl ReportSource for FaultyFleet<'_> {
    fn n_agents(&self) -> usize {
        self.agents.len()
    }

    fn fetch(
        &mut self,
        agent: usize,
        window: usize,
        attempt: usize,
    ) -> (Delivery, Vec<FaultEvent>) {
        if window >= self.windows.len() {
            return (Delivery::Missing, Vec::new());
        }
        let report =
            self.agents[agent].report_window(&self.windows[window], self.window_starts[window]);
        self.injector.deliver(agent, window, attempt, &report)
    }

    fn shard_outage(&mut self, shard: usize, n_shards: usize, window: usize) -> bool {
        self.injector.shard_partitioned(shard, n_shards, window)
    }
}

/// Retry/backoff policy for one report collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions after the first attempt (so `max_retries + 1`
    /// attempts total).
    pub max_retries: usize,
    /// Maximum straggle (in windows) the server waits out; a report
    /// delayed longer counts as missing for this window.
    pub patience_windows: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            patience_windows: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and accepts no straggle — the
    /// collector's straggler-cutoff mode once a shard's epoch budget is
    /// exhausted.
    pub fn cutoff() -> Self {
        RetryPolicy {
            max_retries: 0,
            patience_windows: 0,
        }
    }

    /// Simulated windows charged for the backoff after retry `attempt`.
    ///
    /// Exponential (`2^attempt`) but *saturating*: a pathological retry
    /// budget (or a caller looping attempts externally) must never wrap
    /// the `u64` simulated clock — it pins at `u64::MAX` instead.
    pub fn backoff_windows(attempt: usize) -> u64 {
        u32::try_from(attempt)
            .ok()
            .and_then(|a| 1u64.checked_shl(a))
            .unwrap_or(u64::MAX)
    }
}

/// Accounting for one collection: what it cost and what was observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectStats {
    /// Retransmissions performed (0 = first attempt succeeded).
    pub retries: usize,
    /// Simulated windows spent waiting (saturating backoff 2^i per retry,
    /// plus any accepted straggle) — saturating, never wrapping.
    pub waited_windows: u64,
    /// Every fault event seen across all attempts.
    pub faults: Vec<FaultEvent>,
}

/// Collect one agent's report for `window`, retrying on loss.
///
/// Deterministic: backoff is pure accounting in simulated windows (each
/// retry `i` costs `2^i` windows), never a wall-clock sleep, and each
/// attempt keys fresh randomness in the source.
pub fn collect_report(
    source: &mut dyn ReportSource,
    agent: usize,
    window: usize,
    policy: &RetryPolicy,
) -> (Option<AgentReport>, CollectStats) {
    let mut stats = CollectStats::default();
    for attempt in 0..=policy.max_retries {
        OBS_FETCHES.incr();
        let (delivery, events) = source.fetch(agent, window, attempt);
        let crashed = events.contains(&FaultEvent::Crashed);
        stats.faults.extend(events);
        match delivery {
            Delivery::Delivered(report) => return (Some(report), stats),
            Delivery::Delayed { windows, report } if windows <= policy.patience_windows => {
                stats.waited_windows = stats.waited_windows.saturating_add(windows as u64);
                OBS_WAITED.add(windows as u64);
                return (Some(report), stats);
            }
            Delivery::Delayed { .. } | Delivery::Missing => {
                if crashed {
                    // A crashed agent never answers; retrying is pointless.
                    OBS_CRASH_ABORTS.incr();
                    return (None, stats);
                }
                if attempt < policy.max_retries {
                    let backoff = RetryPolicy::backoff_windows(attempt);
                    stats.retries += 1;
                    stats.waited_windows = stats.waited_windows.saturating_add(backoff);
                    OBS_RETRIES.incr();
                    OBS_WAITED.add(backoff);
                }
            }
        }
    }
    (None, stats)
}

/// Drop rows containing any non-finite value; returns the number dropped.
///
/// Corruption poisons individual rows (NaN / missing readings); the rest
/// of the batch is still good data, so reconciliation salvages it instead
/// of discarding the report.
pub fn sanitize_report(report: &mut AgentReport) -> usize {
    let rows = report.data.rows();
    let keep: Vec<usize> = (0..rows)
        .filter(|&r| report.data.row(r).iter().all(|v| v.is_finite()))
        .collect();
    if keep.len() == rows {
        return 0;
    }
    let dropped = rows - keep.len();
    let mut data = Dataset::new(report.data.names().to_vec());
    let mut row_ids = Vec::with_capacity(keep.len());
    for &r in &keep {
        data.push_row(report.data.row(r).to_vec())
            .expect("sanitized rows keep the report's width");
        if let Some(&id) = report.row_ids.get(r) {
            row_ids.push(id);
        }
    }
    report.data = data;
    report.row_ids = row_ids;
    dropped
}

/// Restrict a report to the rows whose ids appear in `ids` (ascending
/// intersection). Returns the number of rows removed.
///
/// This is the server-side realignment step: when agents ship partial or
/// sanitized batches, positional alignment is gone, but the shared global
/// ids recover which measurements belong to the same request.
pub fn restrict_to_ids(report: &mut AgentReport, ids: &[u64]) -> usize {
    let rows = report.data.rows();
    let keep: Vec<usize> = report
        .row_ids
        .iter()
        .enumerate()
        .filter(|(_, id)| ids.binary_search(id).is_ok())
        .map(|(r, _)| r)
        .collect();
    if keep.len() == rows {
        return 0;
    }
    let removed = rows - keep.len();
    let mut data = Dataset::new(report.data.names().to_vec());
    let mut row_ids = Vec::with_capacity(keep.len());
    for &r in &keep {
        data.push_row(report.data.row(r).to_vec())
            .expect("restricted rows keep the report's width");
        row_ids.push(report.row_ids[r]);
    }
    report.data = data;
    report.row_ids = row_ids;
    removed
}

/// Ascending intersection of the row-id sets of several reports.
pub fn intersect_row_ids(reports: &[&AgentReport]) -> Vec<u64> {
    let Some((first, rest)) = reports.split_first() else {
        return Vec::new();
    };
    let mut ids: Vec<u64> = first.row_ids.clone();
    ids.sort_unstable();
    for report in rest {
        let mut other: Vec<u64> = report.row_ids.clone();
        other.sort_unstable();
        ids.retain(|id| other.binary_search(id).is_ok());
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_sim::FaultPlan;
    use kert_sim::Trace;

    fn demo_windows(n_services: usize, windows: usize, rows: usize) -> Vec<Trace> {
        let mut t = Trace::new(n_services);
        for i in 0..(windows * rows) {
            t.push(kert_sim::trace::TraceRow {
                completed_at: i as f64,
                elapsed: (0..n_services)
                    .map(|s| 0.1 * (s + 1) as f64 + i as f64)
                    .collect(),
                response_time: 1.0,
                resources: Vec::new(),
            });
        }
        t.windows(rows)
    }

    fn demo_agents() -> Vec<MonitoringAgent> {
        vec![
            MonitoringAgent::new(0, vec![]),
            MonitoringAgent::new(1, vec![0]),
        ]
    }

    #[test]
    fn healthy_fleet_delivers_first_try_with_global_ids() {
        let agents = demo_agents();
        let windows = demo_windows(2, 3, 4);
        let injector = FaultInjector::healthy(2);
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        assert_eq!(fleet.n_windows(), 3);
        let (report, stats) = collect_report(&mut fleet, 1, 2, &RetryPolicy::default());
        let report = report.expect("healthy delivery");
        assert_eq!(report.row_ids, vec![8, 9, 10, 11]);
        assert_eq!(stats, CollectStats::default());
    }

    #[test]
    fn crash_short_circuits_retries() {
        let agents = demo_agents();
        let windows = demo_windows(2, 2, 4);
        let injector =
            FaultInjector::new(1, vec![FaultPlan::healthy(), FaultPlan::crash_at(0)]).unwrap();
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let (report, stats) = collect_report(&mut fleet, 1, 0, &RetryPolicy::default());
        assert!(report.is_none());
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.faults, vec![FaultEvent::Crashed]);
    }

    #[test]
    fn drops_are_retried_with_exponential_backoff() {
        struct Script {
            failures: usize,
            calls: usize,
        }
        impl ReportSource for Script {
            fn n_agents(&self) -> usize {
                1
            }
            fn fetch(
                &mut self,
                _agent: usize,
                _window: usize,
                attempt: usize,
            ) -> (Delivery, Vec<FaultEvent>) {
                self.calls += 1;
                if attempt < self.failures {
                    (Delivery::Missing, vec![FaultEvent::Dropped])
                } else {
                    let trace = demo_windows(2, 1, 3).remove(0);
                    let report = MonitoringAgent::new(1, vec![0]).report(&trace);
                    (Delivery::Delivered(report), Vec::new())
                }
            }
        }
        let mut source = Script {
            failures: 2,
            calls: 0,
        };
        let policy = RetryPolicy {
            max_retries: 2,
            patience_windows: 1,
        };
        let (report, stats) = collect_report(&mut source, 0, 0, &policy);
        assert!(report.is_some());
        assert_eq!(source.calls, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.waited_windows, 1 + 2); // 2^0 + 2^1
        assert_eq!(stats.faults, vec![FaultEvent::Dropped, FaultEvent::Dropped]);

        // Exhausted retries → None.
        let mut source = Script {
            failures: 5,
            calls: 0,
        };
        let (report, stats) = collect_report(&mut source, 0, 0, &policy);
        assert!(report.is_none());
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        // Small attempts keep the exact exponential schedule…
        assert_eq!(RetryPolicy::backoff_windows(0), 1);
        assert_eq!(RetryPolicy::backoff_windows(10), 1024);
        assert_eq!(RetryPolicy::backoff_windows(63), 1 << 63);
        // …and anything that would overflow the u64 simulated clock pins
        // at the maximum rather than wrapping to a tiny (or zero) delay.
        assert_eq!(RetryPolicy::backoff_windows(64), u64::MAX);
        assert_eq!(RetryPolicy::backoff_windows(1_000_000), u64::MAX);
        assert_eq!(RetryPolicy::backoff_windows(usize::MAX), u64::MAX);

        // An absurd retry budget accumulates to saturation, not a wrap.
        struct AlwaysMissing;
        impl ReportSource for AlwaysMissing {
            fn n_agents(&self) -> usize {
                1
            }
            fn fetch(
                &mut self,
                _agent: usize,
                _window: usize,
                _attempt: usize,
            ) -> (Delivery, Vec<FaultEvent>) {
                (Delivery::Missing, vec![FaultEvent::Dropped])
            }
        }
        let policy = RetryPolicy {
            max_retries: 80,
            patience_windows: 0,
        };
        let (report, stats) = collect_report(&mut AlwaysMissing, 0, 0, &policy);
        assert!(report.is_none());
        assert_eq!(stats.retries, 80);
        assert_eq!(stats.waited_windows, u64::MAX);
    }

    #[test]
    fn straggler_within_patience_is_accepted() {
        let agents = demo_agents();
        let windows = demo_windows(2, 1, 4);
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_windows: 1,
            ..FaultPlan::healthy()
        };
        let injector = FaultInjector::new(2, vec![FaultPlan::healthy(), plan]).unwrap();
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let (report, stats) = collect_report(&mut fleet, 1, 0, &RetryPolicy::default());
        assert!(report.is_some());
        assert_eq!(stats.waited_windows, 1);
        assert_eq!(stats.faults, vec![FaultEvent::Delayed { windows: 1 }]);
    }

    #[test]
    fn straggler_beyond_patience_counts_as_missing() {
        let agents = demo_agents();
        let windows = demo_windows(2, 1, 4);
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_windows: 5,
            ..FaultPlan::healthy()
        };
        let injector = FaultInjector::new(2, vec![FaultPlan::healthy(), plan]).unwrap();
        let mut fleet = FaultyFleet::new(&agents, &windows, &injector);
        let (report, stats) = collect_report(&mut fleet, 1, 0, &RetryPolicy::default());
        assert!(report.is_none());
        assert_eq!(stats.retries, 2);
        assert_eq!(
            stats.faults,
            vec![
                FaultEvent::Delayed { windows: 5 },
                FaultEvent::Delayed { windows: 5 },
                FaultEvent::Delayed { windows: 5 }
            ]
        );
    }

    #[test]
    fn sanitize_drops_only_poisoned_rows() {
        let trace = demo_windows(2, 1, 5).remove(0);
        let mut report = MonitoringAgent::new(1, vec![0]).report(&trace);
        // Poison rows 1 and 3.
        let mut data = Dataset::new(report.data.names().to_vec());
        for r in 0..report.data.rows() {
            let mut row = report.data.row(r).to_vec();
            if r == 1 {
                row[0] = f64::NAN;
            }
            if r == 3 {
                row[1] = f64::INFINITY;
            }
            data.push_row(row).unwrap();
        }
        report.data = data;
        let dropped = sanitize_report(&mut report);
        assert_eq!(dropped, 2);
        assert_eq!(report.data.rows(), 3);
        assert_eq!(report.row_ids, vec![0, 2, 4]);
        assert_eq!(sanitize_report(&mut report), 0);
    }

    #[test]
    fn id_intersection_realigns_partial_reports() {
        let trace = demo_windows(2, 1, 6).remove(0);
        let full = MonitoringAgent::new(0, vec![]).report(&trace);
        let mut partial = MonitoringAgent::new(1, vec![0]).report(&trace);
        // Simulate truncation to the first 3 rows.
        let mut data = Dataset::new(partial.data.names().to_vec());
        for r in 0..3 {
            data.push_row(partial.data.row(r).to_vec()).unwrap();
        }
        partial.data = data;
        partial.row_ids.truncate(3);

        let shared = intersect_row_ids(&[&full, &partial]);
        assert_eq!(shared, vec![0, 1, 2]);
        let mut full = full;
        assert_eq!(restrict_to_ids(&mut full, &shared), 3);
        assert_eq!(full.data.rows(), 3);
        assert_eq!(full.row_ids, shared);

        assert!(intersect_row_ids(&[]).is_empty());
    }
}
