//! Crash-safe persistence for the fallback ladder: versioned, checksummed
//! coordinator snapshots.
//!
//! The self-healing runtime's whole value is the [`CpdCache`]: when a
//! window's report is unusable, the ladder serves the last-good CPD
//! instead of the zero-knowledge prior. But PR 2 kept that cache in
//! coordinator memory only — a coordinator restart forgot every last-good
//! CPD and the next faulty window fell straight to the prior rung. This
//! module makes the ladder survive the coordinator itself:
//!
//! * [`CoordinatorSnapshot`] serializes the cache (CPDs **and** their
//!   ages) plus the coordinator's epoch cursor;
//! * [`save_snapshot`] is atomic (write to a temp file in the same
//!   directory, then rename), so a crash mid-write leaves the previous
//!   snapshot intact, never a half-written one;
//! * the on-disk format is a one-line header — magic, format version,
//!   FNV-1a-64 checksum, body length — followed by a JSON body.
//!   [`load_snapshot`] verifies all four before parsing, so truncation,
//!   bit flips, version skew, and foreign files are *detected* and
//!   surfaced as typed [`SnapshotError`]s — the caller degrades to the
//!   prior rung (an empty cache); it never panics and never silently
//!   loads garbage as a model.
//!
//! JSON is an exact carrier here: CPD parameters are finite `f64`s, and
//! Rust's float formatting/parsing is shortest-round-trip, so
//! snapshot → restore → snapshot is bitwise-identical (property-tested in
//! `tests/snapshot.rs`).

use std::io::Write;
use std::path::{Path, PathBuf};

use kert_bayes::cpd::Cpd;
use serde::{Deserialize, Serialize};

use crate::runtime::CpdCache;

// Persistence telemetry: saves/restores succeed silently in the happy
// path, so the counters are the only trace that warm restarts are
// actually exercising the snapshot path (the fleet CI gate checks them).
static OBS_SAVES: kert_obs::Counter = kert_obs::Counter::new("agents.snapshot.saves");
static OBS_RESTORES: kert_obs::Counter = kert_obs::Counter::new("agents.snapshot.restores");
static OBS_REJECTED: kert_obs::Counter = kert_obs::Counter::new("agents.snapshot.rejected");

/// Magic tag opening every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "KERTSNAP";
/// Current snapshot format version. Bump on any body-schema change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One cached CPD with its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Network node the CPD belongs to.
    pub node: usize,
    /// Age in windows at capture time (how stale a warm restore starts).
    pub age: usize,
    /// The last-good CPD itself.
    pub cpd: Cpd,
}

/// Everything a restarted coordinator needs to resume the ladder warm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoordinatorSnapshot {
    /// Format version (checked against [`SNAPSHOT_VERSION`] on load).
    pub version: u32,
    /// Epochs completed before the capture (the restore resumes at
    /// `epoch`).
    pub epoch: u64,
    /// Window cursor of the collection loop.
    pub window: usize,
    /// Node count of the model (cache slots, occupied or not).
    pub n_nodes: usize,
    /// The occupied cache slots, node-ordered.
    pub entries: Vec<SnapshotEntry>,
}

impl CoordinatorSnapshot {
    /// Capture the coordinator's ladder state at the end of an epoch.
    pub fn capture(cache: &CpdCache, epoch: u64, window: usize) -> Self {
        CoordinatorSnapshot {
            version: SNAPSHOT_VERSION,
            epoch,
            window,
            n_nodes: cache.len(),
            entries: cache
                .iter()
                .map(|(node, cpd, age)| SnapshotEntry {
                    node,
                    age,
                    cpd: cpd.clone(),
                })
                .collect(),
        }
    }

    /// Rebuild the cache this snapshot captured: every entry comes back
    /// *stale at its recorded age*, not reset and not forgotten.
    pub fn restore_cache(&self) -> CpdCache {
        let mut cache = CpdCache::new(self.n_nodes);
        for entry in &self.entries {
            cache.store_aged(entry.node, entry.cpd.clone(), entry.age);
        }
        cache
    }
}

/// Why a snapshot failed to save or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (also covers a missing file on load).
    Io(std::io::Error),
    /// The file does not start with the `KERTSNAP` header.
    BadMagic,
    /// Header fields are present but unparsable.
    BadHeader(String),
    /// The header's format version is not [`SNAPSHOT_VERSION`].
    BadVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The body is shorter than the header promised (torn write).
    Truncated {
        /// Bytes the header declared.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The body's FNV-1a checksum does not match the header (bit rot).
    BadChecksum,
    /// The body passed the checksum but is not a valid snapshot document.
    Parse(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a {SNAPSHOT_MAGIC} snapshot file"),
            SnapshotError::BadHeader(msg) => write!(f, "malformed snapshot header: {msg}"),
            SnapshotError::BadVersion { found } => write!(
                f,
                "snapshot format v{found} unsupported (this build reads v{SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { expected, found } => {
                write!(
                    f,
                    "snapshot truncated: header promised {expected} body bytes, found {found}"
                )
            }
            SnapshotError::BadChecksum => write!(f, "snapshot body fails its checksum"),
            SnapshotError::Parse(msg) => write!(f, "snapshot body does not parse: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit over the body bytes — dependency-free and plenty for
/// detecting torn writes and bit rot (this is an integrity check, not an
/// authentication scheme).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialize a snapshot into its on-disk byte form (header + JSON body).
pub fn encode_snapshot(snapshot: &CoordinatorSnapshot) -> Result<Vec<u8>, SnapshotError> {
    let body = serde_json::to_string(snapshot).map_err(|e| SnapshotError::Parse(e.to_string()))?;
    let header = format!(
        "{SNAPSHOT_MAGIC} v{} {:016x} {}\n",
        snapshot.version,
        fnv1a64(body.as_bytes()),
        body.len()
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    Ok(bytes)
}

/// Parse and verify on-disk bytes back into a snapshot.
pub fn decode_snapshot(bytes: &[u8]) -> Result<CoordinatorSnapshot, SnapshotError> {
    let text = std::str::from_utf8(bytes).map_err(|_| SnapshotError::BadMagic)?;
    let Some((header, body)) = text.split_once('\n') else {
        return Err(SnapshotError::BadMagic);
    };
    let mut fields = header.split(' ');
    if fields.next() != Some(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version: u32 = fields
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .ok_or_else(|| SnapshotError::BadHeader("missing version".into()))?
        .parse()
        .map_err(|_| SnapshotError::BadHeader("unparsable version".into()))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let checksum = u64::from_str_radix(
        fields
            .next()
            .ok_or_else(|| SnapshotError::BadHeader("missing checksum".into()))?,
        16,
    )
    .map_err(|_| SnapshotError::BadHeader("unparsable checksum".into()))?;
    let length: usize = fields
        .next()
        .ok_or_else(|| SnapshotError::BadHeader("missing length".into()))?
        .parse()
        .map_err(|_| SnapshotError::BadHeader("unparsable length".into()))?;
    if fields.next().is_some() {
        return Err(SnapshotError::BadHeader("trailing header fields".into()));
    }
    if body.len() != length {
        return Err(SnapshotError::Truncated {
            expected: length,
            found: body.len(),
        });
    }
    if fnv1a64(body.as_bytes()) != checksum {
        return Err(SnapshotError::BadChecksum);
    }
    let snapshot: CoordinatorSnapshot =
        serde_json::from_str(body).map_err(|e| SnapshotError::Parse(e.to_string()))?;
    if snapshot.version != version {
        return Err(SnapshotError::Parse(format!(
            "body version {} disagrees with header v{version}",
            snapshot.version
        )));
    }
    Ok(snapshot)
}

/// Atomically persist a snapshot: write `<path>.tmp`, flush, rename.
///
/// A crash before the rename leaves the previous snapshot (if any)
/// untouched; a crash after it leaves the new one complete. There is no
/// window in which `path` holds a partial file.
pub fn save_snapshot(path: &Path, snapshot: &CoordinatorSnapshot) -> Result<(), SnapshotError> {
    let bytes = encode_snapshot(snapshot)?;
    let tmp: PathBuf = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        PathBuf::from(name)
    };
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    OBS_SAVES.incr();
    Ok(())
}

/// Load and verify a snapshot.
///
/// Every failure mode — missing file, torn write, bit flip, version skew,
/// junk content — comes back as a typed [`SnapshotError`]; the caller's
/// correct response is to start with an empty cache (prior rung) and keep
/// serving. This function never panics on file content.
pub fn load_snapshot(path: &Path) -> Result<CoordinatorSnapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    match decode_snapshot(&bytes) {
        Ok(snapshot) => {
            OBS_RESTORES.incr();
            Ok(snapshot)
        }
        Err(e) => {
            OBS_REJECTED.incr();
            Err(e)
        }
    }
}

/// Load a snapshot if a valid one exists, else fall back to an empty
/// cache — the "resume warm, degrade cold, never crash" restart policy.
///
/// Returns the cache to resume with, the epoch to resume from, and the
/// load error (if any) so callers can log why a restart came up cold.
pub fn restore_or_cold_start(
    path: &Path,
    n_nodes: usize,
) -> (CpdCache, u64, Option<SnapshotError>) {
    match load_snapshot(path) {
        Ok(snapshot) => {
            let cache = snapshot.restore_cache();
            let epoch = snapshot.epoch;
            (cache, epoch, None)
        }
        Err(e) => (CpdCache::new(n_nodes), 0, Some(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::cpd::LinearGaussianCpd;

    fn demo_cache() -> CpdCache {
        let mut cache = CpdCache::new(3);
        cache.store(
            0,
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 0.25, 1.5)),
        );
        cache.store_aged(
            2,
            Cpd::LinearGaussian(LinearGaussianCpd::new(2, vec![1], 0.1, vec![0.75], 0.5).unwrap()),
            7,
        );
        cache
    }

    #[test]
    fn capture_restore_preserves_cpds_and_ages() {
        let cache = demo_cache();
        let snap = CoordinatorSnapshot::capture(&cache, 4, 9);
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.n_nodes, 3);
        assert_eq!(snap.entries.len(), 2);
        let restored = snap.restore_cache();
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.get(0).unwrap().1, 0);
        assert_eq!(restored.get(2).unwrap().1, 7);
        assert!(restored.get(1).is_none());
        // Bitwise identity through the encode/decode cycle.
        let bytes = encode_snapshot(&snap).unwrap();
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(encode_snapshot(&back).unwrap(), bytes);
    }

    #[test]
    fn corruption_is_detected_not_parsed() {
        let snap = CoordinatorSnapshot::capture(&demo_cache(), 1, 2);
        let bytes = encode_snapshot(&snap).unwrap();

        // Truncation (torn write).
        let torn = &bytes[..bytes.len() - 3];
        assert!(matches!(
            decode_snapshot(torn),
            Err(SnapshotError::Truncated { .. })
        ));

        // A single flipped bit in the body.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 5;
        flipped[last] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&flipped),
            Err(SnapshotError::BadChecksum) | Err(SnapshotError::Truncated { .. })
        ));

        // Foreign file.
        assert!(matches!(
            decode_snapshot(b"{\"not\": \"a snapshot\"}\n{}"),
            Err(SnapshotError::BadMagic)
        ));

        // Version skew.
        let skewed =
            String::from_utf8(bytes.clone())
                .unwrap()
                .replacen("KERTSNAP v1 ", "KERTSNAP v9 ", 1);
        assert!(matches!(
            decode_snapshot(skewed.as_bytes()),
            Err(SnapshotError::BadVersion { found: 9 })
        ));
    }

    #[test]
    fn atomic_save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("kert_snap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coordinator.snap");
        let snap = CoordinatorSnapshot::capture(&demo_cache(), 11, 3);
        save_snapshot(&path, &snap).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(
            encode_snapshot(&loaded).unwrap(),
            encode_snapshot(&snap).unwrap()
        );
        // No temp-file litter after a successful save.
        assert!(!dir.join("coordinator.snap.tmp").exists());

        // Overwrite is atomic too: the new snapshot fully replaces the old.
        let snap2 = CoordinatorSnapshot::capture(&demo_cache(), 12, 4);
        save_snapshot(&path, &snap2).unwrap();
        assert_eq!(load_snapshot(&path).unwrap().epoch, 12);

        // Missing file → Io, and the cold-start helper degrades cleanly.
        let missing = dir.join("nope.snap");
        assert!(matches!(load_snapshot(&missing), Err(SnapshotError::Io(_))));
        let (cache, epoch, err) = restore_or_cold_start(&missing, 5);
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 5);
        assert_eq!(epoch, 0);
        assert!(err.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
