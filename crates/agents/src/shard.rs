//! Sharded epoch collection: fleet-scale report gathering.
//!
//! PR 2's collector polls agents one by one — fine for a six-service
//! test-bed, hopeless for ROADMAP item 4's 10³–10⁴-agent fleets, where a
//! single straggling shard would stall the whole epoch and one switch
//! failure looks like a thousand independent agent crashes. This module
//! replaces per-agent polling with a **sharded epoch barrier**:
//!
//! * agents are partitioned into contiguous shards
//!   ([`shard_of`]/[`shard_range`]);
//! * each shard runs [`collect_report`] over its members with a per-shard
//!   **retry/backoff budget** in simulated windows — once a shard has
//!   burned its budget, remaining members are collected under the
//!   **straggler cutoff** policy ([`RetryPolicy::cutoff`]: no retries, no
//!   patience), so one noisy shard can never stretch the epoch unboundedly;
//! * a whole shard can be partitioned away
//!   ([`ReportSource::shard_outage`], seeded in `kert_sim::faults`), which
//!   short-circuits every fetch in it and feeds the fallback ladder
//!   exactly like per-agent crashes do;
//! * delivered reports merge into one epoch view via the existing row-id
//!   intersection ([`intersect_row_ids`]/[`restrict_to_ids`]): the
//!   coordinator's dataset is the set of requests *every* reporting agent
//!   measured, so partial shards realign instead of misaligning.
//!
//! Collection order is agent order within shard order and every random
//! decision is keyed in the (seeded) source, so an epoch is bitwise
//! deterministic — and, as long as no budget cutoff or shard partition
//! fires, the *outcome* is independent of the shard count (asserted in
//! `tests/fleet.rs`).

use kert_sim::{AgentReport, FaultEvent};

use crate::collect::{
    collect_report, intersect_row_ids, restrict_to_ids, sanitize_report, CollectStats,
    ReportSource, RetryPolicy,
};
use crate::health::ModelHealth;
use crate::runtime::{ladder_resolve, publish_health_gauges, CpdCache, ResilientOptions};
use crate::{AgentError, Result};
use kert_bayes::{Cpd, Dag, Variable};

// Epoch-collector telemetry: shard-level outcomes per epoch. The fleet
// gauges (`agents.fleet.*`) show the latest epoch; counters accumulate.
static OBS_EPOCHS: kert_obs::Counter = kert_obs::Counter::new("agents.collect.epochs");
static OBS_SHARD_CUTOFFS: kert_obs::Counter = kert_obs::Counter::new("agents.collect.cutoffs");
static OBS_SHARD_PARTITIONS: kert_obs::Counter =
    kert_obs::Counter::new("agents.collect.shard_partitions");

/// How an epoch's shards are laid out and bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards the fleet is partitioned into (≥ 1; clamped to
    /// the agent count).
    pub n_shards: usize,
    /// Per-shard retry/backoff budget per epoch, in simulated windows.
    /// Once spent, the shard's remaining members are collected under the
    /// straggler-cutoff policy. `u64::MAX` = unbounded.
    pub budget_windows: u64,
    /// Merge delivered reports onto their common row-id set (the global
    /// alignment step). Disable to keep every delivered row per node.
    pub align_rows: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            n_shards: 8,
            budget_windows: u64::MAX,
            align_rows: true,
        }
    }
}

impl ShardConfig {
    /// Effective shard count for a fleet of `n_agents`.
    pub fn shards_for(&self, n_agents: usize) -> usize {
        self.n_shards.clamp(1, n_agents.max(1))
    }
}

/// The contiguous agent range of shard `shard` (of `n_shards`) in a fleet
/// of `n_agents`. Ranges tile `0..n_agents` and differ in size by ≤ 1.
pub fn shard_range(shard: usize, n_agents: usize, n_shards: usize) -> std::ops::Range<usize> {
    let k = n_shards.clamp(1, n_agents.max(1));
    (shard * n_agents / k)..((shard + 1) * n_agents / k)
}

/// Which shard an agent belongs to under the contiguous partition.
pub fn shard_of(agent: usize, n_agents: usize, n_shards: usize) -> usize {
    let k = n_shards.clamp(1, n_agents.max(1));
    // Inverse of `shard_range`: the unique s with s·n/k ≤ agent < (s+1)·n/k.
    let s = (agent * k + k - 1) / n_agents.max(1);
    s.min(k - 1)
}

/// One shard's accounting for one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Agents assigned to this shard.
    pub agents: usize,
    /// Reports that arrived (possibly after retries/straggle).
    pub delivered: usize,
    /// Agents that delivered nothing usable this epoch.
    pub missing: usize,
    /// Retransmissions spent across the shard.
    pub retries: usize,
    /// Simulated windows the shard spent waiting (backoff + straggle).
    pub waited_windows: u64,
    /// Members collected under the straggler-cutoff policy after the
    /// budget ran out.
    pub cutoff_agents: usize,
    /// Whether the whole shard was partitioned away this window.
    pub partitioned: bool,
    /// Simulated collection time of this shard: one window per fetch
    /// attempt plus every waited window. Shards run concurrently (one
    /// collector task per shard), so the epoch's simulated latency is the
    /// max over shards while a sequential collector would pay the sum.
    pub sim_windows: u64,
}

/// Everything one epoch of collection produced.
#[derive(Debug)]
pub struct EpochOutcome {
    /// The window collected.
    pub window: usize,
    /// Per-agent sanitized (and, if configured, row-aligned) reports;
    /// `None` where nothing usable arrived.
    pub reports: Vec<Option<AgentReport>>,
    /// Per-agent collection stats (retries, waits, fault events).
    pub stats: Vec<CollectStats>,
    /// Per-agent rows dropped by sanitization + row alignment.
    pub rows_dropped: Vec<usize>,
    /// Per-shard accounting.
    pub shards: Vec<ShardStats>,
    /// The merged row-id set shared by every delivered report (empty when
    /// nothing was delivered).
    pub common_rows: Vec<u64>,
}

impl EpochOutcome {
    /// `Σ shard sim_windows / max shard sim_windows` — the simulated
    /// speedup of collecting shards concurrently instead of sequentially.
    pub fn simulated_speedup(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.sim_windows).max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let total: u64 = self.shards.iter().map(|s| s.sim_windows).sum();
        total as f64 / max as f64
    }

    /// Fraction of agents that delivered nothing usable this epoch.
    pub fn loss_rate(&self) -> f64 {
        let n = self.reports.len();
        if n == 0 {
            return 0.0;
        }
        self.reports.iter().filter(|r| r.is_none()).count() as f64 / n as f64
    }
}

/// Collect one window from every agent, shard by shard, under per-shard
/// budgets — the epoch barrier of the fleet-scale collector.
pub fn collect_epoch(
    source: &mut dyn ReportSource,
    window: usize,
    policy: &RetryPolicy,
    config: &ShardConfig,
) -> EpochOutcome {
    let _span = kert_obs::span("agents.collect_epoch");
    OBS_EPOCHS.incr();
    let n = source.n_agents();
    let k = config.shards_for(n);
    let mut reports: Vec<Option<AgentReport>> = Vec::with_capacity(n);
    let mut stats: Vec<CollectStats> = Vec::with_capacity(n);
    let mut rows_dropped = vec![0usize; n];
    let mut shards = Vec::with_capacity(k);

    for shard in 0..k {
        let members = shard_range(shard, n, k);
        let mut info = ShardStats {
            shard,
            agents: members.len(),
            ..ShardStats::default()
        };
        if source.shard_outage(shard, k, window) {
            // The whole shard is unreachable: every member is missing
            // with a shard-partition event, and no budget is spent.
            OBS_SHARD_PARTITIONS.incr();
            info.partitioned = true;
            info.missing = members.len();
            for _agent in members {
                reports.push(None);
                stats.push(CollectStats {
                    faults: vec![FaultEvent::ShardPartitioned { shard }],
                    ..CollectStats::default()
                });
            }
            shards.push(info);
            continue;
        }
        let mut budget = config.budget_windows;
        for agent in members {
            let (policy, cut) = if budget == 0 {
                (RetryPolicy::cutoff(), true)
            } else {
                (*policy, false)
            };
            if cut {
                info.cutoff_agents += 1;
                OBS_SHARD_CUTOFFS.incr();
            }
            let (mut report, cstats) = collect_report(source, agent, window, &policy);
            if let Some(r) = report.as_mut() {
                rows_dropped[agent] = sanitize_report(r);
                info.delivered += 1;
            } else {
                info.missing += 1;
            }
            budget = budget.saturating_sub(cstats.waited_windows);
            info.retries += cstats.retries;
            info.waited_windows = info.waited_windows.saturating_add(cstats.waited_windows);
            // One simulated window per delivery attempt, plus the waits.
            info.sim_windows = info
                .sim_windows
                .saturating_add(1 + cstats.retries as u64)
                .saturating_add(cstats.waited_windows);
            reports.push(report);
            stats.push(cstats);
        }
        shards.push(info);
    }

    // Merge: the epoch's shared view is the intersection of delivered
    // row-id sets; every delivered report is restricted onto it so the
    // coordinator's global dataset stays request-aligned across shards.
    let delivered: Vec<&AgentReport> = reports.iter().flatten().collect();
    let common_rows = intersect_row_ids(&delivered);
    if config.align_rows {
        for (agent, report) in reports.iter_mut().enumerate() {
            if let Some(r) = report {
                rows_dropped[agent] += restrict_to_ids(r, &common_rows);
            }
        }
    }

    EpochOutcome {
        window,
        reports,
        stats,
        rows_dropped,
        shards,
        common_rows,
    }
}

/// Outcome of one sharded resilient epoch: the complete CPD set, the
/// health report, and the collector's shard accounting.
#[derive(Debug)]
pub struct ShardedResult {
    /// One CPD per node, node-ordered — never missing, whatever failed.
    pub cpds: Vec<Cpd>,
    /// Per-node ladder provenance (identical semantics to the per-agent
    /// path's [`crate::ResilientResult`]).
    pub health: ModelHealth,
    /// Per-shard collection accounting for the epoch.
    pub shards: Vec<ShardStats>,
    /// Row ids shared by every delivered report this epoch.
    pub common_rows: usize,
}

/// Fleet-scale resilient learning: one epoch of sharded collection, then
/// the PR 2 fallback ladder per node.
///
/// Semantics match [`crate::resilient_decentralized_learn`] — same ladder,
/// same telemetry, same "never fails" guarantee — but collection runs
/// through the epoch barrier: per-shard budgets, straggler cutoffs,
/// shard-partition faults, and the row-id-intersection merge.
pub fn sharded_resilient_learn(
    variables: &[Variable],
    dag: &Dag,
    source: &mut dyn ReportSource,
    window: usize,
    cache: &mut CpdCache,
    options: &ResilientOptions,
    config: &ShardConfig,
) -> Result<ShardedResult> {
    let _span = kert_obs::span("agents.sharded_learn");
    let n = dag.len();
    if source.n_agents() < n {
        return Err(AgentError::BadLocalData(format!(
            "{} agents cannot report for a {n}-node DAG",
            source.n_agents()
        )));
    }
    let epoch = collect_epoch(source, window, &options.retry, config);
    let mut cpds = Vec::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    let mut reports = epoch.reports;
    let mut stats = epoch.stats;
    for node in (0..n).rev() {
        // Drain back-to-front so each node takes ownership of its report
        // without cloning the fleet's worth of data.
        let report = reports.pop().expect("one report slot per node");
        let cstats = stats.pop().expect("one stats slot per node");
        let (cpd, health) = ladder_resolve(
            variables,
            dag,
            node,
            report,
            epoch.rows_dropped[node],
            cstats,
            window,
            cache,
            options,
        )?;
        cpds.push(cpd);
        nodes.push(health);
    }
    cpds.reverse();
    nodes.reverse();
    cache.tick();
    let health = ModelHealth { window, nodes };
    publish_health_gauges(&health);
    publish_shard_gauges(&epoch.shards);
    Ok(ShardedResult {
        cpds,
        health,
        shards: epoch.shards,
        common_rows: epoch.common_rows.len(),
    })
}

/// Surface per-shard collector outcomes as labeled gauges (latest epoch).
pub fn publish_shard_gauges(shards: &[ShardStats]) {
    if !kert_obs::enabled() {
        return;
    }
    for s in shards {
        let label = [("shard", s.shard.to_string())];
        let labels: Vec<(&str, &str)> = label.iter().map(|(k, v)| (*k, v.as_str())).collect();
        kert_obs::set_gauge_labeled("agents.shard.delivered", &labels, s.delivered as f64);
        kert_obs::set_gauge_labeled("agents.shard.missing", &labels, s.missing as f64);
        kert_obs::set_gauge_labeled(
            "agents.shard.partitioned",
            &labels,
            f64::from(u8::from(s.partitioned)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_tile_the_fleet() {
        for &(n, k) in &[(1usize, 1usize), (7, 3), (100, 8), (1000, 16), (5, 9)] {
            let kk = k.clamp(1, n);
            let mut covered = 0usize;
            for shard in 0..kk {
                let range = shard_range(shard, n, k);
                for agent in range.clone() {
                    assert_eq!(
                        shard_of(agent, n, k),
                        shard,
                        "agent {agent} of {n} in {k} shards"
                    );
                }
                covered += range.len();
            }
            assert_eq!(covered, n, "{n} agents over {k} shards");
            // Balance: sizes differ by at most one.
            let sizes: Vec<usize> = (0..kk).map(|s| shard_range(s, n, k).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shards {sizes:?}");
        }
    }

    #[test]
    fn speedup_and_loss_are_computed_over_shards() {
        let outcome = EpochOutcome {
            window: 0,
            reports: vec![None, None],
            stats: vec![CollectStats::default(), CollectStats::default()],
            rows_dropped: vec![0, 0],
            shards: vec![
                ShardStats {
                    shard: 0,
                    sim_windows: 30,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    sim_windows: 10,
                    ..ShardStats::default()
                },
            ],
            common_rows: Vec::new(),
        };
        assert!((outcome.simulated_speedup() - 40.0 / 30.0).abs() < 1e-12);
        assert_eq!(outcome.loss_rate(), 1.0);
    }
}
