//! Server-side streaming window assembly: [`AgentReport`] row deltas feed
//! incremental learning instead of forcing a batch relearn.
//!
//! Each control period the management server collects one report per
//! monitoring agent ([`crate::collect`]). The conventional scheduler then
//! relearns every CPD from the full sliding window; the
//! [`StreamingCollector`] instead reconciles the arriving reports into
//! *joint rows* (keyed by global request id) and streams only the delta
//! into a [`StreamingLearner`]'s sufficient statistics — each period costs
//! `O(rows entering + rows leaving)`, not `O(window)`.
//!
//! Reconciliation rules mirror the lossy data plane of PR 2:
//! * rows with non-finite values are sanitized away per report;
//! * only request ids present in **every** agent's report become joint
//!   rows (id intersection — truncated or straggling reports cannot
//!   misalign columns);
//! * an epoch with any agent missing (crashed, dropped past the retry
//!   budget) contributes nothing — a crashed agent's columns cannot be
//!   fabricated. When the agent rejoins, later epochs stream normally, so
//!   the learner state always equals a batch relearn over exactly the
//!   reconciled rows in the window;
//! * duplicate redeliveries (straggler replays) are dropped by id.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use kert_bayes::cpd::Cpd;
use kert_bayes::graph::Dag;
use kert_bayes::learn::incremental::StreamingLearner;
use kert_bayes::learn::mle::ParamOptions;
use kert_bayes::variable::Variable;
use kert_bayes::Dataset;
use kert_sim::AgentReport;

use crate::collect::{intersect_row_ids, restrict_to_ids, sanitize_report};
use crate::{AgentError, Result};

static OBS_EPOCHS: kert_obs::Counter = kert_obs::Counter::new("agents.stream.epochs");
static OBS_ROWS_IN: kert_obs::Counter = kert_obs::Counter::new("agents.stream.rows_in");
static OBS_ROWS_OUT: kert_obs::Counter = kert_obs::Counter::new("agents.stream.rows_out");
static OBS_SKIPPED: kert_obs::Counter = kert_obs::Counter::new("agents.stream.epochs_skipped");

/// What one epoch's ingest did to the window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestSummary {
    /// Joint rows appended to the window.
    pub rows_added: usize,
    /// Rows evicted to keep the window at capacity.
    pub rows_evicted: usize,
    /// Rows sanitized away across all reports (non-finite values).
    pub rows_sanitized: usize,
    /// Rows whose ids appeared in some reports but not all (realignment
    /// loss from truncation), counted against the widest report.
    pub rows_unaligned: usize,
    /// Redelivered ids already in the window, dropped.
    pub rows_duplicate: usize,
    /// Agents whose report was missing; non-empty ⇒ the epoch was skipped.
    pub missing_agents: Vec<usize>,
}

impl IngestSummary {
    /// True when the epoch contributed nothing because an agent was down.
    pub fn skipped(&self) -> bool {
        !self.missing_agents.is_empty()
    }
}

/// A sliding window of reconciled joint rows with incrementally maintained
/// learning statistics — the streaming replacement for the scheduler's
/// per-`T_CON` batch relearn.
///
/// Agent `i`'s report supplies node `i`'s column (reports carry
/// `[parents…, own]`; only the own column is read — parent values are
/// re-derived from the parents' *own* reports, so one corrupted piggyback
/// column cannot fork the joint view).
#[derive(Debug)]
pub struct StreamingCollector {
    learner: StreamingLearner,
    /// `(id, joint row)` in arrival order; front is oldest.
    window: VecDeque<(u64, Vec<f64>)>,
    /// Ids currently in the window, for duplicate rejection.
    ids: BTreeSet<u64>,
    capacity: usize,
    n_nodes: usize,
}

impl StreamingCollector {
    /// A collector for `variables.len()` learned nodes (one monitoring
    /// agent per node) holding at most `capacity` joint rows.
    pub fn new(
        variables: &[Variable],
        dag: &Dag,
        capacity: usize,
        params: ParamOptions,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(AgentError::BadSchedule(
                "window capacity must be ≥ 1".into(),
            ));
        }
        let learner = StreamingLearner::new(variables, dag, params)
            .map_err(|e| AgentError::BadLocalData(e.to_string()))?;
        Ok(StreamingCollector {
            learner,
            window: VecDeque::with_capacity(capacity + 1),
            ids: BTreeSet::new(),
            capacity,
            n_nodes: variables.len(),
        })
    }

    /// Joint rows currently in the window.
    pub fn window_rows(&self) -> usize {
        self.window.len()
    }

    /// True when the window holds no rows.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Maximum joint rows before oldest-first eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The reconciled window as a dataset (`names` = one per node), for
    /// differential testing against a batch relearn.
    pub fn window_dataset(&self, names: Vec<String>) -> Result<Dataset> {
        let mut out = Dataset::new(names);
        for (_, row) in &self.window {
            out.push_row(row.clone())
                .map_err(|e| AgentError::Internal(e.to_string()))?;
        }
        Ok(out)
    }

    /// Ingest one epoch of per-agent reports (`reports[i]` from node `i`'s
    /// agent, `None` when collection failed). Reconciles, streams the
    /// delta, and slides the window. Cost is proportional to the delta —
    /// rows reconciled in plus rows evicted — never the window length.
    pub fn ingest(&mut self, reports: &mut [Option<AgentReport>]) -> Result<IngestSummary> {
        if reports.len() != self.n_nodes {
            return Err(AgentError::BadLocalData(format!(
                "{} reports for {} nodes",
                reports.len(),
                self.n_nodes
            )));
        }
        OBS_EPOCHS.incr();
        let mut summary = IngestSummary {
            missing_agents: reports
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_none())
                .map(|(i, _)| i)
                .collect(),
            ..IngestSummary::default()
        };
        if summary.skipped() {
            // A missing agent leaves its column unobservable for every row
            // of this epoch; nothing can be reconciled.
            OBS_SKIPPED.incr();
            return Ok(summary);
        }

        let mut widest = 0usize;
        for report in reports.iter_mut().flatten() {
            summary.rows_sanitized += sanitize_report(report);
            widest = widest.max(report.data.rows());
        }
        let present: Vec<&AgentReport> = reports.iter().flatten().collect();
        let shared = intersect_row_ids(&present);
        summary.rows_unaligned = widest.saturating_sub(shared.len());
        for report in reports.iter_mut().flatten() {
            restrict_to_ids(report, &shared);
        }

        // After restriction every report carries exactly `shared` in the
        // same order; joint row r = each agent's own (last) column.
        for (r, &id) in shared.iter().enumerate() {
            if self.ids.contains(&id) {
                summary.rows_duplicate += 1;
                continue;
            }
            let row: Vec<f64> = reports
                .iter()
                .flatten()
                .map(|rep| {
                    let own = rep.data.columns() - 1;
                    rep.data.get(r, own)
                })
                .collect();
            self.learner
                .insert_row(&row)
                .map_err(|e| AgentError::BadLocalData(e.to_string()))?;
            self.window.push_back((id, row));
            self.ids.insert(id);
            summary.rows_added += 1;
            OBS_ROWS_IN.incr();
            if self.window.len() > self.capacity {
                let (old_id, old_row) = self.window.pop_front().expect("window non-empty");
                self.learner
                    .evict_row(&old_row)
                    .map_err(|e| AgentError::Internal(e.to_string()))?;
                self.ids.remove(&old_id);
                summary.rows_evicted += 1;
                OBS_ROWS_OUT.incr();
            }
        }
        Ok(summary)
    }

    /// Fit every node's CPD from the current window statistics —
    /// equivalent to a batch relearn over [`Self::window_dataset`].
    pub fn fit_all(&mut self) -> Result<Vec<Cpd>> {
        self.learner.fit_all().map_err(|e| AgentError::LearnFailed {
            node: usize::MAX,
            cause: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::learn::incremental::cpd_movement;
    use kert_bayes::learn::mle::fit_all_parameters;
    use kert_sim::trace::TraceRow;
    use kert_sim::{MonitoringAgent, Trace};

    fn chain_dag(n: usize) -> Dag {
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).unwrap();
        }
        dag
    }

    fn chain_agents(n: usize) -> Vec<MonitoringAgent> {
        (0..n)
            .map(|i| MonitoringAgent::new(i, if i == 0 { vec![] } else { vec![i - 1] }))
            .collect()
    }

    fn demo_windows(n: usize, windows: usize, rows: usize) -> Vec<Trace> {
        let mut t = Trace::new(n);
        for i in 0..(windows * rows) {
            t.push(TraceRow {
                completed_at: i as f64,
                elapsed: (0..n)
                    .map(|s| 0.05 * (s + 1) as f64 + ((i * (s + 3)) % 17) as f64 * 0.01)
                    .collect(),
                response_time: 1.0,
                resources: Vec::new(),
            });
        }
        t.windows(rows)
    }

    fn reports_for(
        agents: &[MonitoringAgent],
        window: &Trace,
        start: u64,
    ) -> Vec<Option<AgentReport>> {
        agents
            .iter()
            .map(|a| Some(a.report_window(window, start)))
            .collect()
    }

    fn continuous_vars(n: usize) -> Vec<Variable> {
        (0..n)
            .map(|i| Variable::continuous(format!("X{i}")))
            .collect()
    }

    #[test]
    fn healthy_epochs_match_batch_relearn() {
        let n = 3;
        let agents = chain_agents(n);
        let dag = chain_dag(n);
        let windows = demo_windows(n, 4, 8);
        let vars = continuous_vars(n);
        let mut collector =
            StreamingCollector::new(&vars, &dag, 16, ParamOptions::default()).unwrap();
        let mut start = 0u64;
        for w in &windows {
            let mut reports = reports_for(&agents, w, start);
            let summary = collector.ingest(&mut reports).unwrap();
            assert!(!summary.skipped());
            assert_eq!(summary.rows_added, 8);
            start += w.len() as u64;
        }
        // 32 rows streamed through a 16-row window → 16 evicted.
        assert_eq!(collector.window_rows(), 16);

        let names = (0..n).map(|i| format!("X{i}")).collect();
        let current = collector.window_dataset(names).unwrap();
        let batch = fit_all_parameters(&vars, &dag, &current, ParamOptions::default()).unwrap();
        let streamed = collector.fit_all().unwrap();
        for (node, (s, b)) in streamed.iter().zip(batch.iter()).enumerate() {
            let m = cpd_movement(s, b);
            assert!(m <= 1e-9, "node {node} drifted {m} from batch");
        }
    }

    #[test]
    fn missing_agent_skips_the_epoch() {
        let n = 2;
        let agents = chain_agents(n);
        let dag = chain_dag(n);
        let windows = demo_windows(n, 1, 6);
        let vars = continuous_vars(n);
        let mut collector =
            StreamingCollector::new(&vars, &dag, 32, ParamOptions::default()).unwrap();
        let mut reports = reports_for(&agents, &windows[0], 0);
        reports[1] = None;
        let summary = collector.ingest(&mut reports).unwrap();
        assert!(summary.skipped());
        assert_eq!(summary.missing_agents, vec![1]);
        assert_eq!(summary.rows_added, 0);
        assert!(collector.is_empty());
    }

    #[test]
    fn duplicate_redelivery_adds_nothing() {
        let n = 2;
        let agents = chain_agents(n);
        let dag = chain_dag(n);
        let windows = demo_windows(n, 1, 5);
        let vars = continuous_vars(n);
        let mut collector =
            StreamingCollector::new(&vars, &dag, 32, ParamOptions::default()).unwrap();
        let mut reports = reports_for(&agents, &windows[0], 0);
        assert_eq!(collector.ingest(&mut reports).unwrap().rows_added, 5);
        // A straggler replay of the same window: every id is a duplicate.
        let mut replay = reports_for(&agents, &windows[0], 0);
        let summary = collector.ingest(&mut replay).unwrap();
        assert_eq!(summary.rows_added, 0);
        assert_eq!(summary.rows_duplicate, 5);
        assert_eq!(collector.window_rows(), 5);
    }

    #[test]
    fn truncated_reports_realign_by_id_intersection() {
        let n = 2;
        let agents = chain_agents(n);
        let dag = chain_dag(n);
        let windows = demo_windows(n, 1, 6);
        let vars = continuous_vars(n);
        let mut collector =
            StreamingCollector::new(&vars, &dag, 32, ParamOptions::default()).unwrap();
        let mut reports = reports_for(&agents, &windows[0], 0);
        // Truncate agent 1's report to its first 4 rows.
        if let Some(rep) = reports[1].as_mut() {
            let keep: Vec<u64> = rep.row_ids[..4].to_vec();
            restrict_to_ids(rep, &keep);
        }
        let summary = collector.ingest(&mut reports).unwrap();
        assert_eq!(summary.rows_added, 4);
        assert_eq!(summary.rows_unaligned, 2);
    }

    #[test]
    fn poisoned_rows_are_sanitized_before_alignment() {
        let n = 2;
        let agents = chain_agents(n);
        let dag = chain_dag(n);
        let windows = demo_windows(n, 1, 5);
        let vars = continuous_vars(n);
        let mut collector =
            StreamingCollector::new(&vars, &dag, 32, ParamOptions::default()).unwrap();
        let mut reports = reports_for(&agents, &windows[0], 0);
        if let Some(rep) = reports[0].as_mut() {
            let mut data = Dataset::new(rep.data.names().to_vec());
            for r in 0..rep.data.rows() {
                let mut row = rep.data.row(r).to_vec();
                if r == 2 {
                    row[0] = f64::NAN;
                }
                data.push_row(row).unwrap();
            }
            rep.data = data;
        }
        let summary = collector.ingest(&mut reports).unwrap();
        assert_eq!(summary.rows_sanitized, 1);
        assert_eq!(summary.rows_added, 4);
    }
}
