//! Concurrent (decentralized) vs. sequential (centralized) learning.
//!
//! The decentralized path plays the agent fleet on a `std::thread::scope`
//! worker pool: each node's CPD is one task, tasks are pulled from a shared
//! queue, and every task's learning time is measured individually. Because
//! real deployments run each agent on its own machine, the *reported*
//! decentralized latency is `max(per-node times)` (plus nothing for
//! assembly — the server just plugs CPDs in), while the centralized
//! reference pays `Σ per-node times` on one machine. Both numbers are
//! returned so Figure 5 can plot them from a single run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kert_bayes::cpd::Cpd;
use kert_bayes::learn::mle::ParamOptions;
use kert_bayes::{Dag, Dataset, LinearGaussianCpd, TabularCpd, Variable, VariableKind};

use crate::collect::{collect_report, sanitize_report, ReportSource, RetryPolicy};
use crate::health::{CpdSource, ModelHealth, NodeHealth};
use crate::local::{fit_node_from_local, LocalDataset};
use crate::{AgentError, Result};

// Learning-runtime telemetry. The fallback-ladder counters are the
// self-healing story in three numbers: how many nodes this process has
// landed on each rung since startup. The seeded-fleet determinism test
// diffs them across a run and checks they match `ModelHealth` exactly.
static OBS_LEARN_RUNS: kert_obs::Counter = kert_obs::Counter::new("agents.learn.runs");
static OBS_LEARN_NODES: kert_obs::Counter = kert_obs::Counter::new("agents.learn.nodes");
static OBS_NODE_LEARN: kert_obs::Histogram = kert_obs::Histogram::new("agents.node_learn");
static OBS_LADDER_FRESH: kert_obs::Counter = kert_obs::Counter::new("agents.ladder.fresh");
static OBS_LADDER_STALE: kert_obs::Counter = kert_obs::Counter::new("agents.ladder.stale");
static OBS_LADDER_PRIOR: kert_obs::Counter = kert_obs::Counter::new("agents.ladder.prior");
static OBS_ROWS_DROPPED: kert_obs::Counter = kert_obs::Counter::new("agents.rows_dropped");

/// Per-task result cell: the learned CPD and how long the fit took.
type TaskCell = Mutex<Option<Result<(Cpd, Duration)>>>;

/// Pool size when the OS won't report available parallelism.
const FALLBACK_WORKERS: usize = 4;

/// Options for both learning paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct LearnOptions {
    /// Parameter-learning options forwarded to the per-node fits.
    pub params: ParamOptions,
    /// Worker threads for the decentralized pool (`None` = available
    /// parallelism).
    pub workers: Option<usize>,
}

/// Outcome of decentralized learning.
#[derive(Debug)]
pub struct DecentralizedResult {
    /// One learned CPD per node, node-ordered.
    pub cpds: Vec<Cpd>,
    /// Per-node learning durations.
    pub node_times: Vec<Duration>,
    /// `max(node_times)` — the latency of the fleet (each agent on its own
    /// machine).
    pub decentralized_time: Duration,
    /// Wall-clock time of the pooled run on *this* machine (≥ the fleet
    /// latency when workers < nodes).
    pub wall_time: Duration,
}

/// Outcome of centralized learning.
#[derive(Debug)]
pub struct CentralizedResult {
    /// One learned CPD per node, node-ordered.
    pub cpds: Vec<Cpd>,
    /// Per-node learning durations.
    pub node_times: Vec<Duration>,
    /// `Σ node_times` ≈ wall time of the sequential pass.
    pub centralized_time: Duration,
}

/// Slice the management-server dataset into per-node local views
/// (columns `[parents…, node]`), as the monitoring agents would hold them.
pub fn slice_local_datasets(dag: &Dag, data: &Dataset) -> Result<Vec<LocalDataset>> {
    if data.columns() != dag.len() {
        return Err(AgentError::BadLocalData(format!(
            "dataset has {} columns for a {}-node DAG",
            data.columns(),
            dag.len()
        )));
    }
    (0..dag.len())
        .map(|node| {
            let parents = dag.parents(node).to_vec();
            let mut cols = parents.clone();
            cols.push(node);
            let local = data
                .project(&cols)
                .map_err(|e| AgentError::BadLocalData(e.to_string()))?;
            Ok(LocalDataset {
                node,
                parents,
                data: local,
            })
        })
        .collect()
}

/// Learn all CPDs concurrently from per-agent local datasets.
pub fn decentralized_learn(
    variables: &[Variable],
    locals: &[LocalDataset],
    options: LearnOptions,
) -> Result<DecentralizedResult> {
    OBS_LEARN_RUNS.incr();
    let _span = kert_obs::span("agents.decentralized_learn");
    let n = locals.len();
    let workers = options
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(FALLBACK_WORKERS)
        })
        .max(1)
        .min(n.max(1));

    let next_task = AtomicUsize::new(0);
    let results: Vec<TaskCell> = (0..n).map(|_| Mutex::new(None)).collect();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let task = next_task.fetch_add(1, Ordering::Relaxed);
                if task >= n {
                    break;
                }
                let started = Instant::now();
                let outcome = fit_node_from_local(variables, &locals[task], options.params)
                    .map(|cpd| (cpd, started.elapsed()));
                if let Ok(mut slot) = results[task].lock() {
                    *slot = Some(outcome);
                }
            });
        }
    });
    let wall_time = wall_start.elapsed();

    let mut cpds = Vec::with_capacity(n);
    let mut node_times = Vec::with_capacity(n);
    for (task, cell) in results.into_iter().enumerate() {
        let slot = cell
            .into_inner()
            .map_err(|_| AgentError::Internal(format!("result cell for task {task} poisoned")))?;
        let (cpd, t) = slot.ok_or_else(|| {
            AgentError::Internal(format!("task {task} was never processed by the pool"))
        })??;
        cpds.push(cpd);
        node_times.push(t);
    }
    OBS_LEARN_NODES.add(n as u64);
    for t in &node_times {
        OBS_NODE_LEARN.record(t.as_nanos() as u64);
    }
    let decentralized_time = node_times.iter().copied().max().unwrap_or_default();
    Ok(DecentralizedResult {
        cpds,
        node_times,
        decentralized_time,
        wall_time,
    })
}

/// Learn all CPDs sequentially on one machine (the centralized reference).
pub fn centralized_learn(
    variables: &[Variable],
    locals: &[LocalDataset],
    options: LearnOptions,
) -> Result<CentralizedResult> {
    let mut cpds = Vec::with_capacity(locals.len());
    let mut node_times = Vec::with_capacity(locals.len());
    for local in locals {
        let started = Instant::now();
        let cpd = fit_node_from_local(variables, local, options.params)?;
        node_times.push(started.elapsed());
        cpds.push(cpd);
    }
    let centralized_time = node_times.iter().sum();
    Ok(CentralizedResult {
        cpds,
        node_times,
        centralized_time,
    })
}

/// Last-good CPDs kept by the management server, aged per window.
#[derive(Debug, Clone, Default)]
pub struct CpdCache {
    /// `entries[node]` = last fresh CPD and its age in windows.
    entries: Vec<Option<(Cpd, usize)>>,
}

impl CpdCache {
    /// Maximum age (in windows) a cached CPD ever reports.
    ///
    /// Ages saturate here instead of growing without bound: a coordinator
    /// that has been failing over the same node for years must still
    /// report a sane staleness to health gauges (which encode ages as
    /// `f64` and would otherwise lose integer precision past 2⁵³, and
    /// whose consumers may narrow to `u32`). `u32::MAX` windows is ≫ any
    /// real deployment lifetime, so saturation is observationally lossless.
    pub const MAX_AGE: usize = u32::MAX as usize;

    /// An empty cache for `n` nodes.
    pub fn new(n: usize) -> Self {
        CpdCache {
            entries: vec![None; n],
        }
    }

    /// Remember `cpd` as `node`'s last-good model (age 0).
    pub fn store(&mut self, node: usize, cpd: Cpd) {
        self.store_aged(node, cpd, 0);
    }

    /// Remember `cpd` with an explicit `age` — the snapshot-restore path,
    /// where a restarted coordinator resumes with *stale* (not prior)
    /// CPDs carrying their pre-crash ages. Ages above [`Self::MAX_AGE`]
    /// are clamped.
    pub fn store_aged(&mut self, node: usize, cpd: Cpd, age: usize) {
        if node >= self.entries.len() {
            self.entries.resize(node + 1, None);
        }
        self.entries[node] = Some((cpd, age.min(Self::MAX_AGE)));
    }

    /// The cached CPD and its age, if any.
    pub fn get(&self, node: usize) -> Option<(&Cpd, usize)> {
        self.entries
            .get(node)
            .and_then(|e| e.as_ref())
            .map(|(cpd, age)| (cpd, *age))
    }

    /// Number of node slots (occupied or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no node has a cached CPD.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    /// Iterate the occupied slots as `(node, cpd, age)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Cpd, usize)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(node, e)| e.as_ref().map(|(cpd, age)| (node, cpd, *age)))
    }

    /// Oldest cached age, if anything is cached. Bounded by
    /// [`Self::MAX_AGE`], so health gauges can never report wrapped or
    /// precision-mangled staleness.
    pub fn max_age(&self) -> Option<usize> {
        self.entries.iter().flatten().map(|(_, age)| *age).max()
    }

    /// Advance one window: every cached CPD gets older, saturating at
    /// [`Self::MAX_AGE`].
    pub fn tick(&mut self) {
        for entry in self.entries.iter_mut().flatten() {
            entry.1 = entry.1.saturating_add(1).min(Self::MAX_AGE);
        }
    }
}

/// The zero-knowledge prior for continuous nodes: `N(mean, variance)`
/// ignoring parents (zero coefficients). Discrete nodes fall back to a
/// uniform CPT regardless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorSpec {
    /// Prior mean of the elapsed time.
    pub mean: f64,
    /// Prior variance (wide by default — the prior should claim little).
    pub variance: f64,
}

impl Default for PriorSpec {
    fn default() -> Self {
        PriorSpec {
            mean: 0.0,
            variance: 1.0,
        }
    }
}

/// Options for [`resilient_decentralized_learn`].
#[derive(Debug, Clone, Copy)]
pub struct ResilientOptions {
    /// Parameter-learning options for the per-node fits.
    pub params: ParamOptions,
    /// Retry/backoff policy per report collection.
    pub retry: RetryPolicy,
    /// Minimum reconciled rows required for a fresh fit (a 1-row "fit"
    /// would be numerically meaningless).
    pub min_rows: usize,
    /// Prior/default CPD parameters (the bottom ladder rung).
    pub prior: PriorSpec,
}

impl Default for ResilientOptions {
    fn default() -> Self {
        ResilientOptions {
            params: ParamOptions::default(),
            retry: RetryPolicy::default(),
            min_rows: 8,
            prior: PriorSpec::default(),
        }
    }
}

/// Outcome of a resilient rebuild: a complete CPD set plus the health
/// report saying how each CPD was obtained.
#[derive(Debug)]
pub struct ResilientResult {
    /// One CPD per node, node-ordered — never missing, whatever the faults.
    pub cpds: Vec<Cpd>,
    /// Per-node provenance, rows used/dropped, retries, faults seen.
    pub health: ModelHealth,
}

/// The prior/default CPD for `node` — the ladder's bottom rung.
fn prior_cpd(variables: &[Variable], dag: &Dag, node: usize, prior: PriorSpec) -> Result<Cpd> {
    let parents = dag.parents(node).to_vec();
    match variables[node].kind {
        VariableKind::Continuous => LinearGaussianCpd::new(
            node,
            parents.clone(),
            prior.mean,
            vec![0.0; parents.len()],
            prior.variance,
        )
        .map(Cpd::LinearGaussian)
        .map_err(|e| AgentError::Internal(format!("prior CPD for node {node}: {e}"))),
        VariableKind::Discrete { cardinality } => {
            let parent_cards: Vec<usize> = parents
                .iter()
                .map(|&p| variables[p].cardinality().unwrap_or(1))
                .collect();
            Ok(Cpd::Tabular(TabularCpd::uniform(
                node,
                parents,
                cardinality,
                parent_cards,
            )))
        }
    }
}

/// Learn all CPDs from a lossy report source, healing around faults.
///
/// For each node the server collects the window report (bounded
/// retry/backoff, bounded straggler patience), drops poisoned rows, and
/// fits the CPD if enough reconciled data remains. When that fails, the
/// node walks the **fallback ladder**:
///
/// 1. **fresh** fit from this window's reconciled report;
/// 2. **stale** — the last-good cached CPD, with its age in windows;
/// 3. **prior** — the configured default CPD.
///
/// The result always contains a complete, assemblable CPD set; the
/// [`ModelHealth`] report records which rung each node landed on, so
/// downstream consumers can compensate (route dComp around stale nodes,
/// flag degraded predictions). Collection is sequential in node order and
/// all randomness lives in the (seeded) source, so a rebuild is
/// deterministic for a fixed `(source, window)`.
pub fn resilient_decentralized_learn(
    variables: &[Variable],
    dag: &Dag,
    source: &mut dyn ReportSource,
    window: usize,
    cache: &mut CpdCache,
    options: &ResilientOptions,
) -> Result<ResilientResult> {
    let _span = kert_obs::span("agents.resilient_learn");
    let n = dag.len();
    if source.n_agents() < n {
        return Err(AgentError::BadLocalData(format!(
            "{} agents cannot report for a {n}-node DAG",
            source.n_agents()
        )));
    }
    let mut cpds = Vec::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    for node in 0..n {
        let (mut report, stats) = collect_report(source, node, window, &options.retry);
        let rows_dropped = report.as_mut().map_or(0, sanitize_report);
        let (cpd, health) = ladder_resolve(
            variables,
            dag,
            node,
            report,
            rows_dropped,
            stats,
            window,
            cache,
            options,
        )?;
        cpds.push(cpd);
        nodes.push(health);
    }
    cache.tick();
    let health = ModelHealth { window, nodes };
    publish_health_gauges(&health);
    Ok(ResilientResult { cpds, health })
}

/// Resolve one node's CPD down the fallback ladder from an
/// already-sanitized (possibly absent) report, updating the cache and
/// emitting the per-node ladder telemetry.
///
/// Shared by the per-agent path above and the sharded epoch collector
/// ([`crate::shard::sharded_resilient_learn`]) so both report rungs and
/// counters identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ladder_resolve(
    variables: &[Variable],
    dag: &Dag,
    node: usize,
    report: Option<kert_sim::AgentReport>,
    rows_dropped: usize,
    stats: crate::collect::CollectStats,
    window: usize,
    cache: &mut CpdCache,
    options: &ResilientOptions,
) -> Result<(Cpd, NodeHealth)> {
    let fresh = report.and_then(|report| {
        let local = LocalDataset {
            node,
            parents: dag.parents(node).to_vec(),
            data: report.data,
        };
        if local.data.rows() < options.min_rows {
            return None;
        }
        // A malformed report (wrong column count for the node's
        // parents) fails validation inside the fit; treat it like any
        // other unusable delivery and fall down the ladder.
        fit_node_from_local(variables, &local, options.params)
            .ok()
            .map(|cpd| (cpd, local.data.rows()))
    });

    let (cpd, source_kind, rows_used) = match fresh {
        Some((cpd, rows)) => {
            cache.store(node, cpd.clone());
            (cpd, CpdSource::Fresh, rows)
        }
        None => match cache.get(node) {
            Some((cached, age)) => (cached.clone(), CpdSource::Stale { age_windows: age }, 0),
            None => (
                prior_cpd(variables, dag, node, options.prior)?,
                CpdSource::Prior,
                0,
            ),
        },
    };
    let (rung_counter, rung_name) = match source_kind {
        CpdSource::Fresh => (&OBS_LADDER_FRESH, "fresh"),
        CpdSource::Stale { .. } => (&OBS_LADDER_STALE, "stale"),
        CpdSource::Prior => (&OBS_LADDER_PRIOR, "prior"),
    };
    rung_counter.incr();
    OBS_ROWS_DROPPED.add(rows_dropped as u64);
    if kert_obs::jsonl_enabled() {
        kert_obs::event(
            "agents.ladder",
            rows_used as f64,
            &[
                ("node", &node.to_string()),
                ("rung", rung_name),
                ("window", &window.to_string()),
                ("retries", &stats.retries.to_string()),
            ],
        );
    }
    Ok((
        cpd,
        NodeHealth {
            node,
            source: source_kind,
            rows_used,
            rows_dropped,
            retries: stats.retries,
            faults: stats.faults,
        },
    ))
}

/// Surface a [`ModelHealth`] report on the telemetry registry: fleet-level
/// gauges plus one `agents.node_health{node=…}` gauge per node encoding
/// the ladder rung (0 = fresh, 1 = stale, 2 = prior). Gauges show the
/// *latest* rebuild; the `agents.ladder.*` counters accumulate history.
pub fn publish_health_gauges(health: &ModelHealth) {
    if !kert_obs::enabled() {
        return;
    }
    kert_obs::set_gauge(
        "agents.model_health.fresh_fraction",
        health.fresh_fraction(),
    );
    kert_obs::set_gauge(
        "agents.model_health.degraded",
        f64::from(u8::from(health.is_degraded())),
    );
    kert_obs::set_gauge(
        "agents.model_health.total_faults",
        health.total_faults() as f64,
    );
    kert_obs::set_gauge(
        "agents.model_health.max_stale_age",
        health.max_stale_age() as f64,
    );
    for node in &health.nodes {
        let rung = match node.source {
            CpdSource::Fresh => 0.0,
            CpdSource::Stale { .. } => 1.0,
            CpdSource::Prior => 2.0,
        };
        kert_obs::set_gauge_labeled(
            "agents.node_health",
            &[("node", &node.node.to_string())],
            rung,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kert_bayes::cpd::LinearGaussianCpd;
    use kert_bayes::BayesianNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 5-node continuous chain network and a sampled dataset.
    fn chain_setup(rows: usize) -> (Vec<Variable>, Dag, Dataset) {
        let n = 5;
        let vars: Vec<Variable> = (0..n)
            .map(|i| Variable::continuous(format!("X{i}")))
            .collect();
        let mut dag = Dag::new(n);
        for i in 1..n {
            dag.add_edge(i - 1, i).unwrap();
        }
        let mut cpds = vec![Cpd::LinearGaussian(LinearGaussianCpd::root(0, 5.0, 1.0))];
        for i in 1..n {
            cpds.push(Cpd::LinearGaussian(
                LinearGaussianCpd::new(i, vec![i - 1], 0.5, vec![0.8], 0.5).unwrap(),
            ));
        }
        let bn = BayesianNetwork::new(vars.clone(), dag.clone(), cpds).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let data = bn.sample_dataset(&mut rng, rows);
        (vars, dag, data)
    }

    #[test]
    fn decentralized_and_centralized_learn_identical_parameters() {
        let (vars, dag, data) = chain_setup(500);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let cen = centralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        assert_eq!(dec.cpds.len(), 5);
        for (d, c) in dec.cpds.iter().zip(cen.cpds.iter()) {
            let (Cpd::LinearGaussian(d), Cpd::LinearGaussian(c)) = (d, c) else {
                panic!("expected Gaussian CPDs");
            };
            assert_eq!(d.child(), c.child());
            assert_eq!(d.parents(), c.parents());
            assert!((d.intercept() - c.intercept()).abs() < 1e-12);
            assert!((d.variance() - c.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn decentralized_time_is_max_centralized_is_sum() {
        let (vars, dag, data) = chain_setup(2_000);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let cen = centralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        assert_eq!(
            dec.decentralized_time,
            dec.node_times.iter().copied().max().unwrap()
        );
        let sum: Duration = cen.node_times.iter().sum();
        assert_eq!(cen.centralized_time, sum);
        // Emulated fleet latency can never exceed the sequential total.
        assert!(dec.decentralized_time <= cen.centralized_time);
    }

    #[test]
    fn learned_cpds_assemble_into_a_valid_network() {
        let (vars, dag, data) = chain_setup(500);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let dec = decentralized_learn(&vars, &locals, LearnOptions::default()).unwrap();
        let bn = BayesianNetwork::new(vars, dag, dec.cpds).unwrap();
        // The assembled model should fit held-out data sensibly.
        let ll = bn.log_likelihood(&data).unwrap();
        assert!(ll.is_finite());
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let (vars, dag, data) = chain_setup(100);
        let locals = slice_local_datasets(&dag, &data).unwrap();
        let opts = LearnOptions {
            workers: Some(1),
            ..Default::default()
        };
        let dec = decentralized_learn(&vars, &locals, opts).unwrap();
        assert_eq!(dec.cpds.len(), 5);
    }

    #[test]
    fn cache_ages_saturate_at_the_documented_bound() {
        let mut cache = CpdCache::new(2);
        cache.store(0, Cpd::LinearGaussian(LinearGaussianCpd::root(0, 1.0, 1.0)));
        cache.store_aged(
            1,
            Cpd::LinearGaussian(LinearGaussianCpd::root(1, 2.0, 1.0)),
            CpdCache::MAX_AGE - 1,
        );
        assert_eq!(cache.max_age(), Some(CpdCache::MAX_AGE - 1));
        cache.tick();
        assert_eq!(cache.get(0).unwrap().1, 1);
        assert_eq!(cache.get(1).unwrap().1, CpdCache::MAX_AGE);
        // Ticking past the bound pins rather than wraps.
        cache.tick();
        assert_eq!(cache.get(1).unwrap().1, CpdCache::MAX_AGE);
        assert_eq!(cache.max_age(), Some(CpdCache::MAX_AGE));
        // Restoring an over-bound age clamps on entry.
        cache.store_aged(
            0,
            Cpd::LinearGaussian(LinearGaussianCpd::root(0, 1.0, 1.0)),
            usize::MAX,
        );
        assert_eq!(cache.get(0).unwrap().1, CpdCache::MAX_AGE);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        assert_eq!(cache.iter().count(), 2);
    }

    #[test]
    fn slice_rejects_mismatched_data() {
        let (_, dag, _) = chain_setup(10);
        let narrow = Dataset::new(vec!["a".into()]);
        assert!(slice_local_datasets(&dag, &narrow).is_err());
    }

    #[test]
    fn empty_local_data_surfaces_as_learn_failure() {
        let (vars, dag, _) = chain_setup(10);
        let empty = Dataset::new((0..5).map(|i| format!("X{i}")).collect());
        let locals = slice_local_datasets(&dag, &empty).unwrap();
        let err = decentralized_learn(&vars, &locals, LearnOptions::default());
        assert!(matches!(err, Err(AgentError::LearnFailed { .. })));
    }
}
